#!/usr/bin/env bash
# Local CI gate: formatting, lints, tier-1 tests, and an overflow-checked
# test pass. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy with obs-trace (deny warnings)"
cargo clippy --workspace --all-targets --features rsq-engine/obs-trace -- -D warnings

echo "==> tier-1: release build + tests"
cargo build --release
cargo test -q

echo "==> workspace tests with overflow checks"
RUSTFLAGS="-C overflow-checks=on" cargo test --workspace -q

echo "==> workspace build + tests with the obs-trace feature (Tier B)"
cargo build --workspace --features rsq-engine/obs-trace
cargo test --workspace --features rsq-engine/obs-trace -q
cargo test -p rsq-obs --features obs-trace -q

echo "CI OK"
