#!/usr/bin/env bash
# Local CI gate: formatting, lints, the unsafe audit, tier-1 tests, an
# overflow-checked test pass, the profile-overhead gate, differential
# fuzz smoke, and (when the host toolchain provides them) Miri and
# AddressSanitizer lanes.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo xtask audit (unsafe soundness gate)"
cargo run --quiet --package xtask -- audit

echo "==> cargo clippy (deny warnings, undocumented unsafe blocks)"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::undocumented-unsafe-blocks

echo "==> cargo clippy with obs-trace (deny warnings)"
cargo clippy --workspace --all-targets --features rsq-engine/obs-trace -- -D warnings

echo "==> tier-1: release build + tests"
cargo build --release
cargo test -q

echo "==> workspace tests with overflow checks"
RUSTFLAGS="-C overflow-checks=on" cargo test --workspace -q

echo "==> batch determinism gate (multi-threaded merge, SWAR override)"
# The rsq-batch suites sweep worker counts {1, 2, 8} and assert the
# merged outcomes are identical to a sequential run; the second pass
# repeats that under the portable backend override.
cargo test -p rsq-batch -q
RSQ_BACKEND=swar cargo test -p rsq-batch -q

echo "==> serve smoke gate (pipe protocol vs --batch-ndjson oracle)"
# Stream a corpus with CRLF lines, a blank line, an in-string newline,
# and no trailing newline through `rsq --serve`, fragmented into 3-byte
# writes so the incremental framer crosses escape/CRLF boundaries, and
# require byte-identical stdout to the batch run plus a clean drain
# (exit 0, silent stderr). The deeper fragmentation/fault matrix lives
# in the rsq-serve robustness suite below.
cargo build --release -p rsq-cli
SERVE_TMP="$(mktemp -d)"
trap 'rm -rf "$SERVE_TMP"' EXIT
printf '{"a": {"b": 1}}\n{"b": [1, 2, 3]}\r\n\n{"b": "x\\ny"}\n{"c": 0}' \
  > "$SERVE_TMP/corpus.ndjson"
./target/release/rsq --count '$..b' --batch-ndjson "$SERVE_TMP/corpus.ndjson" \
  > "$SERVE_TMP/batch.out"
dd if="$SERVE_TMP/corpus.ndjson" bs=3 2>/dev/null \
  | ./target/release/rsq --serve --count '$..b' \
  > "$SERVE_TMP/serve.out" 2> "$SERVE_TMP/serve.err"
diff -u "$SERVE_TMP/batch.out" "$SERVE_TMP/serve.out"
if [ -s "$SERVE_TMP/serve.err" ]; then
  echo "serve smoke gate: unexpected diagnostics on stderr:"
  cat "$SERVE_TMP/serve.err"
  exit 1
fi

echo "==> serve robustness chaos sweep (slow-tests)"
# 200 seeded fragmentation/stall/truncation/disconnect plans, each
# checked for output parity with the batch oracle.
cargo test -p rsq-serve --release --features slow-tests -q

echo "==> workspace build + tests with the obs-trace feature (Tier B)"
cargo build --workspace --features rsq-engine/obs-trace
cargo test --workspace --features rsq-engine/obs-trace -q
cargo test -p rsq-obs --features obs-trace -q

echo "==> profile-overhead gate (Tier C compiles out of unprofiled runs)"
# Tier C profiling is always-compiled (no cargo feature): the Recorder
# hooks default to empty #[inline] bodies, so NoStats/RunStats runs must
# stay byte-identical in matches and Tier A counters to a profiled run,
# and the stats-overhead ablation must stay throughput-neutral. The
# release-mode guard asserts the consistency half; the skip-map property
# test pins the byte-span accounting across backends.
cargo test -p rsq --release --features slow-tests --test obs_overhead -q
cargo test -p rsq-engine --release --test skipmap -q
RSQ_BACKEND=swar cargo test -p rsq-engine --release --test skipmap -q

echo "==> profiling lanes (batch profile merge, CLI --profile surface)"
cargo test -p rsq-batch --release -q profile
cargo test -p rsq-cli -q profile
cargo test -p rsq-cli -q metrics

echo "==> differential fuzz smoke (30s budget across all targets)"
cargo run --quiet --package xtask -- fuzz-smoke --max-seconds 30

# Optional lanes: both need components the offline stable image may not
# ship. Each is gated on a probe so the gate stays green everywhere but
# runs the deeper check wherever the toolchain allows it.
if cargo +nightly miri --version >/dev/null 2>&1; then
  echo "==> Miri lane (kernel + stackvec crates, SWAR fallback)"
  # Miri interprets Rust, not vendor intrinsics: Simd::detect falls back
  # to the portable SWAR backend under cfg(miri) (DESIGN.md §9).
  cargo +nightly miri test -p rsq-stackvec -p rsq-simd -q
  cargo +nightly miri test -p rsq-difftest -q
else
  echo "==> Miri lane skipped (nightly miri not installed)"
fi

if [ "$(uname -sm)" = "Linux x86_64" ] && rustc +nightly --version >/dev/null 2>&1; then
  echo "==> AddressSanitizer lane (kernel + stackvec crates)"
  # --tests only: doctest binaries don't link the ASan runtime.
  RUSTFLAGS="-Zsanitizer=address" cargo +nightly test \
    -p rsq-stackvec -p rsq-simd -q --tests --target x86_64-unknown-linux-gnu
else
  echo "==> AddressSanitizer lane skipped (needs nightly on x86_64 Linux)"
fi

echo "CI OK"
