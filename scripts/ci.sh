#!/usr/bin/env bash
# Local CI gate: formatting, lints, the static-analysis driver (unsafe
# audit + concurrency/panic-surface/consistency passes), tier-1 tests,
# an overflow-checked test pass, the fast-path parity gate (routed
# walker vs the general engine over the full query catalog), the mmap
# ingest smoke, the hardware-counter and timeline-trace smokes, the
# profile-overhead gate, differential fuzz smoke, and (when the host
# toolchain provides them) Miri, AddressSanitizer, and ThreadSanitizer
# lanes.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo xtask analyze (static-analysis gate, zero findings)"
# All six passes (DESIGN.md §14): the unsafe audit, panic-surface
# justification, lock order, atomic-ordering policy, doc consistency,
# and the Prometheus exposition contract. The JSON rendering is part of
# the contract, so sanity-check it too.
cargo run --quiet --package xtask -- analyze
cargo run --quiet --package xtask -- analyze --json \
  | python3 -c 'import json,sys
r = json.load(sys.stdin)
assert r["schema_version"] == 1 and not r["findings"], r'

echo "==> cargo clippy (deny warnings, undocumented unsafe blocks)"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::undocumented-unsafe-blocks

echo "==> cargo clippy with obs-trace (deny warnings)"
cargo clippy --workspace --all-targets --features rsq-engine/obs-trace -- -D warnings

echo "==> tier-1: release build + tests"
cargo build --release
cargo test -q

echo "==> workspace tests with overflow checks"
RUSTFLAGS="-C overflow-checks=on" cargo test --workspace -q

echo "==> batch determinism gate (multi-threaded merge, SWAR override)"
# The rsq-batch suites sweep worker counts {1, 2, 8} and assert the
# merged outcomes are identical to a sequential run; the second pass
# repeats that under the portable backend override.
cargo test -p rsq-batch -q
RSQ_BACKEND=swar cargo test -p rsq-batch -q

echo "==> serve smoke gate (pipe protocol vs --batch-ndjson oracle)"
# Stream a corpus with CRLF lines, a blank line, an in-string newline,
# and no trailing newline through `rsq --serve`, fragmented into 3-byte
# writes so the incremental framer crosses escape/CRLF boundaries, and
# require byte-identical stdout to the batch run plus a clean drain
# (exit 0, silent stderr). The deeper fragmentation/fault matrix lives
# in the rsq-serve robustness suite below.
cargo build --release -p rsq-cli
SERVE_TMP="$(mktemp -d)"
trap 'rm -rf "$SERVE_TMP"' EXIT
printf '{"a": {"b": 1}}\n{"b": [1, 2, 3]}\r\n\n{"b": "x\\ny"}\n{"c": 0}' \
  > "$SERVE_TMP/corpus.ndjson"
./target/release/rsq --count '$..b' --batch-ndjson "$SERVE_TMP/corpus.ndjson" \
  > "$SERVE_TMP/batch.out"
dd if="$SERVE_TMP/corpus.ndjson" bs=3 2>/dev/null \
  | ./target/release/rsq --serve --count '$..b' \
  > "$SERVE_TMP/serve.out" 2> "$SERVE_TMP/serve.err"
diff -u "$SERVE_TMP/batch.out" "$SERVE_TMP/serve.out"
if [ -s "$SERVE_TMP/serve.err" ]; then
  echo "serve smoke gate: unexpected diagnostics on stderr:"
  cat "$SERVE_TMP/serve.err"
  exit 1
fi

echo "==> fast-path parity gate (routed walker vs RSQ_ROUTE=general, full catalog)"
# Every catalog query on both the detected backend and the portable
# SWAR override: forcing the general engine must not change a single
# emitted position. dump-corpus materializes the datasets plus a query
# manifest; the gate also requires that the shape analyzer routed a
# healthy share of the catalog off the general path, so parity can't
# pass vacuously because everything fell back.
RSQ_DATASET_MB=2 cargo run --quiet --release -p rsq-bench --bin experiments -- \
  dump-corpus "$SERVE_TMP/corpus"
FAST_ROUTED=0
QUERIES=0
while IFS=$'\t' read -r id file query; do
  doc="$SERVE_TMP/corpus/$file"
  QUERIES=$((QUERIES + 1))
  route="$(./target/release/rsq --stats-json --count "$query" "$doc" 2>&1 >/dev/null \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["route"])')"
  case "$route" in
    field_chain|selective) FAST_ROUTED=$((FAST_ROUTED + 1)) ;;
  esac
  for backend in "" swar; do
    RSQ_BACKEND="$backend" ./target/release/rsq --positions "$query" "$doc" \
      > "$SERVE_TMP/parity-fast.txt"
    RSQ_BACKEND="$backend" RSQ_ROUTE=general ./target/release/rsq \
      --positions "$query" "$doc" > "$SERVE_TMP/parity-general.txt"
    if ! cmp -s "$SERVE_TMP/parity-fast.txt" "$SERVE_TMP/parity-general.txt"; then
      echo "parity gate: $id ($query) diverges under backend '${backend:-auto}':"
      diff "$SERVE_TMP/parity-fast.txt" "$SERVE_TMP/parity-general.txt" | head
      exit 1
    fi
  done
done < "$SERVE_TMP/corpus/catalog.tsv"
if [ "$FAST_ROUTED" -lt 8 ]; then
  echo "parity gate: only $FAST_ROUTED of $QUERIES queries routed fast (expected >= 8)"
  exit 1
fi
echo "parity gate: $QUERIES queries x 2 backends agree; $FAST_ROUTED routed fast"

echo "==> mmap smoke gate (--mmap on vs off over a multi-MB batch dir)"
# Multi-MiB documents through --batch-dir under both ingest policies:
# mapped and buffered reads must produce byte-identical output. The
# corpus files are above the 1 MiB threshold, so `auto` maps too.
MMAP_DIR="$SERVE_TMP/mmap-batch"
mkdir -p "$MMAP_DIR"
cp "$SERVE_TMP/corpus/B.json" "$SERVE_TMP/corpus/G.json" \
  "$SERVE_TMP/corpus/Wa.json" "$MMAP_DIR/"
./target/release/rsq --count '$..id' --batch-dir "$MMAP_DIR" --mmap on \
  > "$SERVE_TMP/mmap-on.out"
./target/release/rsq --count '$..id' --batch-dir "$MMAP_DIR" --mmap off \
  > "$SERVE_TMP/mmap-off.out"
./target/release/rsq --count '$..id' --batch-dir "$MMAP_DIR" \
  > "$SERVE_TMP/mmap-auto.out"
diff -u "$SERVE_TMP/mmap-on.out" "$SERVE_TMP/mmap-off.out"
diff -u "$SERVE_TMP/mmap-auto.out" "$SERVE_TMP/mmap-off.out"

echo "==> hardware-counter smoke gate (forced denial + armed path)"
# Counters must never change results. The forced-denial half runs
# everywhere: RSQ_PERF=deny (open fails with a simulated EPERM) must
# leave stdout AND the stats JSON byte-identical to RSQ_PERF=off, with
# no "perf" object in either. The armed half (RSQ_PERF unset → auto)
# asserts nonzero counters only where the kernel grants access; denied
# hosts — containers, VMs without a PMU — get a visible skip notice.
PERF_DOC="$SERVE_TMP/perf-doc.json"
printf '{"a": {"b": [1, 2, 3]}, "b": 7}' > "$PERF_DOC"
RSQ_PERF=off ./target/release/rsq --count --stats-json '$..b' "$PERF_DOC" \
  > "$SERVE_TMP/perf-off.out" 2> "$SERVE_TMP/perf-off.err"
RSQ_PERF=deny ./target/release/rsq --count --stats-json '$..b' "$PERF_DOC" \
  > "$SERVE_TMP/perf-deny.out" 2> "$SERVE_TMP/perf-deny.err"
diff -u "$SERVE_TMP/perf-off.out" "$SERVE_TMP/perf-deny.out"
diff -u "$SERVE_TMP/perf-off.err" "$SERVE_TMP/perf-deny.err"
if grep -q '"perf"' "$SERVE_TMP/perf-deny.err"; then
  echo "perf smoke gate: denied run leaked a perf object"
  exit 1
fi
./target/release/rsq --count --stats-json '$..b' "$PERF_DOC" \
  > "$SERVE_TMP/perf-auto.out" 2> "$SERVE_TMP/perf-auto.err"
diff -u "$SERVE_TMP/perf-off.out" "$SERVE_TMP/perf-auto.out"
if grep -q '"perf"' "$SERVE_TMP/perf-auto.err"; then
  python3 - "$SERVE_TMP/perf-auto.err" <<'PYEOF'
import json, sys
stats = json.load(open(sys.argv[1]))
perf = stats["perf"]
assert perf["docs"] == 1 and perf["bytes"] > 0, perf
assert perf["counters"]["cycles"] > 0, perf
assert perf["cycles_per_byte"] > 0.0, perf
PYEOF
  echo "perf smoke gate: counters armed, nonzero cycles recorded"
else
  echo "perf smoke gate: kernel denied counters on this host;" \
    "armed-path assertions SKIPPED (denial path verified above)"
fi

echo "==> timeline trace smoke gate (--trace-out well-formedness)"
# A batch run over the serve corpus must leave a Perfetto-loadable
# Chrome trace: valid JSON, thread_name metadata, one doc slice plus
# exactly four phase slices (queue-wait/run/reorder-wait/emit) per
# document.
./target/release/rsq --count '$..b' --batch-ndjson "$SERVE_TMP/corpus.ndjson" \
  --trace-out "$SERVE_TMP/trace.json" > /dev/null
python3 - "$SERVE_TMP/trace.json" <<'PYEOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
xs = [e for e in events if e["ph"] == "X"]
metas = [e for e in events if e["ph"] == "M"]
assert xs, "no X slices"
assert any(e["name"] == "thread_name" for e in metas), metas
for e in xs:
    assert e["ts"] >= 0 and e["dur"] >= 0, e
    assert isinstance(e["pid"], int) and isinstance(e["tid"], int), e
docs = [e for e in xs if e["name"].startswith("doc ")]
phases = [e for e in xs if e["name"] in ("queue-wait", "run", "reorder-wait", "emit")]
assert docs, xs
assert len(phases) == 4 * len(docs), (len(phases), len(docs))
PYEOF

echo "==> serve live-telemetry smoke gate (scrape under load + postmortem)"
# Part 1: a socket server with the scrape endpoint armed. A client
# streams fragmented NDJSON while curl scrapes /metrics through the
# second socket: the exposition must pass the formatter contract already
# linted above, carry rolling-window series, and show nonzero
# worker/document gauges; /healthz must answer ok; POST /shutdown must
# drain the server to a clean exit.
TELEMETRY_PIDS=""
trap 'kill $TELEMETRY_PIDS 2>/dev/null || true; rm -rf "$SERVE_TMP"' EXIT
./target/release/rsq --serve-socket "$SERVE_TMP/serve-t.sock" \
  --telemetry-socket "$SERVE_TMP/tele.sock" --count '$..b' &
TELEMETRY_PIDS="$!"
for _ in $(seq 1 100); do
  [ -S "$SERVE_TMP/serve-t.sock" ] && [ -S "$SERVE_TMP/tele.sock" ] && break
  sleep 0.05
done
python3 - "$SERVE_TMP/serve-t.sock" <<'PYEOF' &
import socket, sys, threading, time
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
# Drain responses concurrently: the serve protocol is full-duplex, so a
# client that sends everything before reading deadlocks both sides once
# the response buffer fills.
def drain_responses():
    while s.recv(65536):
        pass
drain = threading.Thread(target=drain_responses)
drain.start()
payload = b'{"a": {"b": [1, 2]}, "b": 3}\n' * 4000
for i in range(0, len(payload), 7):  # hostile fragmentation
    s.sendall(payload[i : i + 7])
    if i % 70000 == 0:
        time.sleep(0.02)
s.shutdown(socket.SHUT_WR)
drain.join()
PYEOF
LOAD_PID=$!
TELEMETRY_PIDS="$TELEMETRY_PIDS $LOAD_PID"
sleep 0.5  # scrape mid-load: documents are flowing by now
curl -sf --unix-socket "$SERVE_TMP/tele.sock" http://localhost/metrics \
  > "$SERVE_TMP/scrape.prom"
curl -sf --unix-socket "$SERVE_TMP/tele.sock" http://localhost/healthz | grep -q '^ok$'
grep -q '^rsq_window_documents{window="10s"} [1-9]' "$SERVE_TMP/scrape.prom"
grep -q '^rsq_workers [1-9]' "$SERVE_TMP/scrape.prom"
grep -q '^rsq_window_latency_ns{window="10s",quantile="0.99"}' "$SERVE_TMP/scrape.prom"
grep -q '^# TYPE rsq_queue_depth gauge' "$SERVE_TMP/scrape.prom"
grep -q '^# TYPE rsq_serve_documents_total counter' "$SERVE_TMP/scrape.prom"
wait "$LOAD_PID"
curl -sf --unix-socket "$SERVE_TMP/tele.sock" -X POST http://localhost/shutdown \
  | grep -q draining
wait "${TELEMETRY_PIDS%% *}"

# Part 2: a zero-deadline single-worker server times out both submitted
# documents deterministically; each fault must leave a postmortem whose
# stage timeline sums to its recorded latency (telescoping laps make
# them equal by construction — the gate pins that invariant), and the
# second postmortem's flight-recorder history must carry the first span.
./target/release/rsq --serve-socket "$SERVE_TMP/serve-pm.sock" \
  --telemetry-socket "$SERVE_TMP/tele-pm.sock" \
  --postmortem-dir "$SERVE_TMP/pm" --flight-window 4 --threads 1 \
  --deadline-ms 0 --count '$..b' &
PM_SERVER_PID=$!
TELEMETRY_PIDS="$TELEMETRY_PIDS $PM_SERVER_PID"
for _ in $(seq 1 100); do
  [ -S "$SERVE_TMP/serve-pm.sock" ] && [ -S "$SERVE_TMP/tele-pm.sock" ] && break
  sleep 0.05
done
python3 - "$SERVE_TMP/serve-pm.sock" <<'PYEOF'
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(b'{"a": {"b": 1}}\n{"a": {"b": 2}}\n')
s.shutdown(socket.SHUT_WR)
data = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
assert data.count(b"[timeout]") == 2, data
PYEOF
curl -sf --unix-socket "$SERVE_TMP/tele-pm.sock" -X POST http://localhost/shutdown \
  > /dev/null
PM_STATUS=0
wait "$PM_SERVER_PID" || PM_STATUS=$?
[ "$PM_STATUS" -eq 7 ] # deadline failure class on exit
[ "$(ls "$SERVE_TMP/pm" | wc -l)" -eq 2 ]
python3 - "$SERVE_TMP"/pm/postmortem-*.json <<'PYEOF'
import json, sys
pms = [json.load(open(p)) for p in sorted(sys.argv[1:])]
for pm in pms:
    assert pm["schema_version"] == 2, pm
    assert pm["code"] == "timeout", pm
    doc = pm["doc"]
    phases = (
        doc["queue_wait_ns"]
        + doc["run_ns"]
        + doc["reorder_wait_ns"]
        + doc["emit_ns"]
    )
    assert abs(phases - pm["latency_ns"]) <= 1_000_000, (phases, pm["latency_ns"])
# Single worker: the second fault's flight recorder must remember the
# first span.
assert pms[1]["recent"], "flight recorder history present in second dump"
assert pms[1]["recent"][0]["seq"] == pms[0]["doc"]["seq"], pms[1]["recent"]
PYEOF

echo "==> serve robustness chaos sweep (slow-tests)"
# 200 seeded fragmentation/stall/truncation/disconnect plans, each
# checked for output parity with the batch oracle.
cargo test -p rsq-serve --release --features slow-tests -q

echo "==> workspace build + tests with the obs-trace feature (Tier B)"
cargo build --workspace --features rsq-engine/obs-trace
cargo test --workspace --features rsq-engine/obs-trace -q
cargo test -p rsq-obs --features obs-trace -q

echo "==> profile-overhead gate (Tier C compiles out of unprofiled runs)"
# Tier C profiling is always-compiled (no cargo feature): the Recorder
# hooks default to empty #[inline] bodies, so NoStats/RunStats runs must
# stay byte-identical in matches and Tier A counters to a profiled run,
# and the stats-overhead ablation must stay throughput-neutral. The
# release-mode guard asserts the consistency half; the skip-map property
# test pins the byte-span accounting across backends.
cargo test -p rsq --release --features slow-tests --test obs_overhead -q
cargo test -p rsq-engine --release --test skipmap -q
RSQ_BACKEND=swar cargo test -p rsq-engine --release --test skipmap -q

echo "==> profiling lanes (batch profile merge, CLI --profile surface)"
cargo test -p rsq-batch --release -q profile
cargo test -p rsq-cli -q profile
cargo test -p rsq-cli -q metrics

echo "==> differential fuzz smoke (30s budget across all targets)"
cargo run --quiet --package xtask -- fuzz-smoke --max-seconds 30

# Optional lanes: both need components the offline stable image may not
# ship. Each is gated on a probe so the gate stays green everywhere but
# runs the deeper check wherever the toolchain allows it.
if cargo +nightly miri --version >/dev/null 2>&1; then
  echo "==> Miri lane (kernel + stackvec crates, SWAR fallback)"
  # Miri interprets Rust, not vendor intrinsics: Simd::detect falls back
  # to the portable SWAR backend under cfg(miri) (DESIGN.md §9).
  cargo +nightly miri test -p rsq-stackvec -p rsq-simd -q
  cargo +nightly miri test -p rsq-difftest -q
else
  echo "==> Miri lane skipped (nightly miri not installed)"
fi

if [ "$(uname -sm)" = "Linux x86_64" ] && rustc +nightly --version >/dev/null 2>&1; then
  echo "==> AddressSanitizer lane (kernel + stackvec crates)"
  # --tests only: doctest binaries don't link the ASan runtime.
  RUSTFLAGS="-Zsanitizer=address" cargo +nightly test \
    -p rsq-stackvec -p rsq-simd -q --tests --target x86_64-unknown-linux-gnu
else
  echo "==> AddressSanitizer lane skipped (needs nightly on x86_64 Linux)"
fi

if [ "$(uname -sm)" = "Linux x86_64" ] && rustc +nightly --version >/dev/null 2>&1 \
  && rustup component list --toolchain nightly 2>/dev/null | grep -q '^rust-src.*(installed)'; then
  echo "==> ThreadSanitizer lane (batch determinism + serve robustness)"
  # TSan needs std rebuilt with instrumentation (-Zbuild-std, hence the
  # rust-src probe) or it reports false races inside precompiled std.
  # The lock-order pass above is static; this lane is the dynamic check
  # over the threaded crates' suites.
  RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -Zbuild-std \
    -p rsq-batch -p rsq-serve -q --tests --target x86_64-unknown-linux-gnu
else
  echo "==> ThreadSanitizer lane skipped (needs nightly + rust-src on x86_64 Linux)"
fi

echo "CI OK"
