//! Differential target: depth-vector computation must agree across
//! backends and with a scalar re-derivation from the classified masks.
#![no_main]

use libfuzzer_sys::fuzz_target;
use rsq_difftest::Target;

fuzz_target!(|data: &[u8]| {
    if let Err(mismatch) = Target::Depth.check(data) {
        panic!("{mismatch:?}");
    }
});
