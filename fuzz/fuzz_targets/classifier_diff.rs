//! Differential target: structural classification masks must be
//! bit-identical across every backend the host supports (AVX-512, AVX2,
//! SWAR), on every input byte string.
#![no_main]

use libfuzzer_sys::fuzz_target;
use rsq_difftest::Target;

fuzz_target!(|data: &[u8]| {
    if let Err(mismatch) = Target::Classifier.check(data) {
        panic!("{mismatch:?}");
    }
});
