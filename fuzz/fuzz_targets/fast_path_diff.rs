//! Differential target: auto-routed engine runs (the fast-path walker
//! for field-chain/selective query shapes, DESIGN.md §15) must be
//! identical across backends on any input, and identical to the forced
//! general main loop on every input that parses as JSON.
#![no_main]

use libfuzzer_sys::fuzz_target;
use rsq_difftest::Target;

fuzz_target!(|data: &[u8]| {
    if let Err(mismatch) = Target::FastPathRoute.check(data) {
        panic!("{mismatch:?}");
    }
});
