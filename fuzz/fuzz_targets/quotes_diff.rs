//! Differential target: quote/escape classification (CLMUL prefix-XOR vs
//! shift-XOR vs SWAR) must agree bit-for-bit, including the carried
//! quote state at every superblock boundary.
#![no_main]

use libfuzzer_sys::fuzz_target;
use rsq_difftest::Target;

fuzz_target!(|data: &[u8]| {
    if let Err(mismatch) = Target::Quotes.check(data) {
        panic!("{mismatch:?}");
    }
});
