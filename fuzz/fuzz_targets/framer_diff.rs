//! Differential target: the incremental NDJSON framer over randomized
//! chunk splits must frame byte-identically to the one-shot
//! `split_ndjson`, honor the oversize cap, and never buffer more than
//! `cap + 1` bytes — serve mode's bounded-memory guarantee.
#![no_main]

use libfuzzer_sys::fuzz_target;
use rsq_difftest::Target;

fuzz_target!(|data: &[u8]| {
    if let Err(mismatch) = Target::Framer.check(data) {
        panic!("{mismatch:?}");
    }
});
