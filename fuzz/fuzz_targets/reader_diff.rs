//! Differential target: `run_reader` over randomized chunk splits must
//! return a byte-identical result to the one-shot slice run — the
//! classifier pipeline's resume handoffs and the memmem head-start must
//! not depend on how the reader fragments the document.
#![no_main]

use libfuzzer_sys::fuzz_target;
use rsq_difftest::Target;

fuzz_target!(|data: &[u8]| {
    if let Err(mismatch) = Target::Reader.check(data) {
        panic!("{mismatch:?}");
    }
});
