//! Differential target: full engine runs over a battery of queries must
//! return identical results on every backend, and — when the input parses
//! as JSON without duplicate sibling labels (see DESIGN.md §9) — match a
//! naive DOM-walking reference interpreter.
#![no_main]

use libfuzzer_sys::fuzz_target;
use rsq_difftest::Target;

fuzz_target!(|data: &[u8]| {
    if let Err(mismatch) = Target::Engine.check(data) {
        panic!("{mismatch:?}");
    }
});
