//! # rsq — SIMD-accelerated streaming JSONPath with descendants
//!
//! A from-scratch Rust reproduction of *Supporting Descendants in
//! SIMD-Accelerated JSONPath* (Gienieczko, Murlak, Paperman — ASPLOS
//! 2023), the paper behind the `rsonpath` engine.
//!
//! `rsq` evaluates JSONPath queries with child (`.ℓ`), wildcard (`.*`),
//! and descendant (`..ℓ`) selectors over raw JSON bytes in a single
//! streaming pass — no DOM, memory linear in document depth — while
//! fast-forwarding over irrelevant input with SIMD classification:
//!
//! ```
//! use rsq::Engine;
//!
//! let engine = Engine::from_text("$..affiliation..name")?;
//! let document = br#"{
//!     "items": [
//!         {"author": [{"name": "Ada", "affiliation": [{"name": "ETH"}]}]},
//!         {"author": [{"name": "Alan", "affiliation": []}]}
//!     ]
//! }"#;
//! assert_eq!(engine.count(document), 1);
//! # Ok::<(), rsq::EngineError>(())
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role (paper section) |
//! |---|---|
//! | [`simd`] | nibble-lookup byte classification, masks, prefix-XOR (§4.1) |
//! | [`classify`] | quote/structural/depth classifiers, structural iterator, pipeline (§4.2–4.5) |
//! | [`query`] | JSONPath parser, NFA → minimal DFA, state properties (§3.1) |
//! | [`engine`] | depth-stack main loop, four skipping techniques (§3.2–3.4) |
//! | [`stackvec`] | inline-first vector backing the depth-stack (§3.2) |
//! | [`memmem`] | SIMD substring search for skip-to-label (§3.3) |
//! | [`json`] | DOM parser/serializer/stats substrate for the oracle |
//! | [`baselines`] | reference oracle (node & path semantics), JsonSurfer- and JSONSki-style engines (§5.2) |
//! | [`datagen`] | synthetic Table 3 datasets + the Appendix C query catalog |
//!
//! The most common entry points are re-exported at the root:
//! [`Engine`], [`EngineOptions`], [`Query`], [`Automaton`], and the sinks.

#![warn(missing_docs)]

pub use rsq_baselines as baselines;
pub use rsq_classify as classify;
pub use rsq_datagen as datagen;
pub use rsq_engine as engine;
pub use rsq_json as json;
pub use rsq_memmem as memmem;
pub use rsq_query as query;
pub use rsq_simd as simd;
pub use rsq_stackvec as stackvec;

pub use rsq_engine::{
    CountSink, Engine, EngineError, EngineOptions, LimitKind, PositionsSink, RunError, Sink,
    SinkFull, ValidationError, ValidationErrorKind,
};
pub use rsq_query::{Automaton, Query, Selector};

/// Extracts the full text of the matched node starting at `pos`.
///
/// The engine reports byte offsets; this helper scans forward from one to
/// find the end of the matched value (balanced brackets for containers,
/// token end for atoms) and returns its text.
///
/// Returns `None` if `pos` does not start a JSON value (only possible on
/// malformed documents).
///
/// # Examples
///
/// ```
/// use rsq::{node_text, Engine};
///
/// let doc = br#"{"a": {"deep": [1, 2]}}"#;
/// let engine = Engine::from_text("$..deep")?;
/// let texts: Vec<&str> = engine
///     .positions(doc)
///     .into_iter()
///     .filter_map(|p| node_text(doc, p))
///     .collect();
/// assert_eq!(texts, ["[1, 2]"]);
/// # Ok::<(), rsq::EngineError>(())
/// ```
#[must_use]
pub fn node_text(document: &[u8], pos: usize) -> Option<&str> {
    let bytes = document.get(pos..)?;
    let end = match bytes.first()? {
        b'{' | b'[' => {
            let open = bytes[0];
            let close = if open == b'{' { b'}' } else { b']' };
            let mut depth = 0usize;
            let mut in_string = false;
            let mut escaped = false;
            let mut end = None;
            for (i, &b) in bytes.iter().enumerate() {
                if in_string {
                    if escaped {
                        escaped = false;
                    } else if b == b'\\' {
                        escaped = true;
                    } else if b == b'"' {
                        in_string = false;
                    }
                    continue;
                }
                match b {
                    b'"' => in_string = true,
                    _ if b == open => depth += 1,
                    _ if b == close => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(i + 1);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            end?
        }
        b'"' => {
            let mut escaped = false;
            let mut end = None;
            for (i, &b) in bytes.iter().enumerate().skip(1) {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    end = Some(i + 1);
                    break;
                }
            }
            end?
        }
        _ => bytes
            .iter()
            .position(|&b| matches!(b, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r'))
            .unwrap_or(bytes.len()),
    };
    std::str::from_utf8(&bytes[..end]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_text_atoms() {
        assert_eq!(node_text(b"42,", 0), Some("42"));
        assert_eq!(node_text(b"true}", 0), Some("true"));
        assert_eq!(node_text(br#""x\"y" ,"#, 0), Some(r#""x\"y""#));
        assert_eq!(node_text(b"12.5e3", 0), Some("12.5e3"));
    }

    #[test]
    fn node_text_containers() {
        let doc = br#"{"a": [1, {"b": "}"}]}"#;
        assert_eq!(node_text(doc, 0), Some(r#"{"a": [1, {"b": "}"}]}"#));
        assert_eq!(node_text(doc, 6), Some(r#"[1, {"b": "}"}]"#));
    }

    #[test]
    fn node_text_out_of_bounds() {
        assert_eq!(node_text(b"{}", 10), None);
        assert_eq!(node_text(b"{", 0), None);
    }
}
