//! The code-as-data scenario from §1.2 of the paper: exploring a deep,
//! highly irregular clang-style AST dump with descendant queries.
//!
//! Documents like these are infeasible to query without wildcards and
//! descendants — the paths to interesting nodes are long, irregular, and
//! unknown in advance. With `..`, one-liners suffice.
//!
//! Run with `cargo run --release --example code_as_data`.

use rsq::datagen::{Dataset, GenConfig};
use rsq::json::document_stats;
use rsq::{node_text, Engine};

fn main() -> Result<(), rsq::EngineError> {
    // Generate a clang-AST-shaped document (see rsq-datagen); in real use
    // this would be `clang -Xclang -ast-dump=json file.c`.
    let ast = Dataset::Ast.generate(&GenConfig {
        target_bytes: 4_000_000,
        seed: 11,
    });
    let bytes = ast.as_bytes();
    let stats = document_stats(bytes);
    println!(
        "AST document: {:.1} MB, depth {}, {} nodes ({:.1} bytes/node)\n",
        stats.size_mb(),
        stats.max_depth,
        stats.node_count,
        stats.verbosity()
    );

    // A1 from the paper: every name of a referenced declaration, wherever
    // it hides. Without `..` one would need to spell out every nesting.
    let decl_names = Engine::from_text("$..decl.name")?;
    let positions = decl_names.positions(bytes);
    println!(
        "$..decl.name          → {} referenced declarations",
        positions.len()
    );
    for pos in positions.iter().take(5) {
        println!("    {}", node_text(bytes, *pos).unwrap_or("?"));
    }

    // A2: the pathological nested-label query the paper calls out as the
    // hardest known case (§5.6) — ambiguous matches grow the depth-stack.
    let nested = Engine::from_text("$..inner..inner..type.qualType")?;
    println!(
        "$..inner..inner..type.qualType → {} deeply nested typed nodes",
        nested.count(bytes)
    );

    // A3: where did included declarations come from?
    let includes = Engine::from_text("$..loc.includedFrom.file")?;
    let mut files: Vec<String> = includes
        .positions(bytes)
        .into_iter()
        .filter_map(|p| node_text(bytes, p).map(str::to_owned))
        .collect();
    files.sort();
    files.dedup();
    println!(
        "$..loc.includedFrom.file → {} distinct headers",
        files.len()
    );
    for f in files.iter().take(5) {
        println!("    {f}");
    }

    // Count every node kind in one streaming pass each.
    println!("\nnode kinds:");
    let kinds = Engine::from_text("$..kind")?;
    let mut histogram = std::collections::BTreeMap::new();
    for pos in kinds.positions(bytes) {
        if let Some(text) = node_text(bytes, pos) {
            *histogram.entry(text.to_owned()).or_insert(0u64) += 1;
        }
    }
    for (kind, n) in histogram {
        println!("    {kind:<24} {n}");
    }
    Ok(())
}
