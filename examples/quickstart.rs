//! Quickstart: compile a query, stream a document, extract matches.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! # or query your own file:
//! cargo run --release --example quickstart -- '$..price' data.json
//! ```

use rsq::{node_text, Engine};
use std::process::ExitCode;

const SAMPLE: &str = r#"{
    "store": {
        "book": [
            {"title": "Sabotage", "price": 23.99, "tags": ["thriller"]},
            {"title": "Borrowed Time", "price": 9.50},
            {"title": "The Classifier", "price": 42.00, "tags": ["simd", "json"]}
        ],
        "bicycle": {"color": "red", "price": 199.95}
    }
}"#;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (query_text, document) = match args.as_slice() {
        [] => ("$..price".to_owned(), SAMPLE.as_bytes().to_vec()),
        [query] => (query.clone(), SAMPLE.as_bytes().to_vec()),
        [query, path] => match std::fs::read(path) {
            Ok(bytes) => (query.clone(), bytes),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("usage: quickstart [QUERY [FILE]]");
            return ExitCode::FAILURE;
        }
    };

    // Compile once; an Engine is reusable across documents.
    let engine = match Engine::from_text(&query_text) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("invalid query {query_text:?}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Count without materializing anything…
    println!("query : {query_text}");
    println!("count : {}", engine.count(&document));

    // …or collect match offsets and pull out the node text.
    for (i, pos) in engine.positions(&document).into_iter().enumerate() {
        let text = node_text(&document, pos).unwrap_or("<malformed>");
        let preview: String = text.chars().take(60).collect();
        println!("match {i:>3} @ byte {pos:>8}: {preview}");
    }
    ExitCode::SUCCESS
}
