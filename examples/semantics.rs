//! Node vs path semantics (§2 and Appendix D of the paper).
//!
//! Most JSONPath implementations use *path* semantics: a node is returned
//! once per way it can be reached, which clutters results with duplicates
//! and can blow up exponentially. The paper argues for *node* semantics —
//! each matched node once — and `rsq` implements it. This example
//! reproduces the Appendix D witness query and the exponential blow-up.
//!
//! Run with `cargo run --release --example semantics`.

use rsq::baselines::{evaluate, Semantics};
use rsq::{node_text, Engine, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Appendix D example document (values shortened as in the paper).
    let doc = br#"{
        "person": {
            "name": "A",
            "spouse": {"person": {"name": "B"}},
            "children": [
                {"person": {"name": "C"}},
                {"person": {"name": "D"}}
            ]
        }
    }"#;
    let query = Query::parse("$..person..name")?;
    let dom = rsq::json::parse(doc)?;

    let show = |semantics: Semantics| -> Vec<String> {
        evaluate(&query, &dom, semantics)
            .into_iter()
            .map(|span| node_text(doc, span.start).unwrap_or("?").to_owned())
            .collect()
    };

    println!("query: $..person..name\n");
    println!(
        "node semantics (rsq, jsurfer, …): {:?}",
        show(Semantics::Node)
    );
    println!(
        "path semantics (34 of 44 tested implementations): {:?}\n",
        show(Semantics::Path)
    );

    // The streaming engine implements node semantics natively.
    let engine = Engine::from_text("$..person..name")?;
    let streamed: Vec<String> = engine
        .positions(doc)
        .into_iter()
        .map(|p| node_text(doc, p).unwrap_or("?").to_owned())
        .collect();
    println!("streaming engine agrees with node semantics: {streamed:?}");
    assert_eq!(streamed, show(Semantics::Node));

    // Why path semantics is dangerous: results can be exponential in the
    // query length (§2). Nested a's + repeated ..a selectors:
    println!("\nexponential blow-up, document {{\"a\":{{\"a\":…}}}} nested 16 deep:");
    let mut nested = String::new();
    for _ in 0..16 {
        nested.push_str("{\"a\":");
    }
    nested.push('1');
    nested.push_str(&"}".repeat(16));
    let dom = rsq::json::parse(nested.as_bytes())?;
    for selectors in 1..=4 {
        let text = format!("${}", "..a".repeat(selectors));
        let q = Query::parse(&text)?;
        let node = evaluate(&q, &dom, Semantics::Node).len();
        let path = evaluate(&q, &dom, Semantics::Path).len();
        println!("    {text:<16} node = {node:>3}   path = {path:>6}");
    }
    Ok(())
}
