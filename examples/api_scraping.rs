//! Scraping values out of an API response without knowing its schema —
//! the motivating example of §1.2: "one could scrape all url property
//! values from a document without knowing anything about the paths
//! leading to them".
//!
//! Also demonstrates the performance lens of §5.6: the same result fetched
//! through three query formulations (exact path, partial rewriting, full
//! descendant rewriting) with per-query throughput.
//!
//! Run with `cargo run --release --example api_scraping`.

use rsq::datagen::{Dataset, GenConfig};
use rsq::{node_text, Engine};
use std::time::Instant;

fn timed(engine: &Engine, bytes: &[u8]) -> (u64, f64) {
    let start = Instant::now();
    let count = engine.count(bytes);
    let secs = start.elapsed().as_secs_f64();
    (count, bytes.len() as f64 / 1e9 / secs)
}

fn main() -> Result<(), rsq::EngineError> {
    // A Twitter-search-style response (see rsq-datagen): a large statuses
    // array with the interesting `search_metadata` at the very end.
    let doc = Dataset::TwitterSmall.generate(&GenConfig {
        target_bytes: 8_000_000,
        seed: 5,
    });
    let bytes = doc.as_bytes();
    println!("document: {:.1} MB\n", bytes.len() as f64 / 1e6);

    // Scrape every url in the document, wherever it occurs.
    let urls = Engine::from_text("$..url")?;
    let url_positions = urls.positions(bytes);
    println!("$..url found {} urls; first three:", url_positions.len());
    for pos in url_positions.iter().take(3) {
        println!("    {}", node_text(bytes, *pos).unwrap_or("?"));
    }

    // All hashtag texts — Ts4 of the paper's appendix.
    let hashtags = Engine::from_text("$..hashtags..text")?;
    println!("$..hashtags..text found {} hashtags", hashtags.count(bytes));

    // Ts / Tsp / Tsr: the same single value through three formulations.
    // The less specified the path, the faster (§5.6).
    println!("\nfetching search_metadata.count three ways:");
    for query in [
        "$.search_metadata.count",
        "$..search_metadata.count",
        "$..count",
    ] {
        let engine = Engine::from_text(query)?;
        let (count, gbps) = timed(&engine, bytes);
        println!("    {query:<28} matches={count}  {gbps:>6.2} GB/s");
    }
    Ok(())
}
