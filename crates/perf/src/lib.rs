//! Hardware-counter observability for the `rsq` engine.
//!
//! The paper's yardstick — and the one the SIMD-parsing literature
//! measures itself by — is **cycles and instructions per input byte**.
//! Wall-clock stage timers (Tier C, DESIGN.md §11) show *where* time
//! goes; this crate shows *what the hardware did* while it went there:
//! CPU cycles, retired instructions, branches/branch-misses, and cache
//! references/misses, read from a Linux `perf_event_open` counter group.
//!
//! Like `rsq-mmap`, this is a dependency-free kernel crate: the three
//! syscalls it needs (`perf_event_open`, `read`, `ioctl` — plus `close`)
//! are issued directly per the x86_64 ABI, so the offline workspace
//! stays free of libc. All counters for a thread live in one **group**
//! (`group_fd` chains to a leader), so a single `read()` on the leader
//! returns every value from the same scheduling interval — the values
//! are mutually consistent by construction.
//!
//! Graceful degradation is a hard requirement: most containers and CI
//! hosts run with `kernel.perf_event_paranoid > 2` or seccomp-filtered
//! syscalls, where opening counters fails with `EPERM`/`ENOSYS`. Every
//! entry point here degrades to [`CounterSet::Unavailable`] carrying a
//! human-readable reason; callers keep running with counters absent and
//! **byte-identical stdout** — the `perf` object simply disappears from
//! reports. `RSQ_PERF=off` disables counters outright and
//! `RSQ_PERF=deny` simulates the denied host, so the degraded path is
//! unit-testable everywhere (see [`PerfMode`]).
//!
//! Counters count the **calling thread** (`pid = 0`, `cpu = -1`):
//! every batch/serve worker opens its own group. See DESIGN.md §16.

#![warn(missing_docs)]

use rsq_obs::{ProfileStage, Recorder};
use std::fmt;
use std::fmt::Write as _;

/// Number of pipeline stages perf deltas are attributed to (one slot
/// per [`ProfileStage`]).
pub const STAGE_COUNT: usize = ProfileStage::ALL.len();

/// How the process wants hardware counters armed, resolved from the
/// `RSQ_PERF` environment variable at CLI parse time (so a typo fails
/// fast, and tests construct the mode directly instead of racing on the
/// environment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PerfMode {
    /// Open counters when the kernel allows it; degrade silently when
    /// it does not.
    #[default]
    Auto,
    /// Never open counters (`RSQ_PERF=off`).
    Off,
    /// Simulate a denied host (`RSQ_PERF=deny`): behave exactly as if
    /// `perf_event_open` returned `EPERM`. Exists so the degraded path
    /// is testable on perf-capable machines.
    Deny,
}

impl PerfMode {
    /// Parses an `RSQ_PERF` value.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic for unknown values, so a typo fails fast
    /// instead of silently counting (or not counting).
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "auto" => Ok(PerfMode::Auto),
            "off" => Ok(PerfMode::Off),
            "deny" => Ok(PerfMode::Deny),
            other => Err(format!("RSQ_PERF: unknown mode {other:?} (auto|off|deny)")),
        }
    }
}

/// The hardware events a [`CounterGroup`] arms, in group (and read)
/// order. Values are the kernel's `PERF_COUNT_HW_*` config codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HwEvent {
    /// `PERF_COUNT_HW_CPU_CYCLES`.
    Cycles,
    /// `PERF_COUNT_HW_INSTRUCTIONS`.
    Instructions,
    /// `PERF_COUNT_HW_CACHE_REFERENCES`.
    CacheReferences,
    /// `PERF_COUNT_HW_CACHE_MISSES`.
    CacheMisses,
    /// `PERF_COUNT_HW_BRANCH_INSTRUCTIONS`.
    BranchInstructions,
    /// `PERF_COUNT_HW_BRANCH_MISSES`.
    BranchMisses,
}

impl HwEvent {
    /// The full six-counter group, in read order.
    pub const FULL: [HwEvent; 6] = [
        HwEvent::Cycles,
        HwEvent::Instructions,
        HwEvent::CacheReferences,
        HwEvent::CacheMisses,
        HwEvent::BranchInstructions,
        HwEvent::BranchMisses,
    ];

    /// The degraded two-counter core group (cycles + instructions),
    /// retried when a sibling of the full group fails to open — some
    /// PMUs expose fewer programmable counters than six.
    pub const CORE: [HwEvent; 2] = [HwEvent::Cycles, HwEvent::Instructions];

    /// The kernel's `PERF_COUNT_HW_*` config code.
    #[must_use]
    pub fn config(self) -> u64 {
        match self {
            HwEvent::Cycles => 0,
            HwEvent::Instructions => 1,
            HwEvent::CacheReferences => 2,
            HwEvent::CacheMisses => 3,
            HwEvent::BranchInstructions => 4,
            HwEvent::BranchMisses => 5,
        }
    }
}

/// One consistent reading of a counter group. All fields are raw sums
/// since the last reset; [`CounterValues::scale`] exposes the
/// multiplexing correction factor (`time_enabled / time_running`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterValues {
    /// CPU cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Cache references (LLC by default on most PMUs).
    pub cache_references: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Retired branch instructions.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_misses: u64,
    /// Nanoseconds the group was enabled.
    pub time_enabled: u64,
    /// Nanoseconds the group was actually scheduled on the PMU. Less
    /// than `time_enabled` only when the kernel multiplexed the PMU.
    pub time_running: u64,
}

impl CounterValues {
    /// The multiplexing correction factor: `time_enabled /
    /// time_running`, 1.0 when the group was never descheduled (or
    /// never ran — there is nothing to scale then).
    #[must_use]
    pub fn scale(&self) -> f64 {
        if self.time_running == 0 || self.time_running >= self.time_enabled {
            1.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.time_enabled as f64 / self.time_running as f64
            }
        }
    }

    /// Element-wise saturating difference `self - earlier`, for
    /// attributing a bracketed region out of two monotone readings.
    #[must_use]
    pub fn delta_since(&self, earlier: &CounterValues) -> CounterValues {
        CounterValues {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            instructions: self.instructions.saturating_sub(earlier.instructions),
            cache_references: self
                .cache_references
                .saturating_sub(earlier.cache_references),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            branches: self.branches.saturating_sub(earlier.branches),
            branch_misses: self.branch_misses.saturating_sub(earlier.branch_misses),
            time_enabled: self.time_enabled.saturating_sub(earlier.time_enabled),
            time_running: self.time_running.saturating_sub(earlier.time_running),
        }
    }

    /// Element-wise saturating accumulation.
    pub fn accumulate(&mut self, rhs: &CounterValues) {
        self.cycles = self.cycles.saturating_add(rhs.cycles);
        self.instructions = self.instructions.saturating_add(rhs.instructions);
        self.cache_references = self.cache_references.saturating_add(rhs.cache_references);
        self.cache_misses = self.cache_misses.saturating_add(rhs.cache_misses);
        self.branches = self.branches.saturating_add(rhs.branches);
        self.branch_misses = self.branch_misses.saturating_add(rhs.branch_misses);
        self.time_enabled = self.time_enabled.saturating_add(rhs.time_enabled);
        self.time_running = self.time_running.saturating_add(rhs.time_running);
    }
}

/// An open group of per-thread hardware counters: one leader fd plus
/// sibling fds, read atomically (one `read()` on the leader returns
/// every value from the same PMU scheduling interval).
///
/// The group counts the **thread that opened it** (`pid = 0`,
/// `cpu = -1`, user-space only); do not ship it across threads
/// expecting it to follow. Dropping the group closes every fd.
#[derive(Debug)]
pub struct CounterGroup {
    /// `fds[0]` is the leader; order matches `events`.
    fds: Vec<i32>,
    events: Vec<HwEvent>,
}

impl CounterGroup {
    /// Opens a group for `events` on the calling thread. Counters start
    /// disabled; call [`CounterGroup::start`].
    ///
    /// # Errors
    ///
    /// The raw errno of the first failed `perf_event_open`, with every
    /// already-opened fd closed again.
    pub fn open(events: &[HwEvent]) -> Result<CounterGroup, i32> {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            let mut fds: Vec<i32> = Vec::with_capacity(events.len());
            for (i, event) in events.iter().enumerate() {
                let leader = if i == 0 {
                    -1
                } else {
                    // PANIC-OK: i > 0, so the leader fd was pushed on the previous iterations
                    fds[0]
                };
                match sys::perf_event_open(event.config(), leader, i == 0) {
                    Ok(fd) => fds.push(fd),
                    Err(errno) => {
                        for fd in fds {
                            // SAFETY: `fd` came from a successful
                            // perf_event_open above and is closed
                            // exactly once on this early-exit path.
                            unsafe { sys::close(fd) };
                        }
                        return Err(errno);
                    }
                }
            }
            Ok(CounterGroup {
                fds,
                events: events.to_vec(),
            })
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        {
            let _ = events;
            Err(38) // ENOSYS: not a Linux/x86_64 build.
        }
    }

    /// True when only the degraded core pair (cycles + instructions) is
    /// armed.
    #[must_use]
    pub fn is_core_only(&self) -> bool {
        self.events.len() == HwEvent::CORE.len()
    }

    /// Resets every counter in the group to zero and enables counting.
    pub fn start(&self) {
        self.group_ioctl(sys::PERF_EVENT_IOC_RESET);
        self.group_ioctl(sys::PERF_EVENT_IOC_ENABLE);
    }

    /// Disables counting and returns the totals since [`start`]
    /// (`None` if the grouped read failed — the group stays disabled).
    ///
    /// [`start`]: CounterGroup::start
    pub fn stop(&self) -> Option<CounterValues> {
        let values = self.read_now();
        self.group_ioctl(sys::PERF_EVENT_IOC_DISABLE);
        values
    }

    fn group_ioctl(&self, req: usize) {
        if let Some(&leader) = self.fds.first() {
            // SAFETY: `leader` is the group-leader fd this struct owns
            // (still open — fds are closed only in Drop), and the
            // request is one of the argumentless PERF_EVENT_IOC_*
            // group controls. Failure leaves counters merely
            // un-toggled, which degrades to zero readings.
            let _ = unsafe { sys::ioctl(leader, req, sys::PERF_IOC_FLAG_GROUP) };
        }
    }
}

impl ReadCounters for CounterGroup {
    /// One atomic reading of the whole group (`PERF_FORMAT_GROUP`
    /// layout: `{nr, time_enabled, time_running, values[nr]}`), `None`
    /// on a short or failed read.
    fn read_now(&self) -> Option<CounterValues> {
        let &leader = self.fds.first()?;
        // 3 header words + one value per counter; FULL needs 9 words.
        let mut buf = [0u64; 3 + HwEvent::FULL.len()];
        let want = 8 * (3 + self.events.len());
        // SAFETY: `leader` is an open fd owned by this struct and the
        // buffer is a live, writable `want`-byte region (`want` ≤ the
        // array's size because `events` never exceeds FULL's length).
        let got = unsafe { sys::read(leader, buf.as_mut_ptr().cast::<u8>(), want) }.ok()?;
        if got != want || buf[0] != self.events.len() as u64 {
            return None;
        }
        let mut values = CounterValues {
            time_enabled: buf[1],
            time_running: buf[2],
            ..CounterValues::default()
        };
        for (i, event) in self.events.iter().enumerate() {
            // PANIC-OK: i < events.len() ≤ FULL.len(), and the buffer holds 3 + FULL.len() words
            let v = buf[3 + i];
            match event {
                HwEvent::Cycles => values.cycles = v,
                HwEvent::Instructions => values.instructions = v,
                HwEvent::CacheReferences => values.cache_references = v,
                HwEvent::CacheMisses => values.cache_misses = v,
                HwEvent::BranchInstructions => values.branches = v,
                HwEvent::BranchMisses => values.branch_misses = v,
            }
        }
        Some(values)
    }
}

impl Drop for CounterGroup {
    fn drop(&mut self) {
        // Close siblings before the leader: the kernel allows either
        // order, but this mirrors the open sequence in reverse.
        for &fd in self.fds.iter().rev() {
            // SAFETY: every fd in `fds` came from a successful
            // perf_event_open in `open` and is closed exactly once
            // (Drop runs once; no other path closes them).
            unsafe { sys::close(fd) };
        }
    }
}

/// Anything that can produce one consistent counter reading. The real
/// implementation is [`CounterGroup`]; tests substitute deterministic
/// fakes so [`PerfRecorder`] attribution is verifiable on hosts where
/// `perf_event_open` is denied.
pub trait ReadCounters {
    /// One consistent reading, `None` when counters are unreadable.
    fn read_now(&self) -> Option<CounterValues>;
}

/// The outcome of trying to arm counters: a live group, or a reason why
/// not. `Unavailable` is a fully supported steady state — every caller
/// must produce identical observable behavior (stdout, exit codes)
/// minus the perf report itself.
#[derive(Debug)]
pub enum CounterSet {
    /// Counters are live.
    Armed(CounterGroup),
    /// Counters could not be (or were asked not to be) armed.
    Unavailable {
        /// Human-readable reason, surfaced in `--profile` tables and
        /// diagnostics (never on stdout).
        reason: String,
    },
}

impl CounterSet {
    /// Arms counters per `mode`, degrading along the errno ladder:
    /// try the full six-event group, retry with the core pair when a
    /// sibling fails (PMU too small), report `Unavailable` with a
    /// diagnostic otherwise.
    #[must_use]
    pub fn open(mode: PerfMode) -> CounterSet {
        match mode {
            PerfMode::Off => CounterSet::Unavailable {
                reason: "disabled (RSQ_PERF=off)".to_owned(),
            },
            PerfMode::Deny => CounterSet::Unavailable {
                reason: format!("RSQ_PERF=deny: {}", errno_reason(1)),
            },
            PerfMode::Auto => match CounterGroup::open(&HwEvent::FULL) {
                Ok(group) => CounterSet::Armed(group),
                // A sibling may have failed on a small PMU; the core
                // pair answers the headline cycles/instructions
                // questions on its own.
                Err(_) => match CounterGroup::open(&HwEvent::CORE) {
                    Ok(group) => CounterSet::Armed(group),
                    Err(errno) => CounterSet::Unavailable {
                        reason: errno_reason(errno),
                    },
                },
            },
        }
    }

    /// The live group, if armed.
    #[must_use]
    pub fn group(&self) -> Option<&CounterGroup> {
        match self {
            CounterSet::Armed(group) => Some(group),
            CounterSet::Unavailable { .. } => None,
        }
    }

    /// The degradation reason, if unavailable.
    #[must_use]
    pub fn reason(&self) -> Option<&str> {
        match self {
            CounterSet::Armed(_) => None,
            CounterSet::Unavailable { reason } => Some(reason),
        }
    }
}

/// Renders an open failure as an actionable diagnostic (the degradation
/// ladder of DESIGN.md §16).
fn errno_reason(errno: i32) -> String {
    match errno {
        // EPERM / EACCES: almost always the paranoid sysctl; quote it.
        1 | 13 => {
            let paranoid = std::fs::read_to_string("/proc/sys/kernel/perf_event_paranoid")
                .map(|s| s.trim().to_owned())
                .unwrap_or_else(|_| "unreadable".to_owned());
            format!(
                "perf_event_open denied (errno {errno}); kernel.perf_event_paranoid={paranoid} \
                 — needs <= 2 (or CAP_PERFMON)"
            )
        }
        38 => "perf_event_open unsupported by this kernel (ENOSYS — seccomp or non-Linux)"
            .to_owned(),
        2 | 19 | 22 | 95 => format!(
            "hardware counters unsupported on this host (errno {errno} — no PMU or a VM without one)"
        ),
        other => format!("perf_event_open failed (errno {other})"),
    }
}

/// Accumulated hardware-counter report of one or more runs: whole-run
/// totals plus cycles/instructions attributed per pipeline stage via
/// [`PerfRecorder`]. Rendered into `--stats-json` (`"perf"` object),
/// the `--profile` table, and the `rsq_perf_*` metric series.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PerfStats {
    /// Input bytes the totals cover (denominator for per-byte rates).
    pub bytes: u64,
    /// Documents that contributed (1 for single-document runs; the
    /// sampled count in serve/batch).
    pub docs: u64,
    /// Whole-run counter totals.
    pub total: CounterValues,
    /// Cycles attributed per pipeline stage (indexed by
    /// [`ProfileStage::index`]).
    pub stage_cycles: [u64; STAGE_COUNT],
    /// Instructions attributed per pipeline stage.
    pub stage_instructions: [u64; STAGE_COUNT],
    /// True when only the core pair (cycles + instructions) was armed:
    /// branch/cache fields are zero by absence, not by measurement.
    pub core_only: bool,
}

impl PerfStats {
    /// Multiplex-corrected cycles per input byte (0.0 when no bytes).
    #[must_use]
    pub fn cycles_per_byte(&self) -> f64 {
        self.per_byte(self.total.cycles)
    }

    /// Multiplex-corrected instructions per input byte.
    #[must_use]
    pub fn instructions_per_byte(&self) -> f64 {
        self.per_byte(self.total.instructions)
    }

    fn per_byte(&self, value: u64) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                value as f64 * self.total.scale() / self.bytes as f64
            }
        }
    }

    /// Adds one run's whole-run delta (and its byte count) to the
    /// totals.
    pub fn add_run(&mut self, bytes: u64, delta: &CounterValues) {
        self.bytes = self.bytes.saturating_add(bytes);
        self.docs = self.docs.saturating_add(1);
        self.total.accumulate(delta);
    }

    /// Attributes a bracketed delta to `stage` (cycles and instructions
    /// only — the per-stage story is the efficiency story).
    pub fn add_stage(&mut self, stage: ProfileStage, delta: &CounterValues) {
        // PANIC-OK: ProfileStage::index is < the per-stage array length (one slot per stage)
        let c = &mut self.stage_cycles[stage.index()];
        *c = c.saturating_add(delta.cycles);
        // PANIC-OK: ProfileStage::index is < the per-stage array length (one slot per stage)
        let i = &mut self.stage_instructions[stage.index()];
        *i = i.saturating_add(delta.instructions);
    }

    /// Serializes as the single-line `"perf"` JSON object: `core_only`,
    /// `bytes`, `docs`, raw `counters`, the per-byte rates, and the
    /// per-stage attribution.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"core_only\":{},\"bytes\":{},\"docs\":{},\"counters\":{{\"cycles\":{},\"instructions\":{},\"branches\":{},\"branch_misses\":{},\"cache_references\":{},\"cache_misses\":{},\"time_enabled_ns\":{},\"time_running_ns\":{}}},\"cycles_per_byte\":{:.4},\"instructions_per_byte\":{:.4},\"stages\":{{",
            self.core_only,
            self.bytes,
            self.docs,
            self.total.cycles,
            self.total.instructions,
            self.total.branches,
            self.total.branch_misses,
            self.total.cache_references,
            self.total.cache_misses,
            self.total.time_enabled,
            self.total.time_running,
            self.cycles_per_byte(),
            self.instructions_per_byte(),
        );
        for (i, stage) in ProfileStage::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"cycles\":{},\"instructions\":{}}}",
                stage.name(),
                self.stage_cycles[stage.index()],
                self.stage_instructions[stage.index()],
            );
        }
        s.push_str("}}");
        s
    }
}

impl std::ops::AddAssign for PerfStats {
    fn add_assign(&mut self, rhs: Self) {
        self.bytes = self.bytes.saturating_add(rhs.bytes);
        self.docs = self.docs.saturating_add(rhs.docs);
        self.total.accumulate(&rhs.total);
        for (a, b) in self.stage_cycles.iter_mut().zip(rhs.stage_cycles.iter()) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self
            .stage_instructions
            .iter_mut()
            .zip(rhs.stage_instructions.iter())
        {
            *a = a.saturating_add(*b);
        }
        // Any degraded contribution taints the merged report: a branch
        // or cache field of zero may then be absence, not measurement.
        self.core_only = self.core_only || rhs.core_only;
    }
}

impl fmt::Display for PerfStats {
    /// Human-readable counter table (multi-line), appended to the
    /// `--profile` report.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hw counters        {:.2} cycles/B, {:.2} instructions/B over {} bytes{}",
            self.cycles_per_byte(),
            self.instructions_per_byte(),
            self.bytes,
            if self.core_only {
                " (core pair only)"
            } else {
                ""
            },
        )?;
        writeln!(
            f,
            "  cycles           {} ({} instructions, IPC {:.2})",
            self.total.cycles,
            self.total.instructions,
            if self.total.cycles == 0 {
                0.0
            } else {
                #[allow(clippy::cast_precision_loss)]
                {
                    self.total.instructions as f64 / self.total.cycles as f64
                }
            }
        )?;
        if !self.core_only {
            writeln!(
                f,
                "  branches         {} ({} missed)",
                self.total.branches, self.total.branch_misses
            )?;
            writeln!(
                f,
                "  cache refs       {} ({} missed)",
                self.total.cache_references, self.total.cache_misses
            )?;
        }
        write!(f, "  stage cycles    ")?;
        for stage in ProfileStage::ALL {
            write!(f, " {} {}", stage.name(), self.stage_cycles[stage.index()])?;
        }
        Ok(())
    }
}

/// Appends the `rsq_perf_*` series for `stats` to a Prometheus text
/// exposition (shared `rsq_obs::expo::metric` formatting contract).
pub fn prometheus_perf_into(out: &mut String, stats: &PerfStats) {
    use rsq_obs::expo::metric;
    for (name, help, v) in [
        (
            "rsq_perf_cycles_total",
            "CPU cycles measured by the perf counter group.",
            stats.total.cycles,
        ),
        (
            "rsq_perf_instructions_total",
            "Instructions retired, measured by the perf counter group.",
            stats.total.instructions,
        ),
        (
            "rsq_perf_branches_total",
            "Branch instructions retired.",
            stats.total.branches,
        ),
        (
            "rsq_perf_branch_misses_total",
            "Branches mispredicted.",
            stats.total.branch_misses,
        ),
        (
            "rsq_perf_cache_references_total",
            "Cache references.",
            stats.total.cache_references,
        ),
        (
            "rsq_perf_cache_misses_total",
            "Cache misses.",
            stats.total.cache_misses,
        ),
        (
            "rsq_perf_bytes_total",
            "Input bytes covered by the perf counter totals.",
            stats.bytes,
        ),
        (
            "rsq_perf_docs_total",
            "Documents sampled into the perf counter totals.",
            stats.docs,
        ),
        (
            "rsq_perf_time_enabled_ns_total",
            "Nanoseconds the counter group was enabled.",
            stats.total.time_enabled,
        ),
        (
            "rsq_perf_time_running_ns_total",
            "Nanoseconds the counter group was scheduled on the PMU.",
            stats.total.time_running,
        ),
    ] {
        metric(out, name, help, "", v, "counter");
    }
    metric(
        out,
        "rsq_perf_cycles_per_byte",
        "Multiplex-corrected CPU cycles per input byte.",
        "",
        format!("{:.4}", stats.cycles_per_byte()),
        "gauge",
    );
    metric(
        out,
        "rsq_perf_instructions_per_byte",
        "Multiplex-corrected instructions per input byte.",
        "",
        format!("{:.4}", stats.instructions_per_byte()),
        "gauge",
    );
    for stage in ProfileStage::ALL {
        metric(
            out,
            "rsq_perf_stage_cycles_total",
            "CPU cycles attributed per pipeline stage.",
            &format!("stage=\"{}\"", stage.name()),
            stats.stage_cycles[stage.index()],
            "counter",
        );
        metric(
            out,
            "rsq_perf_stage_instructions_total",
            "Instructions attributed per pipeline stage.",
            &format!("stage=\"{}\"", stage.name()),
            stats.stage_instructions[stage.index()],
            "counter",
        );
    }
}

/// The `rsq_perf_*` series as a standalone exposition.
#[must_use]
pub fn prometheus_perf(stats: &PerfStats) -> String {
    let mut out = String::with_capacity(2048);
    prometheus_perf_into(&mut out, stats);
    out
}

/// A [`Recorder`] adapter that rides the engine's existing stage-timer
/// brackets: every [`Recorder::clock`] call snapshots the counter group
/// (LIFO, so nested classify-inside-automaton brackets attribute
/// correctly) and the matching [`Recorder::stage_ns`] pops the snapshot
/// and charges the delta to the stage in a [`PerfStats`]. All other
/// hooks delegate to the wrapped recorder unchanged, so Tier A counters
/// and Tier C profiles come out identical with or without this wrapper.
pub struct PerfRecorder<'a, R: Recorder, C: ReadCounters> {
    inner: &'a mut R,
    counters: &'a C,
    stats: &'a mut PerfStats,
    snaps: Vec<CounterValues>,
}

impl<'a, R: Recorder, C: ReadCounters> PerfRecorder<'a, R, C> {
    /// Wraps `inner`, attributing stage deltas read from `counters`
    /// into `stats`.
    pub fn new(inner: &'a mut R, counters: &'a C, stats: &'a mut PerfStats) -> Self {
        PerfRecorder {
            inner,
            counters,
            stats,
            snaps: Vec::with_capacity(4),
        }
    }
}

impl<R: Recorder, C: ReadCounters> Recorder for PerfRecorder<'_, R, C> {
    #[inline]
    fn event(&mut self, pos: usize) {
        self.inner.event(pos);
    }

    #[inline]
    fn leaf_skip(&mut self) {
        self.inner.leaf_skip();
    }

    #[inline]
    fn child_skip(&mut self) {
        self.inner.child_skip();
    }

    #[inline]
    fn sibling_skip(&mut self) {
        self.inner.sibling_skip();
    }

    #[inline]
    fn label_seek(&mut self) {
        self.inner.label_seek();
    }

    #[inline]
    fn memmem_jump(&mut self) {
        self.inner.memmem_jump();
    }

    #[inline]
    fn memmem_decline(&mut self) {
        self.inner.memmem_decline();
    }

    #[inline]
    fn route(&mut self, route: rsq_obs::Route) {
        self.inner.route(route);
    }

    #[inline]
    fn resume_handoff(&mut self) {
        self.inner.resume_handoff();
    }

    #[inline]
    fn depth(&mut self, depth: u32) {
        self.inner.depth(depth);
    }

    #[inline]
    fn matched(&mut self) {
        self.inner.matched();
    }

    #[inline]
    fn classifier(&mut self, counters: &rsq_obs::ClassifierCounters) {
        self.inner.classifier(counters);
    }

    #[inline]
    fn quote_blocks(&mut self, blocks: u64) {
        self.inner.quote_blocks(blocks);
    }

    #[inline]
    fn skip_span(&mut self, technique: rsq_obs::SkipTechnique, from: usize, to: usize) {
        self.inner.skip_span(technique, from, to);
    }

    #[inline]
    fn clock(&mut self) -> u64 {
        self.snaps
            .push(self.counters.read_now().unwrap_or_default());
        self.inner.clock()
    }

    #[inline]
    fn stage_ns(&mut self, stage: ProfileStage, start: u64) {
        if let Some(open) = self.snaps.pop() {
            if let Some(now) = self.counters.read_now() {
                self.stats.add_stage(stage, &now.delta_since(&open));
            }
        }
        self.inner.stage_ns(stage, start);
    }
}

/// Raw x86_64-Linux syscalls. No libc: the workspace builds offline
/// with zero external crates, so the calls we need are issued directly
/// via the `syscall` instruction per the kernel ABI (args in
/// rdi/rsi/rdx/r10/r8/r9, number in rax, result in rax, rcx/r11
/// clobbered; errors are returned as `-errno` in `-4095..=-1`).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::arch::asm;

    const SYS_READ: usize = 0;
    const SYS_CLOSE: usize = 3;
    const SYS_IOCTL: usize = 16;
    const SYS_PERF_EVENT_OPEN: usize = 298;

    /// `PERF_EVENT_IOC_ENABLE` (argumentless `_IO('$', 0)`).
    pub(crate) const PERF_EVENT_IOC_ENABLE: usize = 0x2400;
    /// `PERF_EVENT_IOC_DISABLE`.
    pub(crate) const PERF_EVENT_IOC_DISABLE: usize = 0x2401;
    /// `PERF_EVENT_IOC_RESET`.
    pub(crate) const PERF_EVENT_IOC_RESET: usize = 0x2403;
    /// Apply the ioctl to the whole group, not just the leader fd.
    pub(crate) const PERF_IOC_FLAG_GROUP: usize = 1;

    /// `PERF_FLAG_FD_CLOEXEC`: counters do not leak across exec.
    const PERF_FLAG_FD_CLOEXEC: usize = 8;

    /// Largest `-errno` the kernel returns; anything in `-4095..=-1`
    /// is an error code, anything else a valid result.
    const ERRNO_MAX: isize = 4095;

    /// `perf_event_attr`, `PERF_ATTR_SIZE_VER0` prefix (64 bytes —
    /// every kernel since 2.6.32 accepts this size, and we use no
    /// later field). Field order and widths match the UAPI struct.
    #[repr(C)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        config1: u64,
    }

    /// `PERF_TYPE_HARDWARE`.
    const PERF_TYPE_HARDWARE: u32 = 0;
    const PERF_ATTR_SIZE_VER0: u32 = 64;
    /// `PERF_FORMAT_TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING | GROUP`.
    const READ_FORMAT: u64 = 1 | 2 | 8;
    /// Attr flag bits (LSB-first bitfield in the UAPI struct).
    const FLAG_DISABLED: u64 = 1;
    const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
    const FLAG_EXCLUDE_HV: u64 = 1 << 6;

    /// `perf_event_open(&attr, 0, -1, group_fd, FD_CLOEXEC)`: one
    /// user-space hardware counter for the **calling thread** on any
    /// CPU. The leader (`leader == true`, `group_fd == -1`) starts
    /// disabled so the group begins counting only at the explicit
    /// `PERF_EVENT_IOC_ENABLE`; siblings inherit the leader's state.
    /// Kernel and hypervisor cycles are excluded, which keeps the
    /// counters openable at `perf_event_paranoid == 2` (the common
    /// distro default).
    pub(crate) fn perf_event_open(config: u64, group_fd: i32, leader: bool) -> Result<i32, i32> {
        let attr = PerfEventAttr {
            type_: PERF_TYPE_HARDWARE,
            size: PERF_ATTR_SIZE_VER0,
            config,
            sample_period: 0,
            sample_type: 0,
            read_format: READ_FORMAT,
            flags: if leader { FLAG_DISABLED } else { 0 } | FLAG_EXCLUDE_KERNEL | FLAG_EXCLUDE_HV,
            wakeup_events: 0,
            bp_type: 0,
            config1: 0,
        };
        let ret: isize;
        // SAFETY: the attr struct is a live 64-byte local whose
        // declared `size` matches its layout, so the kernel reads
        // exactly the bytes we initialized; the asm matches the
        // syscall ABI (five args, rcx/r11 declared clobbered) and the
        // call allocates only a new fd — it touches no memory of this
        // process beyond reading `attr`.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_PERF_EVENT_OPEN as isize => ret,
                in("rdi") std::ptr::addr_of!(attr),
                in("rsi") 0usize,          // pid 0: this thread
                in("rdx") -1isize,         // cpu -1: any CPU
                in("r10") group_fd as isize,
                in("r8") PERF_FLAG_FD_CLOEXEC,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if (-ERRNO_MAX..0).contains(&ret) {
            Err(-ret as i32)
        } else {
            Ok(ret as i32)
        }
    }

    /// `read(fd, buf, count)`.
    ///
    /// # Safety
    ///
    /// `fd` must be an open, readable file descriptor and `buf` must be
    /// valid for `count` writable bytes for the duration of the call.
    pub(crate) unsafe fn read(fd: i32, buf: *mut u8, count: usize) -> Result<usize, i32> {
        let ret: isize;
        // SAFETY: per this function's contract the kernel writes at
        // most `count` bytes into the live buffer; the asm matches the
        // syscall ABI (three args, rcx/r11 declared clobbered).
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_READ as isize => ret,
                in("rdi") fd as isize,
                in("rsi") buf,
                in("rdx") count,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if (-ERRNO_MAX..0).contains(&ret) {
            Err(-ret as i32)
        } else {
            Ok(ret as usize)
        }
    }

    /// `ioctl(fd, req, arg)` for the argumentless `PERF_EVENT_IOC_*`
    /// group controls.
    ///
    /// # Safety
    ///
    /// `fd` must be an open perf event fd and `req` one of the
    /// `PERF_EVENT_IOC_*` requests that take an integer argument (the
    /// kernel dereferences nothing for these).
    pub(crate) unsafe fn ioctl(fd: i32, req: usize, arg: usize) -> Result<(), i32> {
        let ret: isize;
        // SAFETY: per this function's contract the request passes a
        // plain integer, so the kernel touches no memory of this
        // process; the asm matches the syscall ABI (three args,
        // rcx/r11 declared clobbered).
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_IOCTL as isize => ret,
                in("rdi") fd as isize,
                in("rsi") req,
                in("rdx") arg,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if (-ERRNO_MAX..0).contains(&ret) {
            Err(-ret as i32)
        } else {
            Ok(())
        }
    }

    /// `close(fd)`.
    ///
    /// # Safety
    ///
    /// `fd` must be an fd this module opened that has not been closed
    /// yet; it is invalid after the call. The result is ignored —
    /// there is nothing to do about a failed close in `Drop`.
    pub(crate) unsafe fn close(fd: i32) {
        let _ret: isize;
        // SAFETY: per this function's contract `fd` is ours to close
        // exactly once; the asm matches the syscall ABI (one arg,
        // rcx/r11 declared clobbered).
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_CLOSE as isize => _ret,
                in("rdi") fd as isize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsq_obs::RunStats;
    use std::cell::Cell;

    /// Deterministic counter source: each reading advances cycles by
    /// 100 and instructions by 300, so bracketed deltas are exact.
    struct FakeCounters {
        reads: Cell<u64>,
    }

    impl FakeCounters {
        fn new() -> Self {
            FakeCounters {
                reads: Cell::new(0),
            }
        }
    }

    impl ReadCounters for FakeCounters {
        fn read_now(&self) -> Option<CounterValues> {
            let n = self.reads.get() + 1;
            self.reads.set(n);
            Some(CounterValues {
                cycles: n * 100,
                instructions: n * 300,
                time_enabled: n,
                time_running: n,
                ..CounterValues::default()
            })
        }
    }

    #[test]
    fn perf_mode_parses_and_rejects_typos() {
        assert_eq!(PerfMode::parse("auto"), Ok(PerfMode::Auto));
        assert_eq!(PerfMode::parse("off"), Ok(PerfMode::Off));
        assert_eq!(PerfMode::parse("deny"), Ok(PerfMode::Deny));
        assert!(PerfMode::parse("on").is_err());
        assert!(PerfMode::parse("").is_err());
    }

    #[test]
    fn off_and_deny_are_unavailable_with_stable_reasons() {
        let off = CounterSet::open(PerfMode::Off);
        assert!(off.group().is_none());
        assert_eq!(off.reason(), Some("disabled (RSQ_PERF=off)"));

        let deny = CounterSet::open(PerfMode::Deny);
        assert!(deny.group().is_none());
        let reason = deny.reason().expect("deny has a reason");
        assert!(reason.starts_with("RSQ_PERF=deny:"), "{reason}");
        assert!(reason.contains("perf_event_paranoid"), "{reason}");
    }

    /// On a perf-capable host the armed group counts a spin loop; on a
    /// denied host the reason follows the errno ladder. Both branches
    /// are legitimate outcomes — this asserts the degradation contract,
    /// not host capability.
    #[test]
    fn auto_arms_or_degrades_with_a_diagnostic() {
        match CounterSet::open(PerfMode::Auto) {
            CounterSet::Armed(group) => {
                group.start();
                let mut acc = 0u64;
                for i in 0..200_000u64 {
                    acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
                }
                let values = group.stop().expect("armed group reads");
                assert!(acc != 1, "keep the loop alive");
                assert!(values.cycles > 0, "spin loop burned cycles: {values:?}");
                assert!(values.instructions > 0, "{values:?}");
                assert!(values.time_enabled > 0, "{values:?}");
                // A second start() resets: totals shrink back.
                group.start();
                let again = group.stop().expect("reads after reset");
                assert!(again.cycles < values.cycles || values.cycles == u64::MAX);
            }
            CounterSet::Unavailable { reason } => {
                assert!(
                    reason.contains("errno") || reason.contains("ENOSYS"),
                    "ladder reason expected, got: {reason}"
                );
            }
        }
    }

    #[test]
    fn errno_ladder_reasons_are_actionable() {
        assert!(errno_reason(1).contains("perf_event_paranoid"));
        assert!(errno_reason(13).contains("denied"));
        assert!(errno_reason(38).contains("ENOSYS"));
        assert!(errno_reason(19).contains("unsupported"));
        assert!(errno_reason(7777).contains("7777"));
    }

    #[test]
    fn delta_and_accumulate_are_saturating_inverses() {
        let a = CounterValues {
            cycles: 1000,
            instructions: 3000,
            time_enabled: 10,
            time_running: 10,
            ..CounterValues::default()
        };
        let b = CounterValues {
            cycles: 1500,
            instructions: 4200,
            time_enabled: 15,
            time_running: 15,
            ..CounterValues::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.cycles, 500);
        assert_eq!(d.instructions, 1200);
        // Reversed order saturates to zero instead of wrapping.
        let z = a.delta_since(&b);
        assert_eq!(z.cycles, 0);
        let mut acc = a;
        acc.accumulate(&d);
        assert_eq!(acc.cycles, b.cycles);
        assert_eq!(acc.instructions, b.instructions);
    }

    #[test]
    fn scale_corrects_for_multiplexing() {
        let full = CounterValues {
            time_enabled: 100,
            time_running: 100,
            ..CounterValues::default()
        };
        assert!((full.scale() - 1.0).abs() < 1e-12);
        let half = CounterValues {
            time_enabled: 100,
            time_running: 50,
            ..CounterValues::default()
        };
        assert!((half.scale() - 2.0).abs() < 1e-12);
        let idle = CounterValues::default();
        assert!((idle.scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_byte_rates_use_the_scale() {
        let mut stats = PerfStats::default();
        stats.add_run(
            1000,
            &CounterValues {
                cycles: 2000,
                instructions: 6000,
                time_enabled: 100,
                time_running: 50,
                ..CounterValues::default()
            },
        );
        // 2000 cycles over 1000 bytes, doubled for 50% multiplexing.
        assert!((stats.cycles_per_byte() - 4.0).abs() < 1e-9);
        assert!((stats.instructions_per_byte() - 12.0).abs() < 1e-9);
        assert_eq!(stats.docs, 1);
        let empty = PerfStats::default();
        assert!((empty.cycles_per_byte() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn recorder_attributes_nested_brackets_lifo() {
        let fake = FakeCounters::new();
        let mut inner = RunStats::default();
        let mut stats = PerfStats::default();
        {
            let mut rec = PerfRecorder::new(&mut inner, &fake, &mut stats);
            // Outer automaton bracket: snapshot at read #1.
            let t_auto = rec.clock();
            rec.event(0);
            // Nested classify bracket: snapshot #2, closed with #3.
            let t_classify = rec.clock();
            rec.stage_ns(ProfileStage::Classify, t_classify);
            // Outer closes with read #4: delta = 3 reads * 100 cycles.
            rec.stage_ns(ProfileStage::Automaton, t_auto);
        }
        assert_eq!(stats.stage_cycles[ProfileStage::Classify.index()], 100);
        assert_eq!(
            stats.stage_instructions[ProfileStage::Classify.index()],
            300
        );
        assert_eq!(stats.stage_cycles[ProfileStage::Automaton.index()], 300);
        assert_eq!(inner.events, 1, "inner recorder still sees its hooks");
    }

    #[test]
    fn recorder_delegates_all_counter_hooks() {
        let fake = FakeCounters::new();
        let mut inner = RunStats::default();
        let mut stats = PerfStats::default();
        {
            let mut rec = PerfRecorder::new(&mut inner, &fake, &mut stats);
            rec.matched();
            rec.leaf_skip();
            rec.child_skip();
            rec.sibling_skip();
            rec.label_seek();
            rec.memmem_jump();
            rec.memmem_decline();
            rec.resume_handoff();
            rec.depth(7);
            rec.route(rsq_obs::Route::FieldChain);
            rec.quote_blocks(3);
        }
        assert_eq!(inner.matches, 1);
        assert_eq!(inner.skips.leaf, 1);
        assert_eq!(inner.skips.child, 1);
        assert_eq!(inner.skips.sibling, 1);
        assert_eq!(inner.skips.label, 1);
        assert_eq!(inner.memmem_jumps, 1);
        assert_eq!(inner.memmem_declined, 1);
        assert_eq!(inner.resume_handoffs, 1);
        assert_eq!(inner.max_depth, 7);
        assert_eq!(inner.route, rsq_obs::Route::FieldChain);
        assert_eq!(inner.blocks.quote, 3);
    }

    #[test]
    fn unbalanced_stage_ns_is_harmless() {
        let fake = FakeCounters::new();
        let mut inner = RunStats::default();
        let mut stats = PerfStats::default();
        let mut rec = PerfRecorder::new(&mut inner, &fake, &mut stats);
        // stage_ns without a prior clock(): no snapshot to pop.
        rec.stage_ns(ProfileStage::Sink, 0);
        assert_eq!(stats.stage_cycles[ProfileStage::Sink.index()], 0);
    }

    #[test]
    fn json_has_stable_keys_and_merge_adds() {
        let mut a = PerfStats::default();
        a.add_run(
            100,
            &CounterValues {
                cycles: 500,
                instructions: 1500,
                ..CounterValues::default()
            },
        );
        a.add_stage(
            ProfileStage::Automaton,
            &CounterValues {
                cycles: 400,
                instructions: 1200,
                ..CounterValues::default()
            },
        );
        let json = a.to_json();
        for key in [
            "\"core_only\":false",
            "\"bytes\":100",
            "\"docs\":1",
            "\"counters\":{\"cycles\":500",
            "\"cycles_per_byte\":5.0000",
            "\"instructions_per_byte\":15.0000",
            "\"stages\":{\"ingest\":{\"cycles\":0",
            "\"automaton\":{\"cycles\":400,\"instructions\":1200}",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        let mut b = a;
        b += a;
        assert_eq!(b.bytes, 200);
        assert_eq!(b.docs, 2);
        assert_eq!(b.total.cycles, 1000);
        assert_eq!(b.stage_cycles[ProfileStage::Automaton.index()], 800);
    }

    #[test]
    fn prometheus_series_pass_the_expo_lint() {
        let mut stats = PerfStats::default();
        stats.add_run(
            64,
            &CounterValues {
                cycles: 128,
                instructions: 512,
                branches: 64,
                branch_misses: 2,
                cache_references: 10,
                cache_misses: 1,
                time_enabled: 1000,
                time_running: 1000,
            },
        );
        stats.add_stage(
            ProfileStage::Classify,
            &CounterValues {
                cycles: 32,
                instructions: 100,
                ..CounterValues::default()
            },
        );
        let text = prometheus_perf(&stats);
        rsq_obs::expo::check(&text).expect("rsq_perf_* series are well-formed");
        assert!(text.contains("rsq_perf_cycles_total 128"));
        assert!(text.contains("rsq_perf_cycles_per_byte 2.0000"));
        assert!(text.contains("rsq_perf_stage_cycles_total{stage=\"classify\"} 32"));
        assert_eq!(text.matches("# TYPE rsq_perf_cycles_total ").count(), 1);
    }
}
