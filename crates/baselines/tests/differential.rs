//! The backbone of the correctness story: the SIMD engine, the scalar
//! surfer baseline, and the DOM reference oracle must agree on the exact
//! match positions for arbitrary documents and arbitrary queries from the
//! grammar. The JSONSki baseline is checked on the fragment it supports
//! (descendant-free queries, against an oracle with its non-idiomatic
//! wildcard).
//!
//! Generated documents have unique keys per object, matching the
//! assumption behind sibling skipping (RFC 8259 SHOULD; see §3.3).

use proptest::prelude::*;
use rsq_baselines::{positions as oracle_positions, SkiEngine, SurferEngine};
use rsq_engine::{Engine, EngineOptions, PositionsSink};
use rsq_json::{Key, Span, ValueKind, ValueNode};
use rsq_query::{Query, Selector};

const LABELS: [&str; 5] = ["a", "b", "c", "dd", "a b"];

fn leaf() -> impl Strategy<Value = ValueNode> {
    let kind = prop_oneof![
        Just(ValueKind::Null),
        any::<bool>().prop_map(ValueKind::Bool),
        (-99i64..100).prop_map(|n| ValueKind::Number(rsq_json::Number::from_raw(n.to_string()))),
        // Strings with structural lookalikes, escaped quotes and label text.
        prop_oneof![
            Just(r#"x"#.to_owned()),
            Just(r#"{\"a\": 1}"#.to_owned()),
            Just(r#"[,:]}"#.to_owned()),
            Just(r#"\\"#.to_owned()),
            Just(r#"\"b\":"#.to_owned()),
            Just("żółć".to_owned()),
        ]
        .prop_map(ValueKind::String),
    ];
    kind.prop_map(|kind| ValueNode {
        kind,
        span: Span { start: 0, end: 0 },
    })
}

fn arb_doc() -> impl Strategy<Value = ValueNode> {
    leaf().prop_recursive(5, 80, 5, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(|items| ValueNode {
                kind: ValueKind::Array(items),
                span: Span { start: 0, end: 0 },
            }),
            // Unique keys per object: sample a subset of the label pool.
            proptest::collection::btree_map(0usize..LABELS.len(), inner, 0..5).prop_map(
                |members| ValueNode {
                    kind: ValueKind::Object(
                        members
                            .into_iter()
                            .map(|(k, v)| {
                                (
                                    Key {
                                        text: LABELS[k].to_owned(),
                                        span: Span { start: 0, end: 0 },
                                    },
                                    v,
                                )
                            })
                            .collect(),
                    ),
                    span: Span { start: 0, end: 0 },
                }
            ),
        ]
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    let label = prop_oneof![Just("a"), Just("b"), Just("c"), Just("dd"), Just("zz")];
    let selector = prop_oneof![
        3 => label.clone().prop_map(|l| Selector::Child(l.to_owned())),
        2 => Just(Selector::ChildWildcard),
        3 => label.prop_map(|l| Selector::Descendant(l.to_owned())),
        1 => Just(Selector::DescendantWildcard),
        2 => (0u64..4).prop_map(Selector::Index),
        1 => (0u64..3).prop_map(Selector::DescendantIndex),
    ];
    proptest::collection::vec(selector, 0..5).prop_map(Query::from_selectors)
}

/// Serializes with random-ish whitespace so block boundaries move around.
fn serialize_spaced(doc: &ValueNode, pad: usize) -> String {
    let compact = rsq_json::to_string(doc);
    if pad == 0 {
        return compact;
    }
    // Insert spaces after commas/colons outside strings.
    let mut out = String::with_capacity(compact.len() * 2);
    let mut in_string = false;
    let mut escaped = false;
    for c in compact.chars() {
        out.push(c);
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            ',' | ':' | '{' | '[' => out.push_str(&" ".repeat(pad)),
            _ => {}
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn engines_agree_with_oracle(
        doc in arb_doc(),
        query in arb_query(),
        pad in 0usize..3,
    ) {
        let text = serialize_spaced(&doc, pad);
        let bytes = text.as_bytes();
        let parsed = rsq_json::parse(bytes).expect("generated JSON is valid");
        let expected = oracle_positions(&query, &parsed);

        // The SIMD engine under default options and with each feature off.
        let d = EngineOptions::default();
        for options in [
            d,
            EngineOptions { skip_leaves: false, ..d },
            EngineOptions { skip_children: false, ..d },
            EngineOptions { skip_siblings: false, ..d },
            EngineOptions { head_start: false, ..d },
            EngineOptions { sparse_stack: false, ..d },
            EngineOptions { backend: Some(rsq_simd::BackendKind::Swar), ..d },
        ] {
            let engine = Engine::with_options(&query, options).unwrap();
            let mut sink = PositionsSink::new();
            engine.run(bytes, &mut sink);
            prop_assert_eq!(
                sink.positions(),
                expected.as_slice(),
                "engine {:?} on {} with {}",
                options, text, query
            );
        }

        // The scalar surfer baseline.
        let surfer = SurferEngine::from_query(&query).unwrap();
        prop_assert_eq!(
            surfer.positions(bytes),
            expected.as_slice(),
            "surfer on {} with {}",
            text, query
        );
    }

    /// JSONSki-style engine agrees with an oracle restricted to its
    /// non-idiomatic wildcard (array entries only).
    #[test]
    fn ski_agrees_with_restricted_oracle(
        doc in arb_doc(),
        query in arb_query(),
        pad in 0usize..2,
    ) {
        if query.has_descendants() {
            prop_assert!(SkiEngine::from_query(&query).is_err());
            return Ok(());
        }
        let text = serialize_spaced(&doc, pad);
        let bytes = text.as_bytes();
        let parsed = rsq_json::parse(bytes).expect("generated JSON is valid");
        let expected = ski_oracle(&query, &parsed);
        let ski = SkiEngine::from_query(&query).unwrap();
        let mut sink = PositionsSink::new();
        ski.run(bytes, &mut sink);
        prop_assert_eq!(
            sink.positions(),
            expected.as_slice(),
            "ski on {} with {}",
            text, query
        );
    }
}

/// DOM oracle with JSONSki's wildcard semantics: wildcards step into array
/// entries only.
fn ski_oracle(query: &Query, doc: &ValueNode) -> Vec<usize> {
    let mut current: Vec<&ValueNode> = vec![doc];
    for sel in query.selectors() {
        let mut next = Vec::new();
        for node in current {
            match (sel, &node.kind) {
                (Selector::Child(l), ValueKind::Object(members)) => {
                    // First match only: sibling skipping assumes unique keys.
                    if let Some((_, v)) = members.iter().find(|(k, _)| k.text == *l) {
                        next.push(v);
                    }
                }
                (Selector::ChildWildcard, ValueKind::Array(items)) => {
                    next.extend(items.iter());
                }
                (Selector::Index(n), ValueKind::Array(items)) => {
                    if let Some(item) = items.get(*n as usize) {
                        next.push(item);
                    }
                }
                _ => {}
            }
        }
        current = next;
    }
    let mut pos: Vec<usize> = current.iter().map(|n| n.span.start).collect();
    pos.sort_unstable();
    pos
}
