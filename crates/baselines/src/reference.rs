//! Reference JSONPath evaluator over the DOM — the correctness oracle.
//!
//! Implements the formal semantics of §2 of the paper directly on a parsed
//! [`ValueNode`] tree, in both variants:
//!
//! * **node semantics** — the result is a *set* of nodes (each matched node
//!   reported once, in document order); this is what the streaming engine
//!   implements;
//! * **path semantics** — the result is a *multiset*: one occurrence per
//!   way the query can be matched to a path (what most existing JSONPath
//!   implementations do; see Appendix D and Table 9 of the paper).
//!
//! This evaluator is deliberately naive and obviously correct; it exists
//! to differentially test the streaming engines, and to reproduce the
//! node-vs-path comparison of Appendix D.

use rsq_json::{Span, ValueKind, ValueNode};
use rsq_query::{Query, Selector};

/// Which JSONPath result semantics to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Semantics {
    /// Set-of-nodes semantics (the paper's choice).
    Node,
    /// Multiset semantics counting match derivations.
    Path,
}

/// Evaluates `query` over a parsed document, returning the spans of the
/// matched nodes in document order.
///
/// Under [`Semantics::Path`], a node appears once per derivation.
///
/// # Examples
///
/// ```
/// use rsq_baselines::{evaluate, Semantics};
/// use rsq_query::Query;
///
/// let doc = rsq_json::parse(br#"{"a":{"a":{"b":1}}}"#)?;
/// let query = Query::parse("$..a..b")?;
/// assert_eq!(evaluate(&query, &doc, Semantics::Node).len(), 1);
/// assert_eq!(evaluate(&query, &doc, Semantics::Path).len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn evaluate(query: &Query, document: &ValueNode, semantics: Semantics) -> Vec<Span> {
    let mut current: Vec<&ValueNode> = vec![document];
    for selector in query.selectors() {
        let mut next: Vec<&ValueNode> = Vec::new();
        for node in &current {
            apply(selector, node, &mut next);
        }
        if semantics == Semantics::Node {
            dedup_by_span(&mut next);
        }
        current = next;
    }
    let mut spans: Vec<Span> = current.iter().map(|n| n.span).collect();
    // Document order; stable so path-semantics duplicates stay adjacent.
    spans.sort_by_key(|s| s.start);
    spans
}

/// Applies a single selector to one node, appending matches in document
/// order.
fn apply<'a>(selector: &Selector, node: &'a ValueNode, out: &mut Vec<&'a ValueNode>) {
    match selector {
        Selector::Child(label) => {
            if let ValueKind::Object(members) = &node.kind {
                for (key, value) in members {
                    if key.text == *label {
                        out.push(value);
                    }
                }
            }
        }
        Selector::ChildWildcard => out.extend(node.children()),
        Selector::Descendant(label) => {
            apply(&Selector::Child(label.clone()), node, out);
            for child in node.children() {
                apply(selector, child, out);
            }
        }
        Selector::DescendantWildcard => {
            for child in node.children() {
                out.push(child);
                apply(selector, child, out);
            }
        }
        Selector::Index(n) => {
            if let ValueKind::Array(items) = &node.kind {
                if let Some(item) = items.get(*n as usize) {
                    out.push(item);
                }
            }
        }
        Selector::DescendantIndex(n) => {
            apply(&Selector::Index(*n), node, out);
            for child in node.children() {
                apply(selector, child, out);
            }
        }
    }
}

fn dedup_by_span(nodes: &mut Vec<&ValueNode>) {
    let mut seen = std::collections::HashSet::new();
    nodes.retain(|n| seen.insert(n.span));
}

/// Convenience: match-count under the given semantics.
#[must_use]
pub fn count(query: &Query, document: &ValueNode, semantics: Semantics) -> usize {
    evaluate(query, document, semantics).len()
}

/// Convenience: byte offsets of matched nodes (node semantics), for direct
/// comparison with [`rsq_engine::Engine::positions`]-style output.
#[must_use]
pub fn positions(query: &Query, document: &ValueNode) -> Vec<usize> {
    evaluate(query, document, Semantics::Node)
        .into_iter()
        .map(|s| s.start)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsq_json::parse;

    fn eval(query: &str, doc: &str, semantics: Semantics) -> usize {
        let q = Query::parse(query).unwrap();
        let d = parse(doc.as_bytes()).unwrap();
        count(&q, &d, semantics)
    }

    #[test]
    fn child_and_wildcard() {
        let doc = r#"{"a": {"b": 1, "c": 2}, "d": [3, 4]}"#;
        assert_eq!(eval("$.a.b", doc, Semantics::Node), 1);
        assert_eq!(eval("$.a.*", doc, Semantics::Node), 2);
        assert_eq!(eval("$.d.*", doc, Semantics::Node), 2);
        assert_eq!(eval("$.*", doc, Semantics::Node), 2);
        assert_eq!(eval("$.d.b", doc, Semantics::Node), 0);
    }

    #[test]
    fn paper_section2_example() {
        // a..b.* on {a:[{b:{c:1}},{b:[2]}]} returns 1 and 2.
        let doc = r#"{"a":[{"b":{"c":1}},{"b":[2]}]}"#;
        assert_eq!(eval("$.a..b.*", doc, Semantics::Node), 2);
    }

    #[test]
    fn node_vs_path_on_appendix_d_witness() {
        // $..a..b on nested a's: node = 1, path = 3 (§2).
        let doc = r#"{"a":{"a":{"a":{"b":"Yay!"}}}}"#;
        assert_eq!(eval("$..a..b", doc, Semantics::Node), 1);
        assert_eq!(eval("$..a..b", doc, Semantics::Path), 3);
    }

    #[test]
    fn appendix_d_person_name_example() {
        let doc = r#"{
            "person": {
                "name": "A",
                "spouse": {"person": {"name": "B"}},
                "children": [
                    {"person": {"name": "C"}},
                    {"person": {"name": "D"}}
                ]
            }
        }"#;
        // Node semantics: A, B, C, D once each. Path semantics: B, C, D
        // are nested under the outer person as well as their own, so each
        // has two derivations — 7 in total.
        assert_eq!(eval("$..person..name", doc, Semantics::Node), 4);
        assert_eq!(eval("$..person..name", doc, Semantics::Path), 7);
    }

    #[test]
    fn path_semantics_can_explode_exponentially() {
        // Chain of n nested a's with k descendant-a selectors multiplies
        // derivations combinatorially.
        let mut doc = String::new();
        for _ in 0..6 {
            doc.push_str("{\"a\":");
        }
        doc.push('1');
        doc.push_str(&"}".repeat(6));
        let node = eval("$..a..a", &doc, Semantics::Node);
        let path = eval("$..a..a", &doc, Semantics::Path);
        assert_eq!(node, 5); // a-values at depth 2..=6
        assert!(path > node, "path = {path} must exceed node = {node}");
    }

    #[test]
    fn descendant_wildcard_counts_all_non_root_nodes() {
        let doc = r#"{"a": {"b": 1}, "c": [2, 3]}"#;
        assert_eq!(eval("$..*", doc, Semantics::Node), 5);
    }

    #[test]
    fn duplicate_keys_both_match() {
        let doc = r#"{"k": 1, "k": 2}"#;
        assert_eq!(eval("$.k", doc, Semantics::Node), 2);
    }

    #[test]
    fn positions_are_document_ordered() {
        let q = Query::parse("$..x").unwrap();
        let d = parse(br#"{"x": 1, "a": {"x": 2}, "b": {"x": 3}}"#).unwrap();
        let pos = positions(&q, &d);
        assert_eq!(pos.len(), 3);
        assert!(pos.windows(2).all(|w| w[0] < w[1]));
    }
}
