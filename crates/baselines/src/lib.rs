//! Baseline JSONPath engines for the `rsq` evaluation (§5.2 of the paper).
//!
//! Three independent implementations, each playing the role of one of the
//! paper's competitors or of the correctness oracle:
//!
//! * [`evaluate`] / [`positions`] — a naive DOM evaluator implementing the
//!   formal semantics of §2 under both **node** and **path** semantics
//!   ([`Semantics`]); the oracle every streaming engine is differentially
//!   tested against, and the reproduction of the Appendix D comparison.
//! * [`SurferEngine`] — a scalar streaming engine in the architecture of
//!   JsonSurfer: byte-at-a-time lexing, a full per-container state stack,
//!   no SIMD, no skipping. Supports the full query fragment.
//! * [`SkiEngine`] — a descendant-free fast-forwarding engine in the
//!   execution model of JSONSki, including its array-only wildcard
//!   assumption and its need to scan atomic values when the final selector
//!   is a label (the B2-vs-B3 asymmetry of §5.4).
//!
//! The original JsonSurfer (Java) and JSONSki (C++) are not redistributable
//! inside this repository; these stand-ins replicate their *algorithmic*
//! behaviour so that the paper's experiments can be regenerated. See
//! `DESIGN.md` for the substitution rationale.

#![warn(missing_docs)]

mod reference;
mod ski;
mod surfer;

pub use reference::{count, evaluate, positions, Semantics};
pub use ski::{SkiEngine, UnsupportedQuery};
pub use surfer::SurferEngine;
