//! A descendant-free fast-forwarding engine — the JSONSki stand-in.
//!
//! JSONSki (ASPLOS 2022; the paper's main SIMD competitor, §5.2) supports
//! JSONPath without descendants and with a *non-idiomatic* wildcard that
//! steps into every entry of an array but **not** into the fields of an
//! object. It relies on knowing whether each selector acts on objects or
//! arrays — the very assumption the paper shows blocks descendant support.
//!
//! This module reimplements that execution model on top of the shared
//! classifier substrate (JSONSki has equivalent bit-parallel primitives of
//! its own; sharing ours compares algorithms, not SIMD plumbing):
//!
//! * recursive descent over the selectors — no query automaton;
//! * wildcard selectors skip objects outright (the array-only assumption);
//! * label selectors skip the remaining siblings once their key is found;
//! * a **final label selector** must also match atomic member values, so
//!   colons stay enabled while scanning for it — this reproduces JSONSki
//!   being ≈3× slower on B3 than on B2 (§5.4);
//! * a non-final label selector only inspects composite values, keeping
//!   leaf skipping fully enabled.

use rsq_classify::{BracketType, Structural, StructuralIterator};
use rsq_engine::Sink;
use rsq_query::{Query, Selector};
use rsq_simd::Simd;
use std::fmt;

/// Error: the query uses features JSONSki does not support.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsupportedQuery {
    /// The offending selector, displayed.
    pub selector: String,
}

impl fmt::Display for UnsupportedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "the JSONSki baseline does not support selector '{}' (descendants are unsupported)",
            self.selector
        )
    }
}

impl std::error::Error for UnsupportedQuery {}

#[derive(Clone, Debug)]
enum SkiSelector {
    Label(Vec<u8>),
    Wildcard,
    Index(u64),
}

/// The descendant-free fast-forwarding baseline engine.
///
/// # Examples
///
/// ```
/// use rsq_baselines::SkiEngine;
///
/// let engine = SkiEngine::from_text("$.items.*.name").unwrap();
/// let doc = br#"{"items": [{"name": "a"}, {"name": "b"}]}"#;
/// assert_eq!(engine.count(doc), 2);
///
/// // Descendants are rejected, as in JSONSki.
/// assert!(SkiEngine::from_text("$..name").is_err());
/// ```
#[derive(Clone, Debug)]
pub struct SkiEngine {
    selectors: Vec<SkiSelector>,
    simd: Simd,
}

impl SkiEngine {
    /// Compiles the engine from query text.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedQuery`] for queries with descendant selectors
    /// (boxed together with parse errors).
    pub fn from_text(query: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let query = Query::parse(query)?;
        Ok(Self::from_query(&query)?)
    }

    /// Compiles the engine from a parsed query.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedQuery`] for queries with descendant selectors.
    pub fn from_query(query: &Query) -> Result<Self, UnsupportedQuery> {
        let selectors = query
            .selectors()
            .iter()
            .map(|s| match s {
                Selector::Child(l) => Ok(SkiSelector::Label(l.as_bytes().to_vec())),
                Selector::ChildWildcard => Ok(SkiSelector::Wildcard),
                // JSONSki supports array indexing natively.
                Selector::Index(n) => Ok(SkiSelector::Index(*n)),
                other => Err(UnsupportedQuery {
                    selector: other.to_string(),
                }),
            })
            .collect::<Result<_, _>>()?;
        Ok(SkiEngine {
            selectors,
            simd: Simd::detect(),
        })
    }

    /// Streams `input`, reporting matches to `sink`.
    pub fn run<S: Sink>(&self, input: &[u8], sink: &mut S) {
        let mut it = StructuralIterator::new(input, self.simd);
        match it.next() {
            Some(Structural::Opening(bracket, pos)) => {
                if self.selectors.is_empty() {
                    sink.report(pos);
                    return;
                }
                self.process(&mut it, 0, bracket, sink);
            }
            Some(_) => {}
            None => {
                if self.selectors.is_empty() {
                    if let Some(v) = input.iter().position(|b| !b.is_ascii_whitespace()) {
                        sink.report(v);
                    }
                }
            }
        }
    }

    /// Counts matches in `input`.
    #[must_use]
    pub fn count(&self, input: &[u8]) -> u64 {
        let mut sink = rsq_engine::CountSink::new();
        self.run(input, &mut sink);
        sink.count()
    }

    /// Processes the element whose opening character has just been
    /// consumed, looking for `selectors[idx]` among its children; consumes
    /// through the element's closing character.
    fn process<S: Sink>(
        &self,
        it: &mut StructuralIterator<'_>,
        idx: usize,
        bracket: BracketType,
        sink: &mut S,
    ) {
        let last = idx + 1 == self.selectors.len();
        match (&self.selectors[idx], bracket) {
            // JSONSki's array-only wildcard: objects under a wildcard or an
            // index selector are skipped wholesale, as are arrays under a
            // label selector (array entries have no labels).
            (SkiSelector::Wildcard, BracketType::Brace)
            | (SkiSelector::Index(_), BracketType::Brace)
            | (SkiSelector::Label(_), BracketType::Bracket) => {
                self.skip_element(it, bracket);
            }
            (SkiSelector::Label(label), BracketType::Brace) => {
                it.set_toggles(false, last);
                while let Some(event) = it.next() {
                    match event {
                        Structural::Opening(b, pos) => {
                            if it.label_before(pos) == Some(label.as_slice()) {
                                if last {
                                    sink.report(pos);
                                    it.skip_past_close(b);
                                } else {
                                    self.process(it, idx + 1, b, sink);
                                }
                                // Sibling skipping: keys do not repeat.
                                self.skip_element(it, BracketType::Brace);
                                return;
                            }
                            it.skip_past_close(b);
                        }
                        Structural::Colon(pos) => {
                            // Only reachable when `last`: atomic values of
                            // the target key (composite values are handled
                            // at their Opening).
                            let Some(v) = value_start(it.input(), pos) else {
                                continue;
                            };
                            if it.label_before(pos) == Some(label.as_slice()) {
                                sink.report(v);
                                self.skip_element(it, BracketType::Brace);
                                return;
                            }
                        }
                        Structural::Closing(..) => return,
                        Structural::Comma(_) => {}
                    }
                }
            }
            (SkiSelector::Index(n), BracketType::Bracket) => {
                let n = *n;
                // Commas must be observed to count entries.
                it.set_toggles(true, false);
                let mut entry = 0u64;
                if n == 0 && last {
                    // An atomic first entry is not preceded by a comma.
                    if let Some(v) = value_start(it.input(), it.position() - 1) {
                        sink.report(v);
                        self.skip_element(it, BracketType::Bracket);
                        return;
                    }
                }
                while let Some(event) = it.next() {
                    match event {
                        Structural::Opening(b, pos) => {
                            if entry == n {
                                if last {
                                    sink.report(pos);
                                    it.skip_past_close(b);
                                } else {
                                    self.process(it, idx + 1, b, sink);
                                }
                                self.skip_element(it, BracketType::Bracket);
                                return;
                            }
                            it.skip_past_close(b);
                        }
                        Structural::Comma(pos) => {
                            entry += 1;
                            if entry == n && last {
                                if let Some(v) = value_start(it.input(), pos) {
                                    sink.report(v);
                                    self.skip_element(it, BracketType::Bracket);
                                    return;
                                }
                            } else if entry > n {
                                // The target entry was atomic and a deeper
                                // selector remains: it cannot match.
                                self.skip_element(it, BracketType::Bracket);
                                return;
                            }
                        }
                        Structural::Closing(..) => return,
                        Structural::Colon(_) => {}
                    }
                }
            }
            (SkiSelector::Wildcard, BracketType::Bracket) => {
                it.set_toggles(last, false);
                if last {
                    self.try_first_item(it, sink);
                }
                while let Some(event) = it.next() {
                    match event {
                        Structural::Opening(b, pos) => {
                            if last {
                                sink.report(pos);
                                it.skip_past_close(b);
                            } else {
                                self.process(it, idx + 1, b, sink);
                                it.set_toggles(last, false);
                            }
                        }
                        Structural::Comma(pos) => {
                            if last {
                                if let Some(v) = value_start(it.input(), pos) {
                                    sink.report(v);
                                }
                            }
                        }
                        Structural::Closing(..) => return,
                        Structural::Colon(_) => {}
                    }
                }
            }
        }
    }

    /// Consumes the rest of the current element, including its closer.
    fn skip_element(&self, it: &mut StructuralIterator<'_>, bracket: BracketType) {
        if it.fast_forward_to_close(bracket).is_some() {
            let _ = it.next();
        }
    }

    /// The first entry of an array is not preceded by a comma; match it
    /// here if atomic.
    fn try_first_item<S: Sink>(&self, it: &mut StructuralIterator<'_>, sink: &mut S) {
        if let Some(v) = value_start(it.input(), it.position() - 1) {
            sink.report(v);
        }
    }
}

fn value_start(input: &[u8], pos: usize) -> Option<usize> {
    let v = input[pos + 1..]
        .iter()
        .position(|b| !b.is_ascii_whitespace())?
        + pos
        + 1;
    match input[v] {
        b'{' | b'[' | b'}' | b']' | b',' | b':' => None,
        _ => Some(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(query: &str, doc: &str) -> u64 {
        SkiEngine::from_text(query).unwrap().count(doc.as_bytes())
    }

    #[test]
    fn rejects_descendants() {
        assert!(SkiEngine::from_text("$..a").is_err());
        assert!(SkiEngine::from_text("$.a..b").is_err());
        assert!(SkiEngine::from_text("$.a.b").is_ok());
    }

    #[test]
    fn label_chains() {
        let doc = r#"{"a": {"b": {"c": 42}}, "x": {"b": 0}}"#;
        assert_eq!(count("$.a.b.c", doc), 1);
        assert_eq!(count("$.a.b", doc), 1);
        assert_eq!(count("$.x.c", doc), 0);
    }

    #[test]
    fn final_label_matches_atoms_and_composites() {
        let doc = r#"{"p": {"v": [1, 2]}, "q": {"v": 3}, "r": {"w": 4}}"#;
        assert_eq!(count("$.p.v", doc), 1);
        assert_eq!(count("$.q.v", doc), 1);
        assert_eq!(count("$.r.v", doc), 0);
    }

    #[test]
    fn wildcard_steps_into_arrays_only() {
        // Idiomatic wildcard would also match the object fields; JSONSki's
        // does not (the paper's §1.1 point).
        assert_eq!(count("$.*", r#"[1, 2, 3]"#), 3);
        assert_eq!(count("$.*", r#"{"a": 1, "b": 2}"#), 0);
        assert_eq!(count("$.a.*", r#"{"a": {"b": 1}}"#), 0);
        assert_eq!(count("$.a.*", r#"{"a": [1, {"x": 2}]}"#), 2);
    }

    #[test]
    fn jsonski_benchmark_shapes() {
        let doc = r#"{"products": [
            {"categoryPath": [{"id": 1}, {"id": 2}], "name": "tv"},
            {"categoryPath": [{"id": 3}], "videoChapters": [{"chapter": "x"}]}
        ]}"#;
        assert_eq!(count("$.products.*.categoryPath.*.id", doc), 3);
        assert_eq!(count("$.products.*.videoChapters.*.chapter", doc), 1);
        assert_eq!(count("$.products.*.videoChapters", doc), 1);
        assert_eq!(count("$.products.*.name", doc), 1);
    }

    #[test]
    fn root_query() {
        assert_eq!(count("$", r#"{"a": 1}"#), 1);
        assert_eq!(count("$", "7"), 1);
    }

    #[test]
    fn strings_with_lookalikes() {
        let doc = r#"{"s": "fake \"a\": {1}", "a": [5]}"#;
        assert_eq!(count("$.a", doc), 1);
        assert_eq!(count("$.a.*", doc), 1);
    }
}
