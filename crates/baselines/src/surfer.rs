//! A scalar streaming JSONPath engine — the JsonSurfer stand-in.
//!
//! JsonSurfer (the paper's non-SIMD baseline, §5.2) is a Java streaming
//! library: a byte-at-a-time tokenizer materializes every token (keys and
//! string values are decoded into fresh `String`s, numbers are parsed)
//! and feeds a stream of events through a listener interface to the query
//! matcher, which keeps a full per-container stack of automaton states.
//! This module reimplements that architecture in Rust: no SIMD, no
//! skipping, no toggling — every byte is inspected, every token is
//! materialized, every event goes through dynamic dispatch, exactly the
//! classical simulation of §3.2 that the depth-stack engine improves on.
//!
//! It evaluates the same query automata as the main engine (full node
//! semantics, descendants and idiomatic wildcards included) and serves
//! both as a performance baseline and as an independent implementation for
//! differential testing.

use rsq_engine::Sink;
use rsq_query::{Automaton, CompileError, PathSymbol, Query, StateId};

/// The scalar streaming baseline engine.
///
/// # Examples
///
/// ```
/// use rsq_baselines::SurferEngine;
///
/// let engine = SurferEngine::from_text("$..b").unwrap();
/// assert_eq!(engine.count(br#"{"a": {"b": 1}, "b": 2}"#), 2);
/// ```
#[derive(Clone, Debug)]
pub struct SurferEngine {
    automaton: Automaton,
}

impl SurferEngine {
    /// Compiles the engine from query text.
    ///
    /// # Errors
    ///
    /// Returns an error when the query does not parse or compile.
    pub fn from_text(query: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let query = Query::parse(query)?;
        Ok(Self::from_query(&query)?)
    }

    /// Compiles the engine from a parsed query.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] on automaton blow-up.
    pub fn from_query(query: &Query) -> Result<Self, CompileError> {
        Ok(SurferEngine {
            automaton: Automaton::compile(query)?,
        })
    }

    /// Streams `input`, reporting matches to `sink` (node semantics, in
    /// document order). Malformed input is processed best-effort.
    pub fn run<S: Sink>(&self, input: &[u8], sink: &mut S) {
        let mut matcher = Matcher {
            automaton: &self.automaton,
            stack: Vec::new(),
            state: self.automaton.initial_state(),
            pending_key: None,
            sink,
        };
        let mut tokenizer = Tokenizer { input, pos: 0 };
        // The listener indirection models JsonSurfer's content-handler
        // interface: every event crosses a virtual call.
        tokenizer.run(&mut matcher);
    }

    /// Counts matches in `input`.
    #[must_use]
    pub fn count(&self, input: &[u8]) -> u64 {
        let mut sink = rsq_engine::CountSink::new();
        self.run(input, &mut sink);
        sink.count()
    }

    /// Returns the byte offsets of the matches, in document order.
    #[must_use]
    pub fn positions(&self, input: &[u8]) -> Vec<usize> {
        let mut sink = rsq_engine::PositionsSink::new();
        self.run(input, &mut sink);
        sink.into_positions()
    }
}

/// One fully materialized stream event (JsonSurfer materializes tokens
/// before dispatching them to listeners). The payloads exist to model the
/// materialization cost; the matcher only needs positions and keys.
#[allow(dead_code)]
enum StreamEvent {
    ObjectStart(usize),
    ObjectEnd,
    ArrayStart(usize),
    ArrayEnd,
    /// A member key, materialized into an owned buffer (raw bytes,
    /// escapes kept, so label matching stays byte-exact).
    Key(Vec<u8>),
    /// A string value, materialized into an owned buffer.
    Str(usize, Vec<u8>),
    /// A numeric value, parsed.
    Num(usize, f64),
    Bool(usize, bool),
    Null(usize),
}

/// The listener interface events are dispatched through (dynamically, as
/// in the Java original).
trait StreamListener {
    fn event(&mut self, event: StreamEvent);
}

/// Byte-at-a-time tokenizer with full token materialization.
struct Tokenizer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Tokenizer<'_> {
    fn run(&mut self, listener: &mut dyn StreamListener) {
        self.skip_ws();
        self.value(listener);
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Parses one value, emitting its events. Containers recurse; the
    /// recursion depth equals the document depth, as in the Java library.
    fn value(&mut self, listener: &mut dyn StreamListener) {
        let start = self.pos;
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                listener.event(StreamEvent::ObjectStart(start));
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                } else {
                    loop {
                        self.skip_ws();
                        let Some(key) = self.string_token() else {
                            return;
                        };
                        listener.event(StreamEvent::Key(key));
                        self.skip_ws();
                        if self.peek() != Some(b':') {
                            return;
                        }
                        self.pos += 1;
                        self.skip_ws();
                        self.value(listener);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b'}') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return,
                        }
                    }
                }
                listener.event(StreamEvent::ObjectEnd);
            }
            Some(b'[') => {
                self.pos += 1;
                listener.event(StreamEvent::ArrayStart(start));
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                } else {
                    loop {
                        self.skip_ws();
                        self.value(listener);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return,
                        }
                    }
                }
                listener.event(StreamEvent::ArrayEnd);
            }
            Some(b'"') => {
                if let Some(s) = self.string_token() {
                    listener.event(StreamEvent::Str(start, s));
                }
            }
            Some(b't') => {
                self.pos += 4.min(self.input.len() - self.pos);
                listener.event(StreamEvent::Bool(start, true));
            }
            Some(b'f') => {
                self.pos += 5.min(self.input.len() - self.pos);
                listener.event(StreamEvent::Bool(start, false));
            }
            Some(b'n') => {
                self.pos += 4.min(self.input.len() - self.pos);
                listener.event(StreamEvent::Null(start));
            }
            Some(b'-' | b'0'..=b'9') => {
                while let Some(b) = self.peek() {
                    if matches!(b, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r') {
                        break;
                    }
                    self.pos += 1;
                }
                // Materialize the number, as the Java tokenizer does.
                let parsed = std::str::from_utf8(&self.input[start..self.pos])
                    .ok()
                    .and_then(|t| t.parse::<f64>().ok())
                    .unwrap_or(f64::NAN);
                listener.event(StreamEvent::Num(start, parsed));
            }
            _ => {}
        }
    }

    /// Parses a quoted string token into an owned buffer (per-token
    /// allocation plus a UTF-8 validation pass, modelling the per-token
    /// decoding the Java original performs). Escapes are kept raw so that
    /// label matching stays byte-exact with the raw-comparison engines.
    fn string_token(&mut self) -> Option<Vec<u8>> {
        if self.peek() != Some(b'"') {
            return None;
        }
        self.pos += 1;
        let mut out = Vec::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    // Decoding cost: the Java tokenizer produces a UTF-16
                    // string here; we at least validate UTF-8.
                    let _ = std::str::from_utf8(&out);
                    return Some(out);
                }
                b'\\' => {
                    out.push(b'\\');
                    self.pos += 1;
                    if let Some(next) = self.peek() {
                        out.push(next);
                        self.pos += 1;
                    }
                }
                b => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }
}

/// One stack frame per open container: the state to restore at its end
/// and, for arrays, the index of the next entry.
enum Frame {
    Object(StateId),
    Array(StateId, u64),
}

/// The query matcher: a listener keeping one stack frame per container —
/// the classical DFA simulation of §3.2.
struct Matcher<'a, S> {
    automaton: &'a Automaton,
    stack: Vec<Frame>,
    state: StateId,
    pending_key: Option<Vec<u8>>,
    sink: &'a mut S,
}

impl<S: Sink> Matcher<'_, S> {
    fn enter_value(&mut self, pos: usize) -> StateId {
        let target = match self.stack.last_mut() {
            None => self.state, // the document root has no incoming transition
            Some(Frame::Object(_)) => {
                let label = self.pending_key.take();
                self.automaton.transition(
                    self.state,
                    PathSymbol::Label(label.as_deref().unwrap_or(b"")),
                )
            }
            Some(Frame::Array(_, index)) => {
                let i = *index;
                *index += 1;
                self.automaton.transition(self.state, PathSymbol::Index(i))
            }
        };
        if self.automaton.is_accepting(target) {
            self.sink.report(pos);
        }
        target
    }
}

impl<S: Sink> StreamListener for Matcher<'_, S> {
    fn event(&mut self, event: StreamEvent) {
        match event {
            StreamEvent::ObjectStart(pos) => {
                let target = self.enter_value(pos);
                self.stack.push(Frame::Object(self.state));
                self.state = target;
            }
            StreamEvent::ArrayStart(pos) => {
                let target = self.enter_value(pos);
                self.stack.push(Frame::Array(self.state, 0));
                self.state = target;
            }
            StreamEvent::ObjectEnd | StreamEvent::ArrayEnd => {
                if let Some(restored) = self.stack.pop() {
                    self.state = match restored {
                        Frame::Object(s) | Frame::Array(s, _) => s,
                    };
                }
            }
            StreamEvent::Key(key) => {
                self.pending_key = Some(key);
            }
            StreamEvent::Str(pos, _)
            | StreamEvent::Num(pos, _)
            | StreamEvent::Bool(pos, _)
            | StreamEvent::Null(pos) => {
                if self.stack.is_empty() {
                    // Atomic document root: only `$` matches.
                    if self.automaton.is_accepting(self.state) {
                        self.sink.report(pos);
                    }
                } else {
                    let _ = self.enter_value(pos);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(query: &str, doc: &str) -> u64 {
        SurferEngine::from_text(query)
            .unwrap()
            .count(doc.as_bytes())
    }

    #[test]
    fn matches_basic_queries() {
        let doc = r#"{"a": {"b": 1, "c": [2, {"b": 3}]}, "b": 4}"#;
        assert_eq!(count("$..b", doc), 3);
        assert_eq!(count("$.a.b", doc), 1);
        assert_eq!(count("$.a.*", doc), 2);
        assert_eq!(count("$.a.c.*", doc), 2);
        assert_eq!(count("$", doc), 1);
        assert_eq!(count("$.z", doc), 0);
    }

    #[test]
    fn atomic_and_empty_documents() {
        assert_eq!(count("$", "42"), 1);
        assert_eq!(count("$..a", "42"), 0);
        assert_eq!(count("$", ""), 0);
        assert_eq!(count("$.a", "{}"), 0);
    }

    #[test]
    fn strings_with_lookalikes() {
        let doc = r#"{"s": "a\" {,:[", "b": 1}"#;
        assert_eq!(count("$.b", doc), 1);
        assert_eq!(count("$..b", doc), 1);
    }

    #[test]
    fn duplicate_keys_both_reported() {
        // No sibling skipping in the scalar baseline.
        assert_eq!(count("$.k", r#"{"k": 1, "k": 2}"#), 2);
    }

    #[test]
    fn positions_are_value_starts() {
        let engine = SurferEngine::from_text("$..b").unwrap();
        let doc = br#"{"a": 1, "b": [2], "c": {"b": "x"}}"#;
        let pos = engine.positions(doc);
        assert_eq!(pos.len(), 2);
        assert_eq!(doc[pos[0]], b'[');
        assert_eq!(doc[pos[1]], b'"');
    }
}
