//! Deterministic query automaton: subset construction, minimization, and
//! state-property analysis (§3.1, §3.3).

use crate::nfa::{Nfa, Symbol};
use crate::parser::Query;
use std::collections::HashMap;
use std::fmt;

/// Hard cap on DFA size. Queries like `..a.*.*.….*` blow up exponentially
/// (§3.1); compilation fails cleanly instead of exhausting memory.
const MAX_STATES: usize = 1 << 13;

/// A state of the compiled [`Automaton`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(u16);

impl StateId {
    /// The numeric index of the state.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Error returned by [`Automaton::compile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Determinization exceeded the state cap (exponential blow-up).
    TooManyStates {
        /// The cap that was hit.
        limit: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyStates { limit } => {
                write!(
                    f,
                    "query automaton exceeds {limit} states (exponential blow-up)"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

mod flags {
    pub const ACCEPTING: u8 = 1 << 0;
    pub const REJECTING: u8 = 1 << 1;
    pub const UNITARY: u8 = 1 << 2;
    pub const INTERNAL: u8 = 1 << 3;
    pub const WAITING: u8 = 1 << 4;
    pub const FALLBACK_ACCEPTING: u8 = 1 << 5;
    pub const OBJECT_ACCEPTING: u8 = 1 << 6;
    pub const NEEDS_INDICES: u8 = 1 << 7;
}

#[derive(Clone, Debug)]
struct State {
    /// Transitions over concrete query labels whose target differs from the
    /// label fallback, sorted by label id.
    explicit: Vec<(u16, StateId)>,
    /// Transitions over concrete array indices whose target differs from
    /// the index fallback, as `(index value, target)`.
    explicit_indices: Vec<(u64, StateId)>,
    /// Target for labels without an explicit entry.
    fallback: StateId,
    /// Target for array-entry indices without an explicit entry.
    fallback_index: StateId,
    flags: u8,
}

/// A symbol of a path word: the edge into a node is either an object
/// member label or an array-entry index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathSymbol<'a> {
    /// An object member label (raw bytes between the quotes).
    Label(&'a [u8]),
    /// A zero-based array-entry index.
    Index(u64),
}

/// The minimal deterministic query automaton.
///
/// Runs over *path words*: the sequence of member labels and array-entry
/// indices on a path from the document root to a node.
///
/// See the [crate documentation](crate) for the compilation pipeline and
/// an example.
#[derive(Clone, Debug)]
pub struct Automaton {
    labels: Vec<Vec<u8>>,
    states: Vec<State>,
    initial: StateId,
}

impl Automaton {
    /// Compiles a query into a minimal DFA with precomputed state
    /// properties.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooManyStates`] if determinization exceeds
    /// the internal state cap (only possible for adversarial queries with
    /// long wildcard runs after a descendant).
    pub fn compile(query: &Query) -> Result<Self, CompileError> {
        let nfa = Nfa::from_query(query);
        let (transitions, accepting, initial) = determinize(&nfa)?;
        let (transitions, accepting, initial) = minimize(&transitions, &accepting, initial);
        Ok(build(&nfa, transitions, accepting, initial))
    }

    /// The initial state (corresponding to `$`, with the root not yet
    /// entered).
    #[must_use]
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// Number of states, including the rejecting sink if present.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The distinct labels mentioned by the query, as raw bytes.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(Vec::as_slice)
    }

    /// Takes the transition for a path symbol: a member label or an
    /// array-entry index.
    #[inline]
    #[must_use]
    pub fn transition(&self, state: StateId, symbol: PathSymbol<'_>) -> StateId {
        let s = &self.states[state.index()];
        match symbol {
            PathSymbol::Label(bytes) => {
                for &(label_id, target) in &s.explicit {
                    if self.labels[label_id as usize] == bytes {
                        return target;
                    }
                }
                s.fallback
            }
            PathSymbol::Index(n) => {
                for &(index, target) in &s.explicit_indices {
                    if index == n {
                        return target;
                    }
                }
                s.fallback_index
            }
        }
    }

    /// Convenience form used where array-entry indices are irrelevant:
    /// `Some(bytes)` for an object member label, `None` for an array entry
    /// whose index is unknown (only valid when the state has no explicit
    /// index transitions).
    #[inline]
    #[must_use]
    pub fn transition_label(&self, state: StateId, label: Option<&[u8]>) -> StateId {
        match label {
            Some(bytes) => self.transition(state, PathSymbol::Label(bytes)),
            None => self.states[state.index()].fallback_index,
        }
    }

    /// The fallback target over labels without an explicit entry.
    #[must_use]
    pub fn fallback(&self, state: StateId) -> StateId {
        self.states[state.index()].fallback
    }

    /// The fallback target over array-entry indices without an explicit
    /// entry.
    #[must_use]
    pub fn fallback_index(&self, state: StateId) -> StateId {
        self.states[state.index()].fallback_index
    }

    /// The explicit array-index transitions of a state.
    pub fn explicit_index_transitions(
        &self,
        state: StateId,
    ) -> impl Iterator<Item = (u64, StateId)> + '_ {
        self.states[state.index()].explicit_indices.iter().copied()
    }

    /// The state distinguishes specific array-entry indices; engines must
    /// then observe every entry boundary (commas) to keep an exact entry
    /// counter in arrays.
    #[inline]
    #[must_use]
    pub fn needs_indices(&self, state: StateId) -> bool {
        self.states[state.index()].flags & flags::NEEDS_INDICES != 0
    }

    /// Some member-label transition (explicit or fallback) out of this
    /// state is accepting — drives colon toggling in objects (§3.4).
    #[inline]
    #[must_use]
    pub fn is_object_accepting(&self, state: StateId) -> bool {
        self.states[state.index()].flags & flags::OBJECT_ACCEPTING != 0
    }

    /// The explicit transitions of a state as `(label bytes, target)`.
    pub fn explicit_transitions(&self, state: StateId) -> impl Iterator<Item = (&[u8], StateId)> {
        self.states[state.index()]
            .explicit
            .iter()
            .map(|&(l, t)| (self.labels[l as usize].as_slice(), t))
    }

    /// Reaching this state reports a match (§3.1).
    #[inline]
    #[must_use]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.states[state.index()].flags & flags::ACCEPTING != 0
    }

    /// No accepting state is reachable from this state (the trash state);
    /// subtrees entered here can be skipped entirely (*skipping children*,
    /// §3.3).
    #[inline]
    #[must_use]
    pub fn is_rejecting(&self, state: StateId) -> bool {
        self.states[state.index()].flags & flags::REJECTING != 0
    }

    /// The state has a single concrete-label transition and its fallback is
    /// rejecting; once the label is found among siblings, the rest can be
    /// skipped (*skipping siblings*, §3.3). Such states correspond to
    /// non-wildcard selectors before the first descendant.
    #[inline]
    #[must_use]
    pub fn is_unitary(&self, state: StateId) -> bool {
        self.states[state.index()].flags & flags::UNITARY != 0
    }

    /// No transition out of this state reaches an accepting state, so
    /// leaves cannot match and can be fast-forwarded over (*skipping
    /// leaves*, §3.3).
    #[inline]
    #[must_use]
    pub fn is_internal(&self, state: StateId) -> bool {
        self.states[state.index()].flags & flags::INTERNAL != 0
    }

    /// The state has exactly one concrete-label transition and loops on
    /// everything else — it corresponds to a descendant selector `..ℓ` and
    /// enables *skipping to a label* (§3.3) when it is the initial state.
    #[inline]
    #[must_use]
    pub fn is_waiting(&self, state: StateId) -> bool {
        self.states[state.index()].flags & flags::WAITING != 0
    }

    /// The index-fallback transition leads to an accepting state; array
    /// entries of an element in this state match regardless of position
    /// (drives comma toggling, §3.4).
    #[inline]
    #[must_use]
    pub fn is_fallback_accepting(&self, state: StateId) -> bool {
        self.states[state.index()].flags & flags::FALLBACK_ACCEPTING != 0
    }

    /// Some transition (explicit or fallback) out of this state is
    /// accepting — the automaton "can accept in a single step" (drives
    /// colon toggling, §3.4). Equivalent to `!is_internal`.
    #[inline]
    #[must_use]
    pub fn any_transition_accepting(&self, state: StateId) -> bool {
        !self.is_internal(state)
    }

    /// For states with exactly one explicit transition, the label bytes and
    /// target. Used by skip-to-label to extract the needle of the initial
    /// waiting state.
    #[must_use]
    pub fn single_explicit_transition(&self, state: StateId) -> Option<(&[u8], StateId)> {
        match self.states[state.index()].explicit.as_slice() {
            [(l, t)] => Some((self.labels[*l as usize].as_slice(), *t)),
            _ => None,
        }
    }

    /// Renders the automaton in Graphviz DOT format (for debugging and
    /// documentation).
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph query {\n  rankdir=LR;\n");
        for (i, s) in self.states.iter().enumerate() {
            let shape = if s.flags & flags::ACCEPTING != 0 {
                "doublecircle"
            } else if s.flags & flags::REJECTING != 0 {
                "point"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  q{i} [shape={shape}];");
            for &(l, t) in &s.explicit {
                let label = String::from_utf8_lossy(&self.labels[l as usize]).into_owned();
                let _ = writeln!(out, "  q{i} -> q{} [label=\"{label}\"];", t.0);
            }
            for &(idx, t) in &s.explicit_indices {
                let _ = writeln!(out, "  q{i} -> q{} [label=\"[{idx}]\"];", t.0);
            }
            let _ = writeln!(
                out,
                "  q{i} -> q{} [label=\"*\", style=dashed];",
                s.fallback.0
            );
            if s.fallback_index != s.fallback {
                let _ = writeln!(
                    out,
                    "  q{i} -> q{} [label=\"[*]\", style=dotted];",
                    s.fallback_index.0
                );
            }
        }
        let _ = writeln!(out, "  init [shape=none, label=\"\"];");
        let _ = writeln!(out, "  init -> q{};", self.initial.0);
        out.push_str("}\n");
        out
    }
}

/// Raw DFA transitions: per state, one target per alphabet symbol. The
/// alphabet is laid out as `labels(k) ++ indices(m) ++ [other-label,
/// other-index]`.
type RawTransitions = Vec<Vec<usize>>;

/// Subset construction over the full path alphabet.
fn determinize(nfa: &Nfa) -> Result<(RawTransitions, Vec<bool>, usize), CompileError> {
    let k = nfa.label_count();
    let m = nfa.index_count();
    let width = k + m + 2;
    let symbol_of = |i: usize| -> Symbol {
        if i < k {
            Symbol::Label(i as u16)
        } else if i < k + m {
            Symbol::Index((i - k) as u16)
        } else if i == k + m {
            Symbol::OtherLabel
        } else {
            Symbol::OtherIndex
        }
    };
    let mut subset_ids: HashMap<Vec<u16>, usize> = HashMap::new();
    let mut subsets: Vec<Vec<u16>> = Vec::new();
    let mut transitions: RawTransitions = Vec::new();

    // State 0 is the empty subset: the rejecting sink.
    subset_ids.insert(Vec::new(), 0);
    subsets.push(Vec::new());
    transitions.push(vec![0; width]);

    let initial_subset = vec![0u16]; // {0}, or {accept} for `$`
    let initial = intern(
        initial_subset,
        &mut subset_ids,
        &mut subsets,
        &mut transitions,
        width,
    )?;

    let mut work = initial;
    while work < subsets.len() {
        let subset = subsets[work].clone();
        for symbol in 0..width {
            let succ = nfa.successors(&subset, symbol_of(symbol));
            let id = intern(succ, &mut subset_ids, &mut subsets, &mut transitions, width)?;
            transitions[work][symbol] = id;
        }
        work += 1;
    }

    let accepting: Vec<bool> = subsets
        .iter()
        .map(|s| s.binary_search(&nfa.accept()).is_ok())
        .collect();
    Ok((transitions, accepting, initial))
}

fn intern(
    subset: Vec<u16>,
    subset_ids: &mut HashMap<Vec<u16>, usize>,
    subsets: &mut Vec<Vec<u16>>,
    transitions: &mut RawTransitions,
    width: usize,
) -> Result<usize, CompileError> {
    if let Some(&id) = subset_ids.get(&subset) {
        return Ok(id);
    }
    let id = subsets.len();
    if id >= MAX_STATES {
        return Err(CompileError::TooManyStates { limit: MAX_STATES });
    }
    subset_ids.insert(subset.clone(), id);
    subsets.push(subset);
    transitions.push(vec![0; width]);
    Ok(id)
}

/// Moore partition refinement.
fn minimize(
    transitions: &RawTransitions,
    accepting: &[bool],
    initial: usize,
) -> (RawTransitions, Vec<bool>, usize) {
    let n = transitions.len();
    let mut class: Vec<usize> = accepting.iter().map(|&a| usize::from(a)).collect();
    loop {
        // Signature: own class + classes of all targets.
        let mut sig_ids: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut next: Vec<usize> = vec![0; n];
        for s in 0..n {
            let mut sig = Vec::with_capacity(transitions[s].len() + 1);
            sig.push(class[s]);
            sig.extend(transitions[s].iter().map(|&t| class[t]));
            let id = sig_ids.len();
            let id = *sig_ids.entry(sig).or_insert(id);
            next[s] = id;
        }
        if next == class {
            break;
        }
        class = next;
    }
    let class_count = class.iter().max().map_or(0, |m| m + 1);
    let mut new_transitions: RawTransitions = vec![Vec::new(); class_count];
    let mut new_accepting = vec![false; class_count];
    for s in 0..n {
        let c = class[s];
        new_accepting[c] = accepting[s];
        if new_transitions[c].is_empty() {
            new_transitions[c] = transitions[s].iter().map(|&t| class[t]).collect();
        }
    }
    (new_transitions, new_accepting, class[initial])
}

/// Builds the final `Automaton` with compressed transitions and state
/// property flags.
fn build(
    nfa: &Nfa,
    transitions: RawTransitions,
    accepting: Vec<bool>,
    initial: usize,
) -> Automaton {
    let n = transitions.len();
    let k = nfa.label_count();

    // Co-reachability of accepting states (rejecting = not co-reachable).
    let mut co_reachable = accepting.clone();
    loop {
        let mut changed = false;
        for s in 0..n {
            if !co_reachable[s] && transitions[s].iter().any(|&t| co_reachable[t]) {
                co_reachable[s] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let m = nfa.index_count();
    let states: Vec<State> = (0..n)
        .map(|s| {
            let fallback = transitions[s][k + m];
            let fallback_index = transitions[s][k + m + 1];
            let explicit: Vec<(u16, StateId)> = (0..k)
                .filter(|&l| transitions[s][l] != fallback)
                .map(|l| (l as u16, StateId(transitions[s][l] as u16)))
                .collect();
            let explicit_indices: Vec<(u64, StateId)> = (0..m)
                .filter(|&j| transitions[s][k + j] != fallback_index)
                .map(|j| (nfa.indices[j], StateId(transitions[s][k + j] as u16)))
                .collect();
            let mut f = 0u8;
            if accepting[s] {
                f |= flags::ACCEPTING;
            }
            if !co_reachable[s] {
                f |= flags::REJECTING;
            }
            let fallback_rejecting = !co_reachable[fallback];
            if explicit.len() == 1 && fallback_rejecting {
                f |= flags::UNITARY;
            }
            if explicit.len() == 1
                && explicit_indices.is_empty()
                && fallback == s
                && fallback_index == s
            {
                f |= flags::WAITING;
            }
            let any_accepting = (0..k + m + 2).any(|sym| accepting[transitions[s][sym]]);
            if !any_accepting {
                f |= flags::INTERNAL;
            }
            // Array entries match through their index transitions.
            if accepting[fallback_index] {
                f |= flags::FALLBACK_ACCEPTING;
            }
            // Object members match through label transitions.
            if accepting[fallback] || (0..k).any(|l| accepting[transitions[s][l]]) {
                f |= flags::OBJECT_ACCEPTING;
            }
            if !explicit_indices.is_empty() {
                f |= flags::NEEDS_INDICES;
            }
            State {
                explicit,
                explicit_indices,
                fallback: StateId(fallback as u16),
                fallback_index: StateId(fallback_index as u16),
                flags: f,
            }
        })
        .collect();

    Automaton {
        labels: nfa.labels.clone(),
        states,
        initial: StateId(initial as u16),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(text: &str) -> Automaton {
        Automaton::compile(&Query::parse(text).unwrap()).unwrap()
    }

    /// Runs the automaton over a word of labels (`None` = array entry /
    /// non-query label).
    fn run(a: &Automaton, word: &[Option<&[u8]>]) -> StateId {
        word.iter()
            .fold(a.initial_state(), |s, l| a.transition_label(s, *l))
    }

    #[test]
    fn root_query_accepts_empty_word() {
        let a = compile("$");
        assert!(a.is_accepting(a.initial_state()));
    }

    #[test]
    fn child_chain_recognizes_exact_paths() {
        let a = compile("$.a.b");
        assert!(a.is_accepting(run(&a, &[Some(b"a"), Some(b"b")])));
        assert!(!a.is_accepting(run(&a, &[Some(b"a")])));
        assert!(a.is_rejecting(run(&a, &[Some(b"b")])));
        assert!(a.is_rejecting(run(&a, &[Some(b"a"), Some(b"b"), Some(b"c")])));
        assert!(a.is_rejecting(run(&a, &[None])));
    }

    #[test]
    fn wildcard_accepts_any_label_and_array_entries() {
        let a = compile("$.*.b");
        assert!(a.is_accepting(run(&a, &[Some(b"x"), Some(b"b")])));
        assert!(a.is_accepting(run(&a, &[None, Some(b"b")])));
        assert!(!a.is_accepting(run(&a, &[Some(b"x"), Some(b"c")])));
    }

    #[test]
    fn descendant_accepts_at_any_depth() {
        let a = compile("$..b");
        for depth in 0..5 {
            let mut word: Vec<Option<&[u8]>> = vec![Some(b"x"); depth];
            word.push(Some(b"b"));
            assert!(a.is_accepting(run(&a, &word)), "depth {depth}");
        }
        assert!(!a.is_accepting(run(&a, &[Some(b"x")])));
        // Nested matches keep accepting below an accepted node.
        assert!(a.is_accepting(run(&a, &[Some(b"b"), Some(b"x"), Some(b"b")])));
    }

    #[test]
    fn figure2_query_structure() {
        // $.a..b.*..c.* from Figure 2 of the paper.
        let a = compile("$.a..b.*..c.*");
        let accept = run(
            &a,
            &[Some(b"a"), Some(b"b"), Some(b"x"), Some(b"c"), Some(b"y")],
        );
        assert!(a.is_accepting(accept));
        // A longer path that re-matches ..c.* later also accepts.
        let deeper = run(
            &a,
            &[
                Some(b"a"),
                Some(b"z"),
                Some(b"b"),
                Some(b"x"),
                Some(b"z"),
                Some(b"c"),
                Some(b"y"),
            ],
        );
        assert!(a.is_accepting(deeper));
        // Missing the leading .a rejects forever.
        assert!(a.is_rejecting(run(&a, &[Some(b"b")])));
    }

    #[test]
    fn state_properties_for_child_prefix() {
        // $.a.b: both selector states are unitary; the initial state is
        // internal (needs two more levels).
        let a = compile("$.a.b");
        let s0 = a.initial_state();
        assert!(a.is_unitary(s0));
        assert!(a.is_internal(s0));
        assert!(!a.is_waiting(s0));
        let s1 = a.transition(s0, PathSymbol::Label(b"a"));
        assert!(a.is_unitary(s1));
        assert!(!a.is_internal(s1), "can accept in one step via b");
        assert!(!a.is_fallback_accepting(s1));
    }

    #[test]
    fn state_properties_for_descendant() {
        // $..a: initial state is waiting (single label transition, fallback
        // loops), not unitary, not internal (accepts in one step on a).
        let a = compile("$..a");
        let s0 = a.initial_state();
        assert!(a.is_waiting(s0));
        assert!(!a.is_unitary(s0));
        assert!(!a.is_internal(s0));
        let (label, target) = a.single_explicit_transition(s0).unwrap();
        assert_eq!(label, b"a");
        assert!(a.is_accepting(target));
        // The accepting state still waits for nested a's.
        assert!(a.is_waiting(target) || a.transition(target, PathSymbol::Label(b"a")) == target);
    }

    #[test]
    fn wildcard_fallback_is_accepting() {
        let a = compile("$.*");
        let s0 = a.initial_state();
        assert!(a.is_fallback_accepting(s0));
        assert!(a.any_transition_accepting(s0));
    }

    #[test]
    fn rejecting_sink_is_terminal() {
        let a = compile("$.a");
        let trash = a.transition(a.initial_state(), PathSymbol::Label(b"nope"));
        assert!(a.is_rejecting(trash));
        assert_eq!(a.transition(trash, PathSymbol::Label(b"a")), trash);
        assert_eq!(a.transition_label(trash, None), trash);
        assert!(a.is_internal(trash));
    }

    #[test]
    fn exponential_blowup_is_caught() {
        // ..a followed by many wildcards reconstructs the classic 2^n
        // subset blow-up (§3.1).
        let query = format!("$..a{}", ".*".repeat(20));
        let q = Query::parse(&query).unwrap();
        assert!(matches!(
            Automaton::compile(&q),
            Err(CompileError::TooManyStates { .. })
        ));
        // A modest number of wildcards still compiles.
        let ok = format!("$..a{}", ".*".repeat(8));
        assert!(Automaton::compile(&Query::parse(&ok).unwrap()).is_ok());
    }

    #[test]
    fn minimization_merges_equivalent_states() {
        // $..a..a: after the first a, looking for another a — the DFA needs
        // only 3 live states (searching-first, searching-second, accepting)
        // plus possibly none rejecting.
        let a = compile("$..a..a");
        assert!(a.state_count() <= 4);
    }

    #[test]
    fn transition_compares_raw_bytes() {
        let a = compile("$.ab");
        assert!(!a.is_rejecting(a.transition(a.initial_state(), PathSymbol::Label(b"ab"))));
        assert!(a.is_rejecting(a.transition(a.initial_state(), PathSymbol::Label(b"a"))));
        assert!(a.is_rejecting(a.transition(a.initial_state(), PathSymbol::Label(b"abc"))));
    }

    #[test]
    fn dot_output_mentions_all_states() {
        let a = compile("$.a..b");
        let dot = a.to_dot();
        assert!(dot.starts_with("digraph"));
        for i in 0..a.state_count() {
            assert!(dot.contains(&format!("q{i} ")), "missing q{i}");
        }
    }
}
