//! JSONPath query parsing and automaton compilation for `rsq`.
//!
//! Implements §3.1 of *Supporting Descendants in SIMD-Accelerated JSONPath*
//! (ASPLOS 2023). The supported fragment is
//!
//! ```text
//! e ::= $ | e.ℓ | e.* | e..ℓ | e..* | e[n] | e..[n]
//! ```
//!
//! with the usual bracket alternatives (`['ℓ']`, `["ℓ"]`, `[*]`). The
//! descendant wildcard `..*` and the array-index selectors `[n]` / `..[n]`
//! are extensions beyond the paper's grammar — the latter implement the
//! array-indexing support the paper names as future work in §6; everything
//! else follows the paper exactly.
//!
//! A parsed [`Query`] is compiled by [`Automaton::compile`] into a minimal
//! deterministic finite automaton over label words:
//!
//! 1. the query becomes an NFA whose states correspond to selectors, with
//!    *recursive* (self-looping) states for descendant selectors;
//! 2. subset determinization exploits the **greedy match property** (once a
//!    recursive state is reached, all earlier states can be forgotten —
//!    sound under node semantics only), which keeps the subsets small and
//!    produces the per-segment component structure described in the paper;
//! 3. Moore partition refinement minimizes the DFA;
//! 4. the state properties driving the engine's skipping decisions are
//!    precomputed: *accepting*, *rejecting* (trash), *internal*, *unitary*,
//!    and *waiting* states (§3.3).
//!
//! # Examples
//!
//! ```
//! use rsq_query::{Automaton, Query};
//!
//! let query = Query::parse("$.a..b.*")?;
//! let automaton = Automaton::compile(&query)?;
//! let s0 = automaton.initial_state();
//! let s1 = automaton.transition(s0, rsq_query::PathSymbol::Label(b"a"));
//! let s2 = automaton.transition(s1, rsq_query::PathSymbol::Label(b"b"));
//! let s3 = automaton.transition(s2, rsq_query::PathSymbol::Label(b"anything"));
//! assert!(automaton.is_accepting(s3));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod automaton;
mod nfa;
mod parser;
mod route;

pub use automaton::{Automaton, CompileError, PathSymbol, StateId};
pub use parser::{ParseErrorKind, Query, QueryParseError, Selector};
pub use route::{PlanStep, Route, RoutePlan};
