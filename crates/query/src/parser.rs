//! Textual JSONPath parser for the supported fragment.

use std::fmt;

/// A single JSONPath selector.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Selector {
    /// `.ℓ` / `['ℓ']` — the value of property `ℓ` of the current element.
    Child(String),
    /// `.*` / `[*]` — every direct subdocument of the current element.
    ChildWildcard,
    /// `..ℓ` — the value of property `ℓ` in the current element or any of
    /// its subdocuments.
    Descendant(String),
    /// `..*` — every node strictly below the current element (extension
    /// beyond the paper's grammar).
    DescendantWildcard,
    /// `[n]` — the `n`-th entry of the current element if it is an array
    /// (the paper's §6 future-work feature, implemented here).
    Index(u64),
    /// `..[n]` — the `n`-th entry of every array in the current element's
    /// subtree, the element included.
    DescendantIndex(u64),
}

impl Selector {
    /// Returns `true` for descendant selectors (`..ℓ`, `..*`, `..[n]`).
    #[must_use]
    pub fn is_descendant(&self) -> bool {
        matches!(
            self,
            Selector::Descendant(_) | Selector::DescendantWildcard | Selector::DescendantIndex(_)
        )
    }

    /// The label this selector matches, if it is label-specific.
    #[must_use]
    pub fn label(&self) -> Option<&str> {
        match self {
            Selector::Child(l) | Selector::Descendant(l) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selector::Child(l) => write!(f, ".{l}"),
            Selector::ChildWildcard => f.write_str(".*"),
            Selector::Descendant(l) => write!(f, "..{l}"),
            Selector::DescendantWildcard => f.write_str("..*"),
            Selector::Index(n) => write!(f, "[{n}]"),
            Selector::DescendantIndex(n) => write!(f, "..[{n}]"),
        }
    }
}

/// A parsed JSONPath query: `$` followed by a sequence of selectors.
///
/// Labels are stored and matched as *raw bytes* as written in the query;
/// no escape decoding is applied. This matches the byte-comparison label
/// semantics of the paper's engine.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    selectors: Vec<Selector>,
}

/// What went wrong while parsing a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The query does not start with `$`.
    MissingRoot,
    /// A selector did not follow the grammar.
    InvalidSelector,
    /// A bracket selector was not terminated.
    UnterminatedBracket,
    /// An empty label (`.`, `..`, `['']`) was supplied.
    EmptyLabel,
    /// Unexpected trailing characters.
    TrailingCharacters,
}

/// Error returned by [`Query::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset in the query string where the error was detected.
    pub offset: usize,
    /// The kind of error.
    pub kind: ParseErrorKind,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            ParseErrorKind::MissingRoot => "query must start with '$'",
            ParseErrorKind::InvalidSelector => "invalid selector",
            ParseErrorKind::UnterminatedBracket => "unterminated bracket selector",
            ParseErrorKind::EmptyLabel => "empty label",
            ParseErrorKind::TrailingCharacters => "unexpected trailing characters",
        };
        write!(
            f,
            "JSONPath parse error at offset {}: {}",
            self.offset, what
        )
    }
}

impl std::error::Error for QueryParseError {}

impl Query {
    /// Parses a JSONPath query in the supported fragment.
    ///
    /// # Errors
    ///
    /// Returns [`QueryParseError`] when the text does not conform to the
    /// grammar `$ (.ℓ | .* | ..ℓ | ..* | [*] | ['ℓ'] | ["ℓ"])*`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsq_query::{Query, Selector};
    ///
    /// let q = Query::parse("$.products[*]..id")?;
    /// assert_eq!(q.selectors().len(), 3);
    /// assert_eq!(q.selectors()[1], Selector::ChildWildcard);
    /// # Ok::<(), rsq_query::QueryParseError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Self, QueryParseError> {
        let bytes = text.as_bytes();
        if bytes.first() != Some(&b'$') {
            return Err(QueryParseError {
                offset: 0,
                kind: ParseErrorKind::MissingRoot,
            });
        }
        let mut selectors = Vec::new();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'.' if bytes.get(i + 1) == Some(&b'.') => {
                    // Descendant selector.
                    i += 2;
                    if bytes.get(i) == Some(&b'*') {
                        selectors.push(Selector::DescendantWildcard);
                        i += 1;
                    } else if bytes.get(i) == Some(&b'[') {
                        let (sel, next) = parse_bracket(text, i, true)?;
                        selectors.push(sel);
                        i = next;
                    } else {
                        let (label, next) = parse_member_name(text, i)?;
                        selectors.push(Selector::Descendant(label));
                        i = next;
                    }
                }
                b'.' => {
                    i += 1;
                    if bytes.get(i) == Some(&b'*') {
                        selectors.push(Selector::ChildWildcard);
                        i += 1;
                    } else {
                        let (label, next) = parse_member_name(text, i)?;
                        selectors.push(Selector::Child(label));
                        i = next;
                    }
                }
                b'[' => {
                    let (sel, next) = parse_bracket(text, i, false)?;
                    selectors.push(sel);
                    i = next;
                }
                _ => {
                    return Err(QueryParseError {
                        offset: i,
                        kind: ParseErrorKind::TrailingCharacters,
                    })
                }
            }
        }
        Ok(Query { selectors })
    }

    /// Builds a query directly from selectors (used by tests and by random
    /// query generation in the differential test suite).
    #[must_use]
    pub fn from_selectors(selectors: Vec<Selector>) -> Self {
        Query { selectors }
    }

    /// The selectors of the query, in order.
    #[must_use]
    pub fn selectors(&self) -> &[Selector] {
        &self.selectors
    }

    /// Returns `true` if the query contains a descendant selector.
    #[must_use]
    pub fn has_descendants(&self) -> bool {
        self.selectors.iter().any(Selector::is_descendant)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("$")?;
        for s in &self.selectors {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Parses a dotted member name starting at `i`; returns the label and the
/// index just past it.
fn parse_member_name(text: &str, i: usize) -> Result<(String, usize), QueryParseError> {
    let bytes = text.as_bytes();
    let start = i;
    let mut end = i;
    while end < bytes.len() {
        let b = bytes[end];
        let ok = b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b >= 0x80;
        if !ok {
            break;
        }
        end += 1;
    }
    if end == start {
        return Err(QueryParseError {
            offset: i,
            kind: ParseErrorKind::EmptyLabel,
        });
    }
    Ok((text[start..end].to_owned(), end))
}

/// Parses a bracket selector starting at the `[` at index `i`.
fn parse_bracket(
    text: &str,
    i: usize,
    descendant: bool,
) -> Result<(Selector, usize), QueryParseError> {
    let bytes = text.as_bytes();
    debug_assert_eq!(bytes[i], b'[');
    let mut j = i + 1;
    // `[*]`
    if bytes.get(j) == Some(&b'*') {
        if bytes.get(j + 1) != Some(&b']') {
            return Err(QueryParseError {
                offset: j + 1,
                kind: ParseErrorKind::UnterminatedBracket,
            });
        }
        let sel = if descendant {
            Selector::DescendantWildcard
        } else {
            Selector::ChildWildcard
        };
        return Ok((sel, j + 2));
    }
    // `[n]` — array index selector.
    if bytes.get(j).is_some_and(u8::is_ascii_digit) {
        let start = j;
        while bytes.get(j).is_some_and(u8::is_ascii_digit) {
            j += 1;
        }
        if bytes.get(j) != Some(&b']') {
            return Err(QueryParseError {
                offset: j,
                kind: ParseErrorKind::UnterminatedBracket,
            });
        }
        let n: u64 = text[start..j].parse().map_err(|_| QueryParseError {
            offset: start,
            kind: ParseErrorKind::InvalidSelector,
        })?;
        let sel = if descendant {
            Selector::DescendantIndex(n)
        } else {
            Selector::Index(n)
        };
        return Ok((sel, j + 1));
    }
    // `['label']` or `["label"]`
    let quote = match bytes.get(j) {
        Some(&q @ (b'\'' | b'"')) => q,
        _ => {
            return Err(QueryParseError {
                offset: j,
                kind: ParseErrorKind::InvalidSelector,
            })
        }
    };
    j += 1;
    let start = j;
    while j < bytes.len() && bytes[j] != quote {
        if bytes[j] == b'\\' {
            j += 1; // skip the escaped character
        }
        j += 1;
    }
    if j >= bytes.len() {
        return Err(QueryParseError {
            offset: i,
            kind: ParseErrorKind::UnterminatedBracket,
        });
    }
    let label = text[start..j].to_owned();
    if label.is_empty() {
        return Err(QueryParseError {
            offset: start,
            kind: ParseErrorKind::EmptyLabel,
        });
    }
    j += 1; // closing quote
    if bytes.get(j) != Some(&b']') {
        return Err(QueryParseError {
            offset: j,
            kind: ParseErrorKind::UnterminatedBracket,
        });
    }
    let sel = if descendant {
        Selector::Descendant(label)
    } else {
        Selector::Child(label)
    };
    Ok((sel, j + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_root_only() {
        let q = Query::parse("$").unwrap();
        assert!(q.selectors().is_empty());
        assert!(!q.has_descendants());
        assert_eq!(q.to_string(), "$");
    }

    #[test]
    fn parses_child_chain() {
        let q = Query::parse("$.a.b.c").unwrap();
        assert_eq!(
            q.selectors(),
            [
                Selector::Child("a".into()),
                Selector::Child("b".into()),
                Selector::Child("c".into()),
            ]
        );
    }

    #[test]
    fn parses_paper_queries() {
        // All queries from Tables 4–6 of the paper must parse.
        for text in [
            "$.products.*.categoryPath.*.id",
            "$.products[*].categoryPath[*].id",
            "$.products.*.videoChapters.*.chapter",
            "$.products.*.videoChapters",
            "$.*.routes.*.legs.*.steps.*.distance.text",
            "$.*.available_travel_modes",
            "$.meta.view.columns.*.name",
            "$.data.*.*.*",
            "$.data[*][*][*]",
            "$.*.entities.urls.*.url",
            "$.*.text",
            "$.items.*.bestMarketplacePrice.price",
            "$.items.*.name",
            "$.*.claims.P150.*.mainsnak.property",
            "$..categoryPath..id",
            "$..videoChapters..chapter",
            "$..videoChapters",
            "$..available_travel_modes",
            "$..bestMarketplacePrice.price",
            "$..name",
            "$..P150..mainsnak.property",
            "$..decl.name",
            "$..inner..inner..type.qualType",
            "$..DOI",
            "$.items.*.author.*.affiliation.*.name",
            "$..author..affiliation..name",
            "$.search_metadata.count",
            "$..count",
            "$..search_metadata.count",
            "$..a.b.*.c.*",
        ] {
            let q = Query::parse(text).expect(text);
            assert!(!q.selectors().is_empty(), "{text}");
        }
    }

    #[test]
    fn dotted_and_bracket_forms_agree() {
        assert_eq!(
            Query::parse("$.products[*].id").unwrap(),
            Query::parse("$.products.*.id").unwrap()
        );
        assert_eq!(
            Query::parse("$['products']").unwrap(),
            Query::parse("$.products").unwrap()
        );
        assert_eq!(
            Query::parse("$[\"products\"]").unwrap(),
            Query::parse("$.products").unwrap()
        );
    }

    #[test]
    fn parses_descendant_wildcard_extension() {
        let q = Query::parse("$..*").unwrap();
        assert_eq!(q.selectors(), [Selector::DescendantWildcard]);
        assert!(q.has_descendants());
    }

    #[test]
    fn display_round_trips() {
        for text in ["$", "$.a", "$.a.*..b..*", "$..deep-label_1"] {
            let q = Query::parse(text).unwrap();
            assert_eq!(q.to_string(), text);
            assert_eq!(Query::parse(&q.to_string()).unwrap(), q);
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        use ParseErrorKind::*;
        let cases: &[(&str, ParseErrorKind)] = &[
            ("", MissingRoot),
            ("a", MissingRoot),
            ("$.", EmptyLabel),
            ("$..", EmptyLabel),
            ("$.a.", EmptyLabel),
            ("$x", TrailingCharacters),
            ("$.a b", TrailingCharacters),
            ("$['a'", UnterminatedBracket),
            ("$['a]", UnterminatedBracket),
            ("$[*", UnterminatedBracket),
            ("$[a]", InvalidSelector),
            ("$[''']", EmptyLabel),
            ("$['']", EmptyLabel),
        ];
        for (text, kind) in cases {
            let err = Query::parse(text).expect_err(text);
            assert_eq!(&err.kind, kind, "{text}");
        }
    }

    #[test]
    fn unicode_labels_parse() {
        let q = Query::parse("$..żółć").unwrap();
        assert_eq!(q.selectors(), [Selector::Descendant("żółć".into())]);
    }

    #[test]
    fn selector_accessors() {
        assert!(Selector::Descendant("x".into()).is_descendant());
        assert!(!Selector::Child("x".into()).is_descendant());
        assert_eq!(Selector::Child("x".into()).label(), Some("x"));
        assert_eq!(Selector::ChildWildcard.label(), None);
    }

    #[test]
    fn error_display_mentions_offset() {
        let err = Query::parse("$.a.").unwrap_err();
        assert!(err.to_string().contains("offset 4"));
    }
}
