//! Compile-time query-shape routing for the raw-speed tier (DESIGN.md
//! §15).
//!
//! The general engine classifies every block of the document, even when
//! the query's shape guarantees that almost all of them are irrelevant.
//! This module inspects the compiled [`Automaton`] *once, at compile
//! time*, and extracts the longest prefix of the query that can be
//! driven by `memmem`-led direct seeks instead of block-by-block
//! classification:
//!
//! * a **label step** — a unitary state (single concrete label, rejecting
//!   fallback): inside the current container, only one member can change
//!   the state, so the engine may jump straight to candidate occurrences
//!   of `"label"` and skip everything in between;
//! * a **wild step** — a pure wildcard state (no explicit transitions,
//!   matching label and index fallbacks, non-accepting target): every
//!   *composite* child advances the state identically, and atomic
//!   children can never contribute a match, so the engine only needs the
//!   children's opening/closing characters.
//!
//! The walk stops at the first state that does not fit either shape
//! (accepting, rejecting, descendant loop, index-distinguishing, multiple
//! labels, …); everything from there on — the *tail* — is handled by the
//! general `main_loop` as a sub-run, so results stay byte-identical with
//! the general route by construction. The resulting [`RoutePlan`] is
//! labelled with a [`Route`]: `FieldChain` when every step is a label
//! step, `Selective` when labels and wildcards mix, and `General` when no
//! label step exists (the fast path is then not worth entering and the
//! plan must not be executed).

use crate::automaton::{Automaton, StateId};
pub use rsq_obs::Route;

/// Upper bound on the number of plan steps. The fast-path walker keeps
/// one frame per step on an explicit stack; real queries are far below
/// this, and anything longer gains nothing from routing.
const MAX_PLAN_LEN: usize = 64;

/// One step of a [`RoutePlan`] prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanStep {
    /// Seek the member named by `needle` (the label bytes *including*
    /// the surrounding quotes) directly within the current container;
    /// on success the automaton moves to `target`.
    Label {
        /// The quoted label bytes, `"label"`, ready for `memmem`.
        needle: Vec<u8>,
        /// State after taking the label transition.
        target: StateId,
    },
    /// Iterate the composite children of the current container (a `*`
    /// selector); each child moves the automaton to `target`.
    Wild {
        /// State after taking the fallback transition.
        target: StateId,
    },
}

impl PlanStep {
    /// The state the automaton is in after this step.
    #[must_use]
    pub fn target(&self) -> StateId {
        match *self {
            PlanStep::Label { target, .. } | PlanStep::Wild { target } => target,
        }
    }
}

/// The fast-path execution plan derived from a compiled [`Automaton`].
///
/// Produced by [`RoutePlan::analyze`]; consumed by the engine's fast-path
/// walker. When [`route`](Self::route) is [`Route::General`] the plan
/// must not be executed (the `steps` may be empty or label-free).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutePlan {
    /// The prefix steps, outermost first.
    pub steps: Vec<PlanStep>,
    /// The automaton state after the last step — the entry state of the
    /// general-engine tail sub-run.
    pub tail_state: StateId,
    /// Entering the tail state reports a match (the value found by the
    /// final step is itself a result).
    pub tail_accepting: bool,
    /// Matches are still possible *below* the tail state, so composite
    /// values found by the final step must be run through the general
    /// `main_loop`; when `false` they can be skipped outright.
    pub tail_run: bool,
    /// The route classification; [`Route::General`] means "do not take
    /// the fast path".
    pub route: Route,
}

impl RoutePlan {
    /// Derives the fast-path plan for `automaton`.
    ///
    /// Walks from the initial state, collecting label and wild steps while
    /// the state shape allows the walker to reproduce `main_loop`'s
    /// decisions exactly; see the module docs for the step conditions.
    #[must_use]
    pub fn analyze(automaton: &Automaton) -> RoutePlan {
        let a = automaton;
        let mut state = a.initial_state();
        let mut steps = Vec::new();

        while steps.len() < MAX_PLAN_LEN {
            // A step state must be non-accepting (a match *at* the step
            // would be invisible to the walker) and non-rejecting, and
            // must not distinguish array indices (the walker never counts
            // commas, so `transition(state, Index(i))` must be the index
            // fallback for every `i`; `try_match_first_item` is then a
            // no-op because that fallback is rejecting or non-accepting).
            if a.is_accepting(state)
                || a.is_rejecting(state)
                || a.needs_indices(state)
                || a.explicit_index_transitions(state).next().is_some()
            {
                break;
            }
            if a.is_unitary(state) {
                // Single concrete label, rejecting label fallback. The
                // index fallback must also reject: otherwise array entries
                // could advance the state without any label present.
                let Some((label, target)) = a.single_explicit_transition(state) else {
                    break;
                };
                if !a.is_rejecting(a.fallback_index(state)) || a.is_rejecting(target) {
                    break;
                }
                let mut needle = Vec::with_capacity(label.len() + 2);
                needle.push(b'"');
                needle.extend_from_slice(label);
                needle.push(b'"');
                steps.push(PlanStep::Label { needle, target });
                state = target;
            } else if a.explicit_transitions(state).next().is_none() {
                // Pure wildcard: label and index fallbacks agree, the
                // target cannot accept (atomic children — invisible to
                // the walker because commas and colons stay off — can
                // then never contribute a match), and the state does not
                // loop on itself (a descendant `..*`).
                let target = a.fallback(state);
                if target != a.fallback_index(state)
                    || a.is_rejecting(target)
                    || a.is_accepting(target)
                    || target == state
                {
                    break;
                }
                steps.push(PlanStep::Wild { target });
                state = target;
            } else {
                break;
            }
        }

        let tail_accepting = a.is_accepting(state);
        // Matches strictly below the tail exist only if some one-step
        // successor is non-rejecting (rejecting is closed under
        // transitions, so this one-step check is exact).
        let tail_run = !a.is_rejecting(state)
            && (!a.is_rejecting(a.fallback(state))
                || !a.is_rejecting(a.fallback_index(state))
                || a.explicit_transitions(state)
                    .any(|(_, t)| !a.is_rejecting(t))
                || a.explicit_index_transitions(state)
                    .any(|(_, t)| !a.is_rejecting(t)));

        let has_label = steps.iter().any(|s| matches!(s, PlanStep::Label { .. }));
        let route = if !has_label {
            Route::General
        } else if steps.iter().all(|s| matches!(s, PlanStep::Label { .. })) {
            Route::FieldChain
        } else {
            Route::Selective
        };

        RoutePlan {
            steps,
            tail_state: state,
            tail_accepting,
            tail_run,
            route,
        }
    }

    /// Whether the plan routes away from the general engine.
    #[must_use]
    pub fn is_fast(&self) -> bool {
        self.route != Route::General
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Query;

    fn plan(query: &str) -> RoutePlan {
        let q = Query::parse(query).expect("parse");
        let a = Automaton::compile(&q).expect("compile");
        RoutePlan::analyze(&a)
    }

    fn shape(p: &RoutePlan) -> String {
        p.steps
            .iter()
            .map(|s| match s {
                PlanStep::Label { needle, .. } => {
                    format!("L({})", String::from_utf8_lossy(needle))
                }
                PlanStep::Wild { .. } => "W".to_string(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn pure_chain_is_field_chain() {
        let p = plan("$.a.b.c");
        assert_eq!(p.route, Route::FieldChain);
        assert_eq!(shape(&p), r#"L("a") L("b") L("c")"#);
        assert!(p.tail_accepting, "final value is the match");
        assert!(!p.tail_run, "nothing below the match can match");
    }

    #[test]
    fn catalog_queries_route_as_expected() {
        // B1: labels mixed with wildcards — selective.
        let p = plan("$.products.*.categoryPath.*.id");
        assert_eq!(p.route, Route::Selective);
        assert_eq!(shape(&p), r#"L("products") W L("categoryPath") W L("id")"#);
        assert!(p.tail_accepting && !p.tail_run);

        // G1: leading wildcard, long chain — selective.
        let p = plan("$.*.routes.*.legs.*.steps.*.distance.text");
        assert_eq!(p.route, Route::Selective);
        assert_eq!(
            shape(&p),
            r#"W L("routes") W L("legs") W L("steps") W L("distance") L("text")"#
        );
        assert!(p.tail_accepting && !p.tail_run);

        // N1: chain, one wildcard, chain.
        let p = plan("$.meta.view.columns.*.name");
        assert_eq!(p.route, Route::Selective);
        assert_eq!(shape(&p), r#"L("meta") L("view") L("columns") W L("name")"#);
    }

    #[test]
    fn trailing_wildcards_stop_before_the_accepting_target() {
        // $.data.*.*.*: the final wildcard's target is accepting, so the
        // walk must stop *before* it and hand the rest to the tail run —
        // atomic children of that container do match.
        let p = plan("$.data.*.*.*");
        assert_eq!(p.route, Route::Selective);
        assert_eq!(shape(&p), r#"L("data") W W"#);
        assert!(!p.tail_accepting);
        assert!(p.tail_run, "matches exist below the tail");
    }

    #[test]
    fn descendant_and_wildcard_only_queries_stay_general() {
        for q in ["$..a", "$..*", "$.*", "$.*.*", "$"] {
            let p = plan(q);
            assert_eq!(p.route, Route::General, "{q} must stay general");
            assert!(!p.is_fast());
        }
    }

    #[test]
    fn descendant_tail_keeps_the_prefix_fast() {
        // The fast prefix composes with a descendant tail: the walk stops
        // at the descendant state and `tail_run` hands it to main_loop.
        let p = plan("$.a.b..c");
        assert_eq!(p.route, Route::FieldChain);
        assert_eq!(shape(&p), r#"L("a") L("b")"#);
        assert!(!p.tail_accepting);
        assert!(p.tail_run);
    }

    #[test]
    fn index_selectors_break_the_walk() {
        // `[0]` distinguishes indices: the walker never counts commas, so
        // the state cannot be a step.
        let p = plan("$.a[0].b");
        assert_eq!(shape(&p), r#"L("a")"#);
        assert_eq!(p.route, Route::FieldChain);
        assert!(p.tail_run);
    }

    #[test]
    fn plans_match_recompiled_automata() {
        // Analysis is a pure function of the automaton.
        let q = Query::parse("$.products.*.categoryPath.*.id").unwrap();
        let a = Automaton::compile(&q).unwrap();
        assert_eq!(RoutePlan::analyze(&a), RoutePlan::analyze(&a));
    }
}
