//! Nondeterministic query automaton (§3.1, Figure 2 top).
//!
//! States correspond to selector positions; state `i` *advances* to `i + 1`
//! when its selector matches the next label on the path, and *recursive*
//! states (descendant selectors) additionally loop on every label. State
//! `selectors.len()` is the accepting state.

use crate::parser::{Query, Selector};

/// Interned label index into [`Nfa::labels`].
pub(crate) type LabelId = u16;

/// The symbol a state advances on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Advance {
    /// Advance only on this concrete label.
    Label(LabelId),
    /// Advance only on this array-entry index.
    Index(IndexId),
    /// Advance on every symbol (wildcard selectors).
    Any,
}

/// Interned index position into [`Nfa::indices`].
pub(crate) type IndexId = u16;

/// A symbol of the path alphabet during determinization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Symbol {
    /// A concrete query label.
    Label(LabelId),
    /// A label not mentioned in the query.
    OtherLabel,
    /// A concrete query array index.
    Index(IndexId),
    /// An array index not mentioned in the query.
    OtherIndex,
}

/// One NFA state (a selector position).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct NfaState {
    /// Recursive states loop on every label (descendant selectors).
    pub recursive: bool,
    /// The advancing transition to the next state.
    pub advance: Advance,
}

/// The query NFA.
#[derive(Clone, Debug)]
pub(crate) struct Nfa {
    /// Unique labels mentioned in the query, as raw bytes.
    pub labels: Vec<Vec<u8>>,
    /// Unique array indices mentioned in the query.
    pub indices: Vec<u64>,
    /// One state per selector; the accepting state is implicit at index
    /// `states.len()`.
    pub states: Vec<NfaState>,
}

impl Nfa {
    /// Builds the NFA for a query, interning labels and indices.
    pub(crate) fn from_query(query: &Query) -> Nfa {
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut indices: Vec<u64> = Vec::new();
        let mut intern = |text: &str| -> LabelId {
            let bytes = text.as_bytes();
            match labels.iter().position(|l| l == bytes) {
                Some(i) => i as LabelId,
                None => {
                    labels.push(bytes.to_vec());
                    (labels.len() - 1) as LabelId
                }
            }
        };
        let mut intern_index = |n: u64| -> IndexId {
            match indices.iter().position(|&i| i == n) {
                Some(i) => i as IndexId,
                None => {
                    indices.push(n);
                    (indices.len() - 1) as IndexId
                }
            }
        };
        let states = query
            .selectors()
            .iter()
            .map(|sel| match sel {
                Selector::Child(l) => NfaState {
                    recursive: false,
                    advance: Advance::Label(intern(l)),
                },
                Selector::ChildWildcard => NfaState {
                    recursive: false,
                    advance: Advance::Any,
                },
                Selector::Descendant(l) => NfaState {
                    recursive: true,
                    advance: Advance::Label(intern(l)),
                },
                Selector::DescendantWildcard => NfaState {
                    recursive: true,
                    advance: Advance::Any,
                },
                Selector::Index(n) => NfaState {
                    recursive: false,
                    advance: Advance::Index(intern_index(*n)),
                },
                Selector::DescendantIndex(n) => NfaState {
                    recursive: true,
                    advance: Advance::Index(intern_index(*n)),
                },
            })
            .collect();
        Nfa {
            labels,
            indices,
            states,
        }
    }

    /// Index of the accepting state.
    pub(crate) fn accept(&self) -> u16 {
        self.states.len() as u16
    }

    /// Number of distinct labels (the concrete part of the alphabet; the
    /// full alphabet adds the query indices and one "other" symbol each
    /// for labels and indices outside the query).
    pub(crate) fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct array indices mentioned in the query.
    pub(crate) fn index_count(&self) -> usize {
        self.indices.len()
    }

    /// Computes the successor set of a sorted NFA state set over a symbol
    /// of the path alphabet.
    ///
    /// Applies the **greedy match property**: all states below the highest
    /// recursive state in the result are dropped (sound under node
    /// semantics; see §3.1).
    pub(crate) fn successors(&self, set: &[u16], symbol: Symbol) -> Vec<u16> {
        let mut out: Vec<u16> = Vec::with_capacity(set.len() + 1);
        let push = |s: u16, out: &mut Vec<u16>| {
            if let Err(i) = out.binary_search(&s) {
                out.insert(i, s);
            }
        };
        for &s in set {
            if s == self.accept() {
                continue; // the accepting state has no outgoing transitions
            }
            let state = self.states[s as usize];
            if state.recursive {
                push(s, &mut out);
            }
            let advances = match state.advance {
                Advance::Any => true,
                Advance::Label(l) => symbol == Symbol::Label(l),
                Advance::Index(i) => symbol == Symbol::Index(i),
            };
            if advances {
                push(s + 1, &mut out);
            }
        }
        // Greedy match: forget everything below the deepest recursive state.
        if let Some(&r) = out
            .iter()
            .rev()
            .find(|&&s| s < self.accept() && self.states[s as usize].recursive)
        {
            out.retain(|&s| s >= r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nfa(text: &str) -> Nfa {
        Nfa::from_query(&Query::parse(text).unwrap())
    }

    #[test]
    fn interns_duplicate_labels() {
        let n = nfa("$..a.b..a");
        assert_eq!(n.label_count(), 2);
        assert_eq!(n.labels[0], b"a");
        assert_eq!(n.labels[1], b"b");
    }

    #[test]
    fn recursive_states_marked() {
        let n = nfa("$.a..b.*..*");
        let rec: Vec<bool> = n.states.iter().map(|s| s.recursive).collect();
        assert_eq!(rec, [false, true, false, true]);
    }

    #[test]
    fn successors_direct_label() {
        let n = nfa("$.a.b");
        assert_eq!(n.successors(&[0], Symbol::Label(0)), vec![1]);
        assert_eq!(n.successors(&[0], Symbol::Label(1)), Vec::<u16>::new());
        assert_eq!(n.successors(&[0], Symbol::OtherLabel), Vec::<u16>::new());
        assert_eq!(n.successors(&[1], Symbol::Label(1)), vec![2]); // accept
    }

    #[test]
    fn successors_recursive_loops() {
        let n = nfa("$..a");
        // ..a loops on everything and advances on a.
        assert_eq!(n.successors(&[0], Symbol::OtherIndex), vec![0]);
        assert_eq!(n.successors(&[0], Symbol::Label(0)), vec![0, 1]);
        // accept has no outgoing transitions, recursive 0 persists
        assert_eq!(n.successors(&[0, 1], Symbol::OtherLabel), vec![0]);
    }

    #[test]
    fn greedy_match_drops_earlier_states() {
        // $..a..b — once ..b (state 1) is reached, state 0 is dropped.
        let n = nfa("$..a..b");
        assert_eq!(n.successors(&[0], Symbol::Label(0)), vec![1]);
        assert_eq!(n.successors(&[0, 1], Symbol::Label(0)), vec![1]);
    }

    #[test]
    fn greedy_match_keeps_direct_states_after_recursive() {
        // $..a.b — state 1 (.b) sits after the recursive state 0 and is kept.
        let n = nfa("$..a.b");
        assert_eq!(n.successors(&[0], Symbol::Label(0)), vec![0, 1]);
        assert_eq!(n.successors(&[0, 1], Symbol::Label(1)), vec![0, 2]);
    }
}
