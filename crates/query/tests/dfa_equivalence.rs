//! The compiled minimal DFA (built with the greedy-match subset reduction)
//! must recognize exactly the same language as a naive full-subset NFA
//! simulation of the query, on arbitrary path words over labels *and*
//! array indices. This validates the greedy match property (§3.1), the
//! minimization, and the array-index alphabet extension.

use proptest::prelude::*;
use rsq_query::{Automaton, PathSymbol, Query, Selector};

/// A symbol of a generated path word.
#[derive(Clone, Copy, Debug)]
enum Sym {
    Label(&'static str),
    Index(u64),
}

/// Naive NFA simulation: full subsets, no greedy reduction.
fn nfa_accepts(query: &Query, word: &[Sym]) -> bool {
    let sels = query.selectors();
    let accept = sels.len();
    let mut set: Vec<usize> = vec![0.min(accept)];
    for &symbol in word {
        let mut next: Vec<usize> = Vec::new();
        for &s in &set {
            if s == accept {
                continue;
            }
            let (recursive, advances) = match (&sels[s], symbol) {
                (Selector::Child(l), Sym::Label(x)) => (false, l == x),
                (Selector::Child(_), Sym::Index(_)) => (false, false),
                (Selector::ChildWildcard, _) => (false, true),
                (Selector::Index(n), Sym::Index(k)) => (false, *n == k),
                (Selector::Index(_), Sym::Label(_)) => (false, false),
                (Selector::Descendant(l), Sym::Label(x)) => (true, l == x),
                (Selector::Descendant(_), Sym::Index(_)) => (true, false),
                (Selector::DescendantWildcard, _) => (true, true),
                (Selector::DescendantIndex(n), Sym::Index(k)) => (true, *n == k),
                (Selector::DescendantIndex(_), Sym::Label(_)) => (true, false),
            };
            if recursive {
                next.push(s);
            }
            if advances {
                next.push(s + 1);
            }
        }
        next.sort_unstable();
        next.dedup();
        set = next;
    }
    set.contains(&accept)
}

fn dfa_accepts(automaton: &Automaton, word: &[Sym]) -> bool {
    let mut state = automaton.initial_state();
    for &symbol in word {
        let sym = match symbol {
            Sym::Label(l) => PathSymbol::Label(l.as_bytes()),
            Sym::Index(n) => PathSymbol::Index(n),
        };
        state = automaton.transition(state, sym);
    }
    automaton.is_accepting(state)
}

fn arb_selector() -> impl Strategy<Value = Selector> {
    let label = prop_oneof![Just("a"), Just("b"), Just("c")];
    prop_oneof![
        3 => label.clone().prop_map(|l| Selector::Child(l.to_owned())),
        2 => Just(Selector::ChildWildcard),
        3 => label.prop_map(|l| Selector::Descendant(l.to_owned())),
        1 => Just(Selector::DescendantWildcard),
        2 => prop_oneof![Just(0u64), Just(1), Just(5)].prop_map(Selector::Index),
        1 => prop_oneof![Just(0u64), Just(1)].prop_map(Selector::DescendantIndex),
    ]
}

fn arb_word() -> impl Strategy<Value = Vec<Sym>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Sym::Label("a")),
            Just(Sym::Label("b")),
            Just(Sym::Label("c")),
            Just(Sym::Label("z")), // label outside every query
            Just(Sym::Index(0)),
            Just(Sym::Index(1)),
            Just(Sym::Index(5)),
            Just(Sym::Index(7)), // index outside every query
        ],
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn dfa_equals_nfa(
        selectors in proptest::collection::vec(arb_selector(), 0..6),
        words in proptest::collection::vec(arb_word(), 1..20),
    ) {
        let query = Query::from_selectors(selectors);
        let automaton = Automaton::compile(&query).unwrap();
        for word in &words {
            prop_assert_eq!(
                dfa_accepts(&automaton, word),
                nfa_accepts(&query, word),
                "query {} word {:?}",
                query,
                word
            );
        }
    }

    #[test]
    fn rejecting_states_never_recover(
        selectors in proptest::collection::vec(arb_selector(), 1..5),
        word in arb_word(),
    ) {
        let query = Query::from_selectors(selectors);
        let automaton = Automaton::compile(&query).unwrap();
        let mut state = automaton.initial_state();
        let mut rejected = false;
        for &symbol in &word {
            let sym = match symbol {
                Sym::Label(l) => PathSymbol::Label(l.as_bytes()),
                Sym::Index(n) => PathSymbol::Index(n),
            };
            state = automaton.transition(state, sym);
            if rejected {
                prop_assert!(automaton.is_rejecting(state));
            }
            rejected |= automaton.is_rejecting(state);
        }
    }

    #[test]
    fn internal_states_cannot_accept_next(
        selectors in proptest::collection::vec(arb_selector(), 1..5),
        word in arb_word(),
    ) {
        let query = Query::from_selectors(selectors);
        let automaton = Automaton::compile(&query).unwrap();
        let mut state = automaton.initial_state();
        for &symbol in &word {
            let was_internal = automaton.is_internal(state);
            let sym = match symbol {
                Sym::Label(l) => PathSymbol::Label(l.as_bytes()),
                Sym::Index(n) => PathSymbol::Index(n),
            };
            state = automaton.transition(state, sym);
            if was_internal {
                prop_assert!(!automaton.is_accepting(state));
            }
        }
    }
}
