//! Library backing the `rsq` command-line tool, factored out so the
//! argument parsing and the command implementations are unit-testable.
//!
//! Failures carry a [`CliErrorKind`] so the binary can exit with a
//! distinct status per failure class (bad query vs. unreadable input vs.
//! tripped resource limit), making the tool scriptable: a wrapper can
//! retry I/O failures but treat query errors as fatal. All diagnostics go
//! to stderr; stdout carries results only.

#![warn(missing_docs)]

use rsq_engine::{Engine, EngineOptions, RunError};
use rsq_query::Query;
use std::fmt;
use std::io::Write;

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
usage: rsq [MODE] [OPTIONS] QUERY [FILE]
       rsq --stats [FILE]
       rsq --compile QUERY

modes:
  (default)     print the text of every matched node
  --count       print only the number of matches
  --positions   print the byte offset of every match
  --verify      evaluate both streamed and on a DOM oracle; fail on mismatch

options:
  --strict            reject structurally malformed documents
  --max-depth N       abort beyond N nesting levels (default 1024)
  --max-bytes N       abort when the document exceeds N bytes
  --max-matches N     abort after N matches

reads from stdin when FILE is omitted (chunked; limits apply while
bytes arrive)

exit codes: 0 ok, 1 failure, 2 usage, 3 bad query, 4 I/O error,
5 resource limit exceeded, 6 malformed document";

/// What the user asked for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Print matched node text.
    Values,
    /// Print the match count.
    Count,
    /// Print byte offsets.
    Positions,
    /// Cross-check the streamed result against the DOM oracle.
    Verify,
    /// Print document statistics (no query).
    Stats,
    /// Print the compiled automaton in DOT format (no input).
    Compile,
}

/// Failure class, mapped to the process exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CliErrorKind {
    /// Any other failure (oracle mismatch, write error).
    Failure,
    /// The query does not parse or compile.
    Query,
    /// The input cannot be read.
    Io,
    /// A resource limit tripped.
    Limit,
    /// The document failed strict validation.
    Malformed,
}

impl CliErrorKind {
    /// The exit code for this failure class (usage errors are code 2,
    /// raised before a `CliError` exists).
    #[must_use]
    pub fn exit_code(self) -> u8 {
        match self {
            CliErrorKind::Failure => 1,
            CliErrorKind::Query => 3,
            CliErrorKind::Io => 4,
            CliErrorKind::Limit => 5,
            CliErrorKind::Malformed => 6,
        }
    }
}

/// A classified failure with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError {
    /// Failure class (drives the exit code).
    pub kind: CliErrorKind,
    /// Message for stderr.
    pub message: String,
}

impl CliError {
    fn new(kind: CliErrorKind, message: impl Into<String>) -> Self {
        CliError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<RunError> for CliError {
    fn from(e: RunError) -> Self {
        let kind = match &e {
            RunError::Io(_) => CliErrorKind::Io,
            RunError::LimitExceeded { .. } => CliErrorKind::Limit,
            RunError::Malformed(_) => CliErrorKind::Malformed,
        };
        CliError::new(kind, e.to_string())
    }
}

/// A parsed command line.
#[derive(Clone, Debug)]
pub struct Invocation {
    /// Selected mode.
    pub mode: Mode,
    /// The query text (empty for `--stats`).
    pub query: String,
    /// Input path; `None` = stdin.
    pub file: Option<String>,
    /// Engine options assembled from `--strict`/`--max-*` flags.
    pub options: EngineOptions,
}

impl Invocation {
    /// Parses command-line arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the arguments do not form a
    /// valid invocation.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut mode = Mode::Values;
        let mut options = EngineOptions::default();
        let mut rest: Vec<&str> = Vec::new();
        let mut it = args.iter();
        // A valued flag accepts both `--flag N` and `--flag=N`.
        let value_of = |flag: &str, arg: &str, it: &mut std::slice::Iter<'_, String>| {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                return Some(Ok(v.to_owned()));
            }
            if arg == flag {
                return Some(match it.next() {
                    Some(v) => Ok(v.clone()),
                    None => Err(format!("{flag} requires a value")),
                });
            }
            None
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--count" => mode = Mode::Count,
                "--positions" => mode = Mode::Positions,
                "--verify" => mode = Mode::Verify,
                "--stats" => mode = Mode::Stats,
                "--compile" => mode = Mode::Compile,
                "--strict" => options.strict = true,
                "--help" | "-h" => return Err(String::new()),
                flag if flag.starts_with("--") => {
                    if let Some(v) = value_of("--max-depth", flag, &mut it) {
                        options.max_depth = parse_number("--max-depth", &v?)?;
                    } else if let Some(v) = value_of("--max-bytes", flag, &mut it) {
                        options.max_document_bytes = Some(parse_number("--max-bytes", &v?)?);
                    } else if let Some(v) = value_of("--max-matches", flag, &mut it) {
                        options.max_matches = Some(parse_number("--max-matches", &v?)?);
                    } else {
                        return Err(format!("unknown flag {flag}"));
                    }
                }
                other => rest.push(other),
            }
        }
        let invocation = |mode, query: &str, file: Option<&str>| Invocation {
            mode,
            query: query.to_owned(),
            file: file.map(str::to_owned),
            options,
        };
        match mode {
            Mode::Stats => match rest.as_slice() {
                [] => Ok(invocation(mode, "", None)),
                [file] => Ok(invocation(mode, "", Some(file))),
                _ => Err("--stats takes at most one FILE".to_owned()),
            },
            Mode::Compile => match rest.as_slice() {
                [query] => Ok(invocation(mode, query, None)),
                _ => Err("--compile takes exactly one QUERY".to_owned()),
            },
            _ => match rest.as_slice() {
                [query] => Ok(invocation(mode, query, None)),
                [query, file] => Ok(invocation(mode, query, Some(file))),
                _ => Err("expected QUERY [FILE]".to_owned()),
            },
        }
    }
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid number {value:?}"))
}

/// Ingests the document through the engine's hardened reader path:
/// chunked reads (stdin included), transient-error retry, and limits
/// enforced while bytes arrive.
fn read_input(engine: &Engine, file: Option<&str>) -> Result<Vec<u8>, CliError> {
    match file {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot read {path}: {e}")))?;
            engine
                .read_document(std::io::BufReader::new(file))
                .map_err(|e| {
                    let mut err = CliError::from(e);
                    err.message = format!("{path}: {}", err.message);
                    err
                })
        }
        None => engine.read_document(std::io::stdin().lock()).map_err(|e| {
            let mut err = CliError::from(e);
            err.message = format!("stdin: {}", err.message);
            err
        }),
    }
}

/// Reads input without an engine (`--stats` has no query to configure
/// one).
fn read_input_plain(file: Option<&str>) -> Result<Vec<u8>, CliError> {
    match file {
        Some(path) => std::fs::read(path)
            .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = Vec::new();
            std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut buf)
                .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot read stdin: {e}")))?;
            Ok(buf)
        }
    }
}

fn compile(invocation: &Invocation) -> Result<Engine, CliError> {
    let query = Query::parse(&invocation.query)
        .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))?;
    Engine::with_options(&query, invocation.options)
        .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))
}

/// Executes an invocation, writing results to `out`.
///
/// # Errors
///
/// Returns a classified [`CliError`] on bad queries, unreadable input,
/// tripped limits, strict-mode validation failures, or (in `--verify`
/// mode) an engine/oracle mismatch.
pub fn run(invocation: &Invocation, out: &mut impl Write) -> Result<(), CliError> {
    let emit = |out: &mut dyn Write, text: std::fmt::Arguments<'_>| {
        writeln!(out, "{text}")
            .map_err(|e| CliError::new(CliErrorKind::Failure, format!("write error: {e}")))
    };
    match invocation.mode {
        Mode::Stats => {
            let input = read_input_plain(invocation.file.as_deref())?;
            let stats = rsq_json::document_stats(&input);
            emit(
                out,
                format_args!(
                    "size      {} bytes ({:.2} MB)",
                    stats.size_bytes,
                    stats.size_mb()
                ),
            )?;
            emit(out, format_args!("depth     {}", stats.max_depth))?;
            emit(out, format_args!("nodes     {}", stats.node_count))?;
            emit(
                out,
                format_args!("verbosity {:.2} bytes/node", stats.verbosity()),
            )
        }
        Mode::Compile => {
            let query = Query::parse(&invocation.query)
                .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))?;
            let automaton = rsq_query::Automaton::compile(&query)
                .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))?;
            write!(out, "{}", automaton.to_dot())
                .map_err(|e| CliError::new(CliErrorKind::Failure, format!("write error: {e}")))
        }
        Mode::Count => {
            let engine = compile(invocation)?;
            let input = read_input(&engine, invocation.file.as_deref())?;
            emit(out, format_args!("{}", engine.try_count(&input)?))
        }
        Mode::Positions => {
            let engine = compile(invocation)?;
            let input = read_input(&engine, invocation.file.as_deref())?;
            for pos in engine.try_positions(&input)? {
                emit(out, format_args!("{pos}"))?;
            }
            Ok(())
        }
        Mode::Values => {
            let engine = compile(invocation)?;
            let input = read_input(&engine, invocation.file.as_deref())?;
            for pos in engine.try_positions(&input)? {
                let text = node_text(&input, pos).unwrap_or("<malformed>");
                emit(out, format_args!("{text}"))?;
            }
            Ok(())
        }
        Mode::Verify => {
            let query = Query::parse(&invocation.query)
                .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))?;
            let engine = Engine::with_options(&query, invocation.options)
                .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))?;
            let input = read_input(&engine, invocation.file.as_deref())?;
            let streamed = engine.try_positions(&input)?;
            let dom = rsq_json::parse(&input)
                .map_err(|e| CliError::new(CliErrorKind::Malformed, e.to_string()))?;
            let oracle = rsq_baselines::positions(&query, &dom);
            if streamed == oracle {
                emit(
                    out,
                    format_args!("ok: {} matches, engine and oracle agree", streamed.len()),
                )
            } else {
                Err(CliError::new(
                    CliErrorKind::Failure,
                    format!(
                        "MISMATCH: engine found {} matches, oracle {} (this is a bug — \
                         duplicate sibling keys? see README on sibling skipping)",
                        streamed.len(),
                        oracle.len()
                    ),
                ))
            }
        }
    }
}

/// Extracts the text of the JSON value starting at `pos`.
fn node_text(document: &[u8], pos: usize) -> Option<&str> {
    let bytes = document.get(pos..)?;
    let end = match bytes.first()? {
        open @ (b'{' | b'[') => {
            let close = if *open == b'{' { b'}' } else { b']' };
            let open = *open;
            let mut depth = 0usize;
            let mut in_string = false;
            let mut escaped = false;
            let mut end = None;
            for (i, &b) in bytes.iter().enumerate() {
                if in_string {
                    if escaped {
                        escaped = false;
                    } else if b == b'\\' {
                        escaped = true;
                    } else if b == b'"' {
                        in_string = false;
                    }
                    continue;
                }
                if b == b'"' {
                    in_string = true;
                } else if b == open {
                    depth += 1;
                } else if b == close {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i + 1);
                        break;
                    }
                }
            }
            end?
        }
        b'"' => {
            let mut escaped = false;
            let mut end = None;
            for (i, &b) in bytes.iter().enumerate().skip(1) {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    end = Some(i + 1);
                    break;
                }
            }
            end?
        }
        _ => bytes
            .iter()
            .position(|&b| matches!(b, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r'))
            .unwrap_or(bytes.len()),
    };
    std::str::from_utf8(&bytes[..end]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Invocation, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Invocation::parse(&owned)
    }

    #[test]
    fn parses_modes() {
        assert_eq!(parse(&["$..a"]).unwrap().mode, Mode::Values);
        assert_eq!(parse(&["--count", "$..a"]).unwrap().mode, Mode::Count);
        assert_eq!(
            parse(&["--positions", "$..a", "f.json"])
                .unwrap()
                .file
                .as_deref(),
            Some("f.json")
        );
        assert_eq!(parse(&["--stats"]).unwrap().mode, Mode::Stats);
        assert_eq!(parse(&["--compile", "$.a"]).unwrap().mode, Mode::Compile);
        assert!(parse(&["--nope", "$..a"]).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&["a", "b", "c"]).is_err());
    }

    #[test]
    fn parses_limit_flags() {
        let inv = parse(&[
            "--strict",
            "--max-depth",
            "64",
            "--max-bytes=1000",
            "--max-matches",
            "5",
            "$..a",
        ])
        .unwrap();
        assert!(inv.options.strict);
        assert_eq!(inv.options.max_depth, 64);
        assert_eq!(inv.options.max_document_bytes, Some(1000));
        assert_eq!(inv.options.max_matches, Some(5));
        assert!(parse(&["--max-depth", "$..a"]).is_err()); // not a number
        assert!(parse(&["--max-depth"]).is_err()); // missing value
        assert!(parse(&["--max-bytes=many", "$..a"]).is_err());
    }

    fn run_to_string(inv: &Invocation) -> Result<String, CliError> {
        let mut out = Vec::new();
        run(inv, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn with_temp_file(content: &str, f: impl FnOnce(&str)) {
        let path = std::env::temp_dir().join(format!(
            "rsq-cli-test-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, content).unwrap();
        f(path.to_str().unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn count_values_positions_and_verify() {
        with_temp_file(r#"{"a": [1, {"b": 2}], "b": 3}"#, |path| {
            let inv = |mode| Invocation {
                mode,
                query: "$..b".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions::default(),
            };
            assert_eq!(run_to_string(&inv(Mode::Count)).unwrap(), "2\n");
            assert_eq!(run_to_string(&inv(Mode::Values)).unwrap(), "2\n3\n");
            let positions = run_to_string(&inv(Mode::Positions)).unwrap();
            assert_eq!(positions.lines().count(), 2);
            let verify = run_to_string(&inv(Mode::Verify)).unwrap();
            assert!(verify.starts_with("ok: 2 matches"));
        });
    }

    #[test]
    fn error_kinds_are_classified() {
        let bad_query = Invocation {
            mode: Mode::Count,
            query: "nope".to_owned(),
            file: None,
            options: EngineOptions::default(),
        };
        assert_eq!(
            run(&bad_query, &mut Vec::new()).unwrap_err().kind,
            CliErrorKind::Query
        );

        let missing_file = Invocation {
            mode: Mode::Count,
            query: "$..a".to_owned(),
            file: Some("/nonexistent/rsq-test.json".to_owned()),
            options: EngineOptions::default(),
        };
        assert_eq!(
            run(&missing_file, &mut Vec::new()).unwrap_err().kind,
            CliErrorKind::Io
        );

        with_temp_file(r#"{"a": 1, "a": 2"#, |path| {
            let strict = Invocation {
                mode: Mode::Count,
                query: "$..a".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions {
                    strict: true,
                    ..EngineOptions::default()
                },
            };
            assert_eq!(
                run(&strict, &mut Vec::new()).unwrap_err().kind,
                CliErrorKind::Malformed
            );
        });

        with_temp_file(r#"{"a": 1, "b": {"a": 2}}"#, |path| {
            let limited = Invocation {
                mode: Mode::Count,
                query: "$..a".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions {
                    max_matches: Some(1),
                    ..EngineOptions::default()
                },
            };
            assert_eq!(
                run(&limited, &mut Vec::new()).unwrap_err().kind,
                CliErrorKind::Limit
            );
        });
    }

    #[test]
    fn stats_mode() {
        with_temp_file(r#"{"a": [1, 2]}"#, |path| {
            let inv = Invocation {
                mode: Mode::Stats,
                query: String::new(),
                file: Some(path.to_owned()),
                options: EngineOptions::default(),
            };
            let out = run_to_string(&inv).unwrap();
            assert!(out.contains("nodes     4"), "{out}");
            assert!(out.contains("depth     3"), "{out}");
        });
    }

    #[test]
    fn compile_mode_emits_dot() {
        let inv = Invocation {
            mode: Mode::Compile,
            query: "$.a..b".to_owned(),
            file: None,
            options: EngineOptions::default(),
        };
        let out = run_to_string(&inv).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("doublecircle"));
    }
}
