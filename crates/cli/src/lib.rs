//! Library backing the `rsq` command-line tool, factored out so the
//! argument parsing and the command implementations are unit-testable.

#![warn(missing_docs)]

use rsq_engine::Engine;
use rsq_query::Query;
use std::io::Write;

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
usage: rsq [MODE] QUERY [FILE]
       rsq --stats [FILE]
       rsq --compile QUERY

modes:
  (default)     print the text of every matched node
  --count       print only the number of matches
  --positions   print the byte offset of every match
  --verify      evaluate both streamed and on a DOM oracle; fail on mismatch
reads from stdin when FILE is omitted";

/// What the user asked for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Print matched node text.
    Values,
    /// Print the match count.
    Count,
    /// Print byte offsets.
    Positions,
    /// Cross-check the streamed result against the DOM oracle.
    Verify,
    /// Print document statistics (no query).
    Stats,
    /// Print the compiled automaton in DOT format (no input).
    Compile,
}

/// A parsed command line.
#[derive(Clone, Debug)]
pub struct Invocation {
    /// Selected mode.
    pub mode: Mode,
    /// The query text (empty for `--stats`).
    pub query: String,
    /// Input path; `None` = stdin.
    pub file: Option<String>,
}

impl Invocation {
    /// Parses command-line arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the arguments do not form a
    /// valid invocation.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut mode = Mode::Values;
        let mut rest: Vec<&str> = Vec::new();
        for arg in args {
            match arg.as_str() {
                "--count" => mode = Mode::Count,
                "--positions" => mode = Mode::Positions,
                "--verify" => mode = Mode::Verify,
                "--stats" => mode = Mode::Stats,
                "--compile" => mode = Mode::Compile,
                "--help" | "-h" => return Err(String::new()),
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                other => rest.push(other),
            }
        }
        match mode {
            Mode::Stats => match rest.as_slice() {
                [] => Ok(Invocation { mode, query: String::new(), file: None }),
                [file] => Ok(Invocation {
                    mode,
                    query: String::new(),
                    file: Some((*file).to_owned()),
                }),
                _ => Err("--stats takes at most one FILE".to_owned()),
            },
            Mode::Compile => match rest.as_slice() {
                [query] => Ok(Invocation {
                    mode,
                    query: (*query).to_owned(),
                    file: None,
                }),
                _ => Err("--compile takes exactly one QUERY".to_owned()),
            },
            _ => match rest.as_slice() {
                [query] => Ok(Invocation {
                    mode,
                    query: (*query).to_owned(),
                    file: None,
                }),
                [query, file] => Ok(Invocation {
                    mode,
                    query: (*query).to_owned(),
                    file: Some((*file).to_owned()),
                }),
                _ => Err("expected QUERY [FILE]".to_owned()),
            },
        }
    }
}

fn read_input(file: Option<&str>) -> Result<Vec<u8>, String> {
    match file {
        Some(path) => std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}")),
        None => {
            let mut buf = Vec::new();
            std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Ok(buf)
        }
    }
}

/// Executes an invocation, writing results to `out`.
///
/// # Errors
///
/// Returns a human-readable message on bad queries, unreadable input, or
/// (in `--verify` mode) an engine/oracle mismatch.
pub fn run(invocation: &Invocation, out: &mut impl Write) -> Result<(), String> {
    let emit = |out: &mut dyn Write, text: std::fmt::Arguments<'_>| {
        writeln!(out, "{text}").map_err(|e| format!("write error: {e}"))
    };
    match invocation.mode {
        Mode::Stats => {
            let input = read_input(invocation.file.as_deref())?;
            let stats = rsq_json::document_stats(&input);
            emit(out, format_args!("size      {} bytes ({:.2} MB)", stats.size_bytes, stats.size_mb()))?;
            emit(out, format_args!("depth     {}", stats.max_depth))?;
            emit(out, format_args!("nodes     {}", stats.node_count))?;
            emit(out, format_args!("verbosity {:.2} bytes/node", stats.verbosity()))
        }
        Mode::Compile => {
            let query = Query::parse(&invocation.query).map_err(|e| e.to_string())?;
            let automaton = rsq_query::Automaton::compile(&query).map_err(|e| e.to_string())?;
            write!(out, "{}", automaton.to_dot()).map_err(|e| format!("write error: {e}"))
        }
        Mode::Count => {
            let engine = Engine::from_text(&invocation.query).map_err(|e| e.to_string())?;
            let input = read_input(invocation.file.as_deref())?;
            emit(out, format_args!("{}", engine.count(&input)))
        }
        Mode::Positions => {
            let engine = Engine::from_text(&invocation.query).map_err(|e| e.to_string())?;
            let input = read_input(invocation.file.as_deref())?;
            for pos in engine.positions(&input) {
                emit(out, format_args!("{pos}"))?;
            }
            Ok(())
        }
        Mode::Values => {
            let engine = Engine::from_text(&invocation.query).map_err(|e| e.to_string())?;
            let input = read_input(invocation.file.as_deref())?;
            for pos in engine.positions(&input) {
                let text = node_text(&input, pos).unwrap_or("<malformed>");
                emit(out, format_args!("{text}"))?;
            }
            Ok(())
        }
        Mode::Verify => {
            let query = Query::parse(&invocation.query).map_err(|e| e.to_string())?;
            let engine = Engine::from_query(&query).map_err(|e| e.to_string())?;
            let input = read_input(invocation.file.as_deref())?;
            let streamed = engine.positions(&input);
            let dom = rsq_json::parse(&input).map_err(|e| e.to_string())?;
            let oracle = rsq_baselines::positions(&query, &dom);
            if streamed == oracle {
                emit(out, format_args!("ok: {} matches, engine and oracle agree", streamed.len()))
            } else {
                Err(format!(
                    "MISMATCH: engine found {} matches, oracle {} (this is a bug — \
                     duplicate sibling keys? see README on sibling skipping)",
                    streamed.len(),
                    oracle.len()
                ))
            }
        }
    }
}

/// Extracts the text of the JSON value starting at `pos`.
fn node_text(document: &[u8], pos: usize) -> Option<&str> {
    let bytes = document.get(pos..)?;
    let end = match bytes.first()? {
        open @ (b'{' | b'[') => {
            let close = if *open == b'{' { b'}' } else { b']' };
            let open = *open;
            let mut depth = 0usize;
            let mut in_string = false;
            let mut escaped = false;
            let mut end = None;
            for (i, &b) in bytes.iter().enumerate() {
                if in_string {
                    if escaped {
                        escaped = false;
                    } else if b == b'\\' {
                        escaped = true;
                    } else if b == b'"' {
                        in_string = false;
                    }
                    continue;
                }
                if b == b'"' {
                    in_string = true;
                } else if b == open {
                    depth += 1;
                } else if b == close {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i + 1);
                        break;
                    }
                }
            }
            end?
        }
        b'"' => {
            let mut escaped = false;
            let mut end = None;
            for (i, &b) in bytes.iter().enumerate().skip(1) {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    end = Some(i + 1);
                    break;
                }
            }
            end?
        }
        _ => bytes
            .iter()
            .position(|&b| matches!(b, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r'))
            .unwrap_or(bytes.len()),
    };
    std::str::from_utf8(&bytes[..end]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Invocation, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Invocation::parse(&owned)
    }

    #[test]
    fn parses_modes() {
        assert_eq!(parse(&["$..a"]).unwrap().mode, Mode::Values);
        assert_eq!(parse(&["--count", "$..a"]).unwrap().mode, Mode::Count);
        assert_eq!(parse(&["--positions", "$..a", "f.json"]).unwrap().file.as_deref(), Some("f.json"));
        assert_eq!(parse(&["--stats"]).unwrap().mode, Mode::Stats);
        assert_eq!(parse(&["--compile", "$.a"]).unwrap().mode, Mode::Compile);
        assert!(parse(&["--nope", "$..a"]).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&["a", "b", "c"]).is_err());
    }

    fn run_to_string(inv: &Invocation) -> Result<String, String> {
        let mut out = Vec::new();
        run(inv, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn with_temp_file(content: &str, f: impl FnOnce(&str)) {
        let path = std::env::temp_dir().join(format!(
            "rsq-cli-test-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, content).unwrap();
        f(path.to_str().unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn count_values_positions_and_verify() {
        with_temp_file(r#"{"a": [1, {"b": 2}], "b": 3}"#, |path| {
            let inv = |mode| Invocation {
                mode,
                query: "$..b".to_owned(),
                file: Some(path.to_owned()),
            };
            assert_eq!(run_to_string(&inv(Mode::Count)).unwrap(), "2\n");
            assert_eq!(run_to_string(&inv(Mode::Values)).unwrap(), "2\n3\n");
            let positions = run_to_string(&inv(Mode::Positions)).unwrap();
            assert_eq!(positions.lines().count(), 2);
            let verify = run_to_string(&inv(Mode::Verify)).unwrap();
            assert!(verify.starts_with("ok: 2 matches"));
        });
    }

    #[test]
    fn stats_mode() {
        with_temp_file(r#"{"a": [1, 2]}"#, |path| {
            let inv = Invocation {
                mode: Mode::Stats,
                query: String::new(),
                file: Some(path.to_owned()),
            };
            let out = run_to_string(&inv).unwrap();
            assert!(out.contains("nodes     4"), "{out}");
            assert!(out.contains("depth     3"), "{out}");
        });
    }

    #[test]
    fn compile_mode_emits_dot() {
        let inv = Invocation {
            mode: Mode::Compile,
            query: "$.a..b".to_owned(),
            file: None,
        };
        let out = run_to_string(&inv).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("doublecircle"));
    }

    #[test]
    fn bad_query_is_an_error() {
        let inv = Invocation {
            mode: Mode::Count,
            query: "nope".to_owned(),
            file: None,
        };
        assert!(run(&inv, &mut Vec::new()).is_err());
    }
}
