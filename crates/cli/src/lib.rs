//! Library backing the `rsq` command-line tool, factored out so the
//! argument parsing and the command implementations are unit-testable.
//!
//! Failures carry a [`CliErrorKind`] so the binary can exit with a
//! distinct status per failure class (bad query vs. unreadable input vs.
//! tripped resource limit), making the tool scriptable: a wrapper can
//! retry I/O failures but treat query errors as fatal. All diagnostics go
//! to stderr; stdout carries results only.

#![warn(missing_docs)]

use rsq_batch::{BatchEngine, BatchOptions, DocErrorKind};
use rsq_engine::{
    CountSink, Engine, EngineOptions, PositionsSink, ProfileStage, ProfileStats, RunError,
    RunStats, Sink,
};
// Shared with the serve layer so both render identical value output.
use rsq_json::node_span;
use rsq_mmap::{MapPolicy, MmapInput};
use rsq_obs::{
    chrome_trace_json, prometheus, prometheus_serve, ServeCounters, STATS_SCHEMA_VERSION,
};
use rsq_perf::{prometheus_perf_into, CounterSet, PerfMode, PerfRecorder, PerfStats};
use rsq_query::Query;
use rsq_serve::{
    serve_connection_with, serve_telemetry_listener, ResponseMode, ServeOptions, ServeReport,
    Telemetry, TelemetryOptions,
};
use std::fmt;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
usage: rsq [MODE] [OPTIONS] QUERY [FILE]
       rsq [MODE] [OPTIONS] --batch-ndjson FILE QUERY
       rsq [MODE] [OPTIONS] --batch-dir DIR QUERY
       rsq --stats [FILE]
       rsq --compile QUERY

modes:
  (default)     print the text of every matched node
  --count       print only the number of matches
  --positions   print the byte offset of every match
  --verify      evaluate both streamed and on a DOM oracle; fail on mismatch

options:
  --strict            reject structurally malformed documents
  --max-depth N       abort beyond N nesting levels (default 1024)
  --max-bytes N       abort when the document exceeds N bytes
  --max-matches N     abort after N matches
  --stats             with a QUERY: print run statistics (skip/SIMD event
                      counters) as a table on stderr; without one: print
                      document statistics (size/depth/verbosity)
  --stats-json        print run statistics as single-line JSON on stderr
                      (stdout stays result-only either way)
  --profile           with a QUERY: print the full profile on stderr —
                      bytes skipped per technique, pipeline stage times,
                      and a document skip map (batch mode: per-document
                      latency percentiles and per-worker busy/queue-wait
                      instead); with --stats-json, adds a \"profile\"
                      object to the JSON report
  --metrics-out PATH  write the run's counters (and profile, when
                      enabled) to PATH as Prometheus-style text
                      exposition
  --trace-out PATH    (serve/batch) write the run's document timeline
                      to PATH as Chrome trace-event JSON — open it in
                      Perfetto (ui.perfetto.dev) or chrome://tracing
                      for one track per worker with nested
                      queue-wait/run/reorder-wait/emit slices
  --mmap auto|on|off  zero-copy input: map FILE (and --batch-dir files)
                      into memory instead of copying through a read
                      loop; auto (the default) maps files of at least
                      1 MiB, off always buffers (stdin and NDJSON
                      always buffer; results are identical either way)

batch mode (many documents, sharded across threads; output is printed
in input order, byte-identical to looping rsq over each document):
  --batch-ndjson FILE one JSON document per line ('-' reads stdin)
  --batch-dir DIR     every regular file in DIR, sorted by name
  --threads N         worker threads (default: one per CPU)
a failing document is reported on stderr and does not abort the batch;
the exit code reflects the first failure's class

serve mode (long-lived; NDJSON documents stream in as chunks, one
response per document streams back, in input order, byte-identical to
--batch-ndjson over the same lines):
  --serve             serve the pipe protocol: documents on stdin,
                      responses on stdout, error lines
                      (document N: message [code]) on stderr
  --serve-socket PATH accept connections on a Unix socket at PATH
                      (responses and error lines share the socket)
  --max-inflight N    bound on admitted-but-unanswered documents
                      (default 64); at the bound the server stops
                      reading, pushing backpressure to the client
a failing document is answered with a per-document error and the
connection keeps serving; --threads sets the per-connection worker
pool, and the --max-* limits double as per-connection caps

  --deadline-ms N     per-document processing budget; in serve mode
                      expiry answers that document with a timeout
                      error, in single-document mode it bounds ingest

live telemetry (serve mode only; costs nothing when unused):
  --telemetry-socket PATH
                      answer GET /metrics (Prometheus text exposition
                      with last-10s/last-60s rolling windows and live
                      gauges), GET /healthz, GET /readyz, and POST
                      /shutdown (graceful drain) over a second Unix
                      socket — curl-able while serving
  --slow-log-ms N     log one JSON line ({\"slow_document\":...}) on the
                      server's stderr, with the pipeline stage
                      breakdown, for every document whose
                      admit-to-emit time reaches N ms
  --postmortem-dir DIR
                      on any per-document fault (timeout, panic,
                      limit, malformed), write a postmortem JSON with
                      the document's timeline and the worker's recent
                      history to DIR
  --flight-window N   per-worker flight-recorder depth backing
                      postmortems (default 16)

hardware counters (Linux perf_event_open; never change results):
  runs that already gather statistics (--stats, --stats-json,
  --profile, --metrics-out) also read CPU cycle/instruction/cache/
  branch counters when the kernel allows, reporting cycles-per-byte
  (per pipeline stage in single-document mode); a denying kernel
  degrades to no counters with byte-identical output. RSQ_PERF forces
  the policy: auto (default), off (never open counters), deny
  (simulate a denying kernel)

exit codes: 0 ok, 1 failure, 2 usage, 3 bad query, 4 I/O error,
5 resource limit exceeded, 6 malformed document, 7 deadline missed

reads from stdin when FILE is omitted (chunked; limits apply while
bytes arrive)";

/// Live-telemetry flags (serve mode only). All default to off; with
/// every field unset the serve path compiles no spans, reads no clocks,
/// and writes no rings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Scrape-endpoint Unix-socket path (`--telemetry-socket`).
    pub socket: Option<String>,
    /// Slow-document threshold in milliseconds (`--slow-log-ms`).
    pub slow_log_ms: Option<u64>,
    /// Postmortem artifact directory (`--postmortem-dir`).
    pub postmortem_dir: Option<String>,
    /// Per-worker flight-recorder depth (`--flight-window`).
    pub flight_window: Option<usize>,
}

impl TelemetryConfig {
    /// True when any flag that arms telemetry was given.
    /// (`--flight-window` alone arms nothing: it only sizes the ring
    /// that `--postmortem-dir` consumes.)
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.socket.is_some() || self.slow_log_ms.is_some() || self.postmortem_dir.is_some()
    }

    fn to_options(&self) -> TelemetryOptions {
        TelemetryOptions {
            slow_log_ms: self.slow_log_ms,
            postmortem_dir: self.postmortem_dir.as_ref().map(PathBuf::from),
            flight_window: self.flight_window.unwrap_or(0),
            live: self.socket.is_some(),
        }
    }
}

/// How serve mode talks to its clients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeTransport {
    /// One session over stdin/stdout (`--serve`).
    Pipe,
    /// A Unix socket accepting connections until killed
    /// (`--serve-socket PATH`).
    Unix(String),
}

/// Where a batch invocation takes its documents from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchSource {
    /// An NDJSON file, one JSON document per line (`-` = stdin).
    Ndjson(String),
    /// Every regular file in a directory, sorted by file name.
    Dir(String),
}

/// How run statistics are rendered on stderr.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsFormat {
    /// Human-readable table (`--stats` with a query).
    Human,
    /// Single-line machine-readable JSON (`--stats-json`).
    Json,
}

/// What the user asked for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Print matched node text.
    Values,
    /// Print the match count.
    Count,
    /// Print byte offsets.
    Positions,
    /// Cross-check the streamed result against the DOM oracle.
    Verify,
    /// Print document statistics (no query).
    Stats,
    /// Print the compiled automaton in DOT format (no input).
    Compile,
}

/// Failure class, mapped to the process exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CliErrorKind {
    /// Any other failure (oracle mismatch, write error).
    Failure,
    /// The query does not parse or compile.
    Query,
    /// The input cannot be read.
    Io,
    /// A resource limit tripped.
    Limit,
    /// The document failed strict validation.
    Malformed,
    /// A per-document deadline passed before the work finished.
    Deadline,
}

impl CliErrorKind {
    /// The exit code for this failure class (usage errors are code 2,
    /// raised before a `CliError` exists).
    #[must_use]
    pub fn exit_code(self) -> u8 {
        match self {
            CliErrorKind::Failure => 1,
            CliErrorKind::Query => 3,
            CliErrorKind::Io => 4,
            CliErrorKind::Limit => 5,
            CliErrorKind::Malformed => 6,
            CliErrorKind::Deadline => 7,
        }
    }
}

/// A classified failure with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError {
    /// Failure class (drives the exit code).
    pub kind: CliErrorKind,
    /// Message for stderr.
    pub message: String,
}

impl CliError {
    fn new(kind: CliErrorKind, message: impl Into<String>) -> Self {
        CliError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<RunError> for CliError {
    fn from(e: RunError) -> Self {
        let kind = match &e {
            RunError::Io(_) => CliErrorKind::Io,
            RunError::LimitExceeded { .. } => CliErrorKind::Limit,
            RunError::Malformed(_) => CliErrorKind::Malformed,
            RunError::DeadlineExceeded => CliErrorKind::Deadline,
        };
        CliError::new(kind, e.to_string())
    }
}

/// Maps a per-document failure class onto the CLI's exit-code classes.
fn doc_error_kind(kind: DocErrorKind) -> CliErrorKind {
    match kind {
        DocErrorKind::Io => CliErrorKind::Io,
        DocErrorKind::Limit(_) => CliErrorKind::Limit,
        DocErrorKind::Malformed => CliErrorKind::Malformed,
        DocErrorKind::Timeout => CliErrorKind::Deadline,
        DocErrorKind::Panic => CliErrorKind::Failure,
    }
}

/// A parsed command line.
#[derive(Clone, Debug)]
pub struct Invocation {
    /// Selected mode.
    pub mode: Mode,
    /// The query text (empty for `--stats`).
    pub query: String,
    /// Input path; `None` = stdin.
    pub file: Option<String>,
    /// Engine options assembled from `--strict`/`--max-*` flags.
    pub options: EngineOptions,
    /// Emit run statistics on stderr after a successful run
    /// (`--stats`/`--stats-json` alongside a query).
    pub stats: Option<StatsFormat>,
    /// Batch input (`--batch-ndjson`/`--batch-dir`); `None` = single
    /// document.
    pub batch: Option<BatchSource>,
    /// Worker threads for batch mode (`--threads`); 0 = one per CPU.
    pub threads: usize,
    /// Gather the Tier C profile (`--profile`): byte-span skip
    /// accounting, stage timers, and a skip map for single documents, or
    /// a latency histogram plus per-worker accounting in batch mode.
    pub profile: bool,
    /// Write Prometheus-style text exposition to this path after the run
    /// (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Serve mode transport (`--serve`/`--serve-socket`); `None` = a
    /// one-shot invocation.
    pub serve: Option<ServeTransport>,
    /// Per-document deadline in milliseconds (`--deadline-ms`).
    pub deadline_ms: Option<u64>,
    /// Serve-mode in-flight bound (`--max-inflight`); `None` = default.
    pub max_inflight: Option<usize>,
    /// Live-telemetry flags (`--telemetry-socket`/`--slow-log-ms`/
    /// `--postmortem-dir`/`--flight-window`).
    pub telemetry: TelemetryConfig,
    /// Zero-copy input policy (`--mmap auto|on|off`): whether file
    /// inputs are memory-mapped or buffered through the reader.
    pub mmap: MapPolicy,
    /// Hardware-counter policy (`RSQ_PERF` env: auto|off|deny). Counters
    /// only arm on runs that already gather statistics; a denying kernel
    /// (or `off`/`deny`) degrades to no counters with identical output.
    pub perf: PerfMode,
    /// Write the run's document timeline as Chrome trace-event JSON to
    /// this path (`--trace-out`; serve and batch modes only).
    pub trace_out: Option<String>,
}

impl Invocation {
    /// Parses command-line arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the arguments do not form a
    /// valid invocation.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut mode = Mode::Values;
        let mut options = EngineOptions::default();
        let mut batch: Option<BatchSource> = None;
        let mut threads: Option<usize> = None;
        let mut saw_stats = false;
        let mut saw_stats_json = false;
        let mut profile = false;
        let mut metrics_out: Option<String> = None;
        let mut serve: Option<ServeTransport> = None;
        let mut deadline_ms: Option<u64> = None;
        let mut max_inflight: Option<usize> = None;
        let mut telemetry = TelemetryConfig::default();
        let mut mmap = MapPolicy::Auto;
        let mut trace_out: Option<String> = None;
        let mut rest: Vec<&str> = Vec::new();
        let mut it = args.iter();
        // A valued flag accepts both `--flag N` and `--flag=N`.
        let value_of = |flag: &str, arg: &str, it: &mut std::slice::Iter<'_, String>| {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                return Some(Ok(v.to_owned()));
            }
            if arg == flag {
                return Some(match it.next() {
                    Some(v) => Ok(v.clone()),
                    None => Err(format!("{flag} requires a value")),
                });
            }
            None
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--count" => mode = Mode::Count,
                "--positions" => mode = Mode::Positions,
                "--verify" => mode = Mode::Verify,
                "--stats" => saw_stats = true,
                "--stats-json" => saw_stats_json = true,
                "--profile" => profile = true,
                "--compile" => mode = Mode::Compile,
                "--serve" => serve = Some(ServeTransport::Pipe),
                "--strict" => options.strict = true,
                "--help" | "-h" => return Err(String::new()),
                flag if flag.starts_with("--") => {
                    if let Some(v) = value_of("--max-depth", flag, &mut it) {
                        options.max_depth = parse_number("--max-depth", &v?)?;
                    } else if let Some(v) = value_of("--max-bytes", flag, &mut it) {
                        options.max_document_bytes = Some(parse_number("--max-bytes", &v?)?);
                    } else if let Some(v) = value_of("--max-matches", flag, &mut it) {
                        options.max_matches = Some(parse_number("--max-matches", &v?)?);
                    } else if let Some(v) = value_of("--batch-ndjson", flag, &mut it) {
                        batch = Some(BatchSource::Ndjson(v?));
                    } else if let Some(v) = value_of("--batch-dir", flag, &mut it) {
                        batch = Some(BatchSource::Dir(v?));
                    } else if let Some(v) = value_of("--threads", flag, &mut it) {
                        threads = Some(parse_number("--threads", &v?)?);
                    } else if let Some(v) = value_of("--metrics-out", flag, &mut it) {
                        metrics_out = Some(v?);
                    } else if let Some(v) = value_of("--trace-out", flag, &mut it) {
                        trace_out = Some(v?);
                    } else if let Some(v) = value_of("--serve-socket", flag, &mut it) {
                        serve = Some(ServeTransport::Unix(v?));
                    } else if let Some(v) = value_of("--deadline-ms", flag, &mut it) {
                        deadline_ms = Some(parse_number("--deadline-ms", &v?)?);
                    } else if let Some(v) = value_of("--max-inflight", flag, &mut it) {
                        max_inflight = Some(parse_number("--max-inflight", &v?)?);
                    } else if let Some(v) = value_of("--telemetry-socket", flag, &mut it) {
                        telemetry.socket = Some(v?);
                    } else if let Some(v) = value_of("--slow-log-ms", flag, &mut it) {
                        telemetry.slow_log_ms = Some(parse_number("--slow-log-ms", &v?)?);
                    } else if let Some(v) = value_of("--postmortem-dir", flag, &mut it) {
                        telemetry.postmortem_dir = Some(v?);
                    } else if let Some(v) = value_of("--flight-window", flag, &mut it) {
                        telemetry.flight_window = Some(parse_number("--flight-window", &v?)?);
                    } else if let Some(v) = value_of("--mmap", flag, &mut it) {
                        let v = v?;
                        mmap = MapPolicy::parse(&v)
                            .ok_or_else(|| format!("--mmap: expected auto|on|off, got {v:?}"))?;
                    } else {
                        return Err(format!("unknown flag {flag}"));
                    }
                }
                other => rest.push(other),
            }
        }
        // Environment route override for ablation and parity harnesses
        // (`RSQ_ROUTE=general ci.sh` forces the main loop everywhere
        // without threading a flag through every script). Mirrors
        // `RSQ_BACKEND`: an explicit override with a typo fails fast.
        if let Ok(value) = std::env::var("RSQ_ROUTE") {
            options.route = match value.as_str() {
                "auto" => rsq_engine::RouteChoice::Auto,
                "general" => rsq_engine::RouteChoice::General,
                other => return Err(format!("RSQ_ROUTE: unknown route {other:?} (auto|general)")),
            };
        }
        // Hardware-counter policy override, same fail-fast contract as
        // `RSQ_ROUTE`: an explicit `RSQ_PERF` with a typo is a usage
        // error, not a silent fall-through to the default.
        let perf = match std::env::var("RSQ_PERF") {
            Ok(value) => PerfMode::parse(&value)?,
            Err(_) => PerfMode::default(),
        };
        // `--stats` is overloaded: without a query it is the document
        // statistics mode (back compat); alongside a query (or with
        // `--stats-json` or another mode flag) it requests run statistics.
        // A positional starting with `$` is unambiguously a query.
        if saw_stats
            && !saw_stats_json
            && mode == Mode::Values
            && !rest.iter().any(|a| a.starts_with('$'))
        {
            mode = Mode::Stats;
        }
        let stats = if saw_stats_json {
            Some(StatsFormat::Json)
        } else if saw_stats && mode != Mode::Stats {
            Some(StatsFormat::Human)
        } else {
            None
        };
        if stats.is_some() && matches!(mode, Mode::Stats | Mode::Compile) {
            return Err("--stats-json requires a QUERY to run".to_owned());
        }
        if (profile || metrics_out.is_some()) && matches!(mode, Mode::Stats | Mode::Compile) {
            return Err("--profile/--metrics-out require a QUERY to run".to_owned());
        }
        if threads.is_some() && batch.is_none() && serve.is_none() {
            return Err("--threads requires a batch or serve mode".to_owned());
        }
        if batch.is_some() && !matches!(mode, Mode::Values | Mode::Count | Mode::Positions) {
            return Err(
                "batch mode supports the default, --count, and --positions modes".to_owned(),
            );
        }
        if serve.is_some() {
            if batch.is_some() {
                return Err("serve and batch modes are mutually exclusive".to_owned());
            }
            if !matches!(mode, Mode::Values | Mode::Count | Mode::Positions) {
                return Err(
                    "serve mode supports the default, --count, and --positions modes".to_owned(),
                );
            }
            if profile {
                return Err("--profile is not supported in serve mode".to_owned());
            }
        }
        if max_inflight.is_some() && serve.is_none() {
            return Err("--max-inflight requires --serve or --serve-socket".to_owned());
        }
        if trace_out.is_some() && serve.is_none() && batch.is_none() {
            return Err("--trace-out requires a serve or batch mode".to_owned());
        }
        if (telemetry.enabled() || telemetry.flight_window.is_some()) && serve.is_none() {
            return Err(
                "--telemetry-socket/--slow-log-ms/--postmortem-dir/--flight-window require \
                 --serve or --serve-socket"
                    .to_owned(),
            );
        }
        if telemetry.flight_window.is_some() && telemetry.postmortem_dir.is_none() {
            return Err("--flight-window requires --postmortem-dir".to_owned());
        }
        if telemetry.flight_window == Some(0) {
            return Err("--flight-window must be at least 1".to_owned());
        }
        if max_inflight == Some(0) {
            return Err("--max-inflight must be at least 1".to_owned());
        }
        if deadline_ms.is_some() && (batch.is_some() || matches!(mode, Mode::Stats | Mode::Compile))
        {
            return Err("--deadline-ms applies to serve and single-document runs".to_owned());
        }
        let threads = threads.unwrap_or(0);
        let invocation = |mode, query: &str, file: Option<&str>| Invocation {
            mode,
            query: query.to_owned(),
            file: file.map(str::to_owned),
            options,
            stats,
            batch: batch.clone(),
            threads,
            profile,
            metrics_out: metrics_out.clone(),
            serve: serve.clone(),
            deadline_ms,
            max_inflight,
            telemetry: telemetry.clone(),
            mmap,
            perf,
            trace_out: trace_out.clone(),
        };
        if serve.is_some() {
            return match rest.as_slice() {
                [query] => Ok(invocation(mode, query, None)),
                [_, _] => Err("serve mode reads from its transport, not FILE".to_owned()),
                _ => Err("expected QUERY".to_owned()),
            };
        }
        match mode {
            Mode::Stats => match rest.as_slice() {
                [] => Ok(invocation(mode, "", None)),
                [file] => Ok(invocation(mode, "", Some(file))),
                _ => Err("--stats takes at most one FILE".to_owned()),
            },
            Mode::Compile => match rest.as_slice() {
                [query] => Ok(invocation(mode, query, None)),
                _ => Err("--compile takes exactly one QUERY".to_owned()),
            },
            _ if batch.is_some() => match rest.as_slice() {
                [query] => Ok(invocation(mode, query, None)),
                [_, _] => {
                    Err("batch mode takes its input from the batch flag, not FILE".to_owned())
                }
                _ => Err("expected QUERY".to_owned()),
            },
            _ => match rest.as_slice() {
                [query] => Ok(invocation(mode, query, None)),
                [query, file] => Ok(invocation(mode, query, Some(file))),
                _ => Err("expected QUERY [FILE]".to_owned()),
            },
        }
    }
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid number {value:?}"))
}

/// Ingests the document. File inputs are memory-mapped when the
/// `--mmap` policy allows (zero-copy: the engine reads the page cache
/// directly); the size limit is checked up front on that path, since
/// mapping a too-large file and then refusing it would waste nothing
/// but also prove nothing. Everything else — stdin, small or unmappable
/// files, `--mmap off` — goes through the engine's hardened reader:
/// chunked reads, transient-error retry, and limits enforced while
/// bytes arrive. With a `--deadline-ms` budget the ingest loop aborts
/// once the deadline passes (sources that block inside the OS need a
/// read timeout for the check to fire).
fn read_input(engine: &Engine, invocation: &Invocation) -> Result<MmapInput, CliError> {
    let file = invocation.file.as_deref();
    if let Some(path) = file {
        // Map only files the size limit admits; an oversized file falls
        // through to the reader, which rejects it with the exact error
        // the buffered path always produced.
        let fits = match invocation.options.max_document_bytes {
            Some(limit) => std::fs::metadata(path).is_ok_and(|m| m.len() <= limit as u64),
            None => true,
        };
        if fits {
            if let Some(input) = rsq_mmap::map(std::path::Path::new(path), invocation.mmap) {
                return Ok(input);
            }
        }
    }
    let deadline = invocation
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let ingest = |reader: &mut dyn Read| match deadline {
        Some(d) => engine.read_document_with_deadline(reader, d),
        None => engine.read_document(reader),
    };
    match file {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot read {path}: {e}")))?;
            ingest(&mut std::io::BufReader::new(file))
                .map(MmapInput::from_vec)
                .map_err(|e| {
                    let mut err = CliError::from(e);
                    err.message = format!("{path}: {}", err.message);
                    err
                })
        }
        None => ingest(&mut std::io::stdin().lock())
            .map(MmapInput::from_vec)
            .map_err(|e| {
                let mut err = CliError::from(e);
                err.message = format!("stdin: {}", err.message);
                err
            }),
    }
}

/// Reads input without an engine (`--stats` has no query to configure
/// one).
fn read_input_plain(file: Option<&str>) -> Result<Vec<u8>, CliError> {
    match file {
        Some(path) => std::fs::read(path)
            .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = Vec::new();
            std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut buf)
                .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot read stdin: {e}")))?;
            Ok(buf)
        }
    }
}

/// Writes one matched node as raw passthrough (DESIGN.md §15): the
/// document's own bytes go straight to the writer — no per-match UTF-8
/// validation, no intermediate `String`. Unterminated spans (truncated
/// input) render as `<malformed>`, as the text path always did.
fn write_node(out: &mut dyn Write, doc: &[u8], pos: usize) -> std::io::Result<()> {
    match node_span(doc, pos) {
        // PANIC-OK: node_span ranges are in bounds of `doc` by construction
        Some(span) => out.write_all(&doc[span])?,
        None => out.write_all(b"<malformed>")?,
    }
    out.write_all(b"\n")
}

/// [`write_node`] with the CLI's write-error classification.
fn emit_node(out: &mut dyn Write, doc: &[u8], pos: usize) -> Result<(), CliError> {
    write_node(out, doc, pos)
        .map_err(|e| CliError::new(CliErrorKind::Failure, format!("write error: {e}")))
}

fn compile(invocation: &Invocation) -> Result<Engine, CliError> {
    let query = Query::parse(&invocation.query)
        .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))?;
    Engine::with_options(&query, invocation.options)
        .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))
}

/// What a run gathered for the stderr report: nothing, Tier A counters,
/// or the full Tier C profile (which carries the counters inside).
enum EngineReport {
    Stats(RunStats),
    Profile(Box<ProfileStats>),
}

impl EngineReport {
    fn stats(&self) -> &RunStats {
        match self {
            EngineReport::Stats(stats) => stats,
            EngineReport::Profile(profile) => &profile.stats,
        }
    }

    fn profile(&self) -> Option<&ProfileStats> {
        match self {
            EngineReport::Stats(_) => None,
            EngineReport::Profile(profile) => Some(profile),
        }
    }
}

/// Runs the engine over `input` into `sink`, gathering [`RunStats`] or a
/// full [`ProfileStats`] only when requested — the plain path stays on
/// the zero-overhead entry point.
///
/// When `counters` is armed, the whole run is bracketed by one counter
/// group start/stop and the delta folds into `perf`; profiled runs
/// additionally attribute cycles and instructions per pipeline stage by
/// riding the stage-timer brackets with a [`PerfRecorder`]. An
/// unavailable counter set (denied kernel, `RSQ_PERF=off`/`deny`) makes
/// all of this a no-op with identical results.
fn run_engine<S: Sink>(
    engine: &Engine,
    input: &[u8],
    sink: &mut S,
    want_stats: bool,
    want_profile: bool,
    counters: &CounterSet,
    perf: &mut PerfStats,
) -> Result<Option<EngineReport>, RunError> {
    let group = counters.group();
    if let Some(g) = group {
        g.start();
    }
    let outcome = if want_profile {
        let mut profile = ProfileStats::for_document(input.len());
        match group {
            Some(g) => {
                let mut rec = PerfRecorder::new(&mut profile, g, perf);
                engine.try_run_with_recorder(input, sink, &mut rec)
            }
            None => engine.try_run_with_recorder(input, sink, &mut profile),
        }
        .map(|()| Some(EngineReport::Profile(Box::new(profile))))
    } else if want_stats {
        engine
            .try_run_with_stats(input, sink)
            .map(|s| Some(EngineReport::Stats(s)))
    } else {
        engine.try_run(input, sink).map(|()| None)
    };
    if let Some(delta) = group.and_then(|g| g.stop()) {
        perf.add_run(input.len() as u64, &delta);
    }
    outcome
}

/// Nanoseconds since `t0`, saturated to `u64::MAX`.
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The single-document `--stats-json` line: the [`RunStats`] JSON with a
/// leading `schema_version` field spliced in, plus a trailing `profile`
/// object when profiling was on and a `perf` object when hardware
/// counters were readable. With `--profile` off and counters denied this
/// is byte-identical to the unversioned report modulo the version field.
fn versioned_stats_json(
    stats: &RunStats,
    profile: Option<&ProfileStats>,
    perf: Option<&PerfStats>,
) -> String {
    let stats_json = stats.to_json();
    let mut s = format!(
        "{{\"schema_version\":{STATS_SCHEMA_VERSION},{}",
        // PANIC-OK: RunStats::to_json always renders a brace-wrapped object, so byte 0 exists and is `{`
        &stats_json[1..]
    );
    let mut append = |key: &str, object: String| {
        s.pop();
        s.push_str(",\"");
        s.push_str(key);
        s.push_str("\":");
        s.push_str(&object);
        s.push('}');
    };
    if let Some(p) = profile {
        append("profile", p.to_json());
    }
    if let Some(p) = perf {
        append("perf", p.to_json());
    }
    s
}

/// Executes an invocation, writing results to `out` and diagnostics
/// (run statistics) to `err`.
///
/// Results go to `out` only; `--stats`/`--stats-json` reports go to `err`
/// only, so stdout is byte-identical with and without the flags.
///
/// # Errors
///
/// Returns a classified [`CliError`] on bad queries, unreadable input,
/// tripped limits, strict-mode validation failures, or (in `--verify`
/// mode) an engine/oracle mismatch.
pub fn run(
    invocation: &Invocation,
    out: &mut (impl Write + Send),
    err: &mut (impl Write + Send),
) -> Result<(), CliError> {
    if let Some(transport) = &invocation.serve {
        return match transport {
            ServeTransport::Pipe => run_serve_pipe(invocation, std::io::stdin().lock(), out, err),
            ServeTransport::Unix(path) => run_serve_unix(invocation, path, err),
        };
    }
    let emit = |out: &mut dyn Write, text: std::fmt::Arguments<'_>| {
        writeln!(out, "{text}")
            .map_err(|e| CliError::new(CliErrorKind::Failure, format!("write error: {e}")))
    };
    // Writes the metrics exposition (when requested) and the stderr
    // stats/profile report for a finished single-document run.
    let emit_stats = |err: &mut dyn Write,
                      report: Option<EngineReport>,
                      counters: &CounterSet,
                      perf: &PerfStats|
     -> Result<(), CliError> {
        let Some(report) = report else { return Ok(()) };
        if let Some(path) = &invocation.metrics_out {
            let mut text = prometheus(report.stats(), report.profile(), None);
            if perf.docs > 0 {
                prometheus_perf_into(&mut text, perf);
            }
            std::fs::write(path, text).map_err(|e| {
                CliError::new(CliErrorKind::Io, format!("cannot write {path}: {e}"))
            })?;
        }
        // The hardware-counter block of the --profile report: the
        // counter table, or one diagnostic line saying why there isn't
        // one (denied kernel, RSQ_PERF=off/deny).
        let hw = |err: &mut dyn Write| {
            if perf.docs > 0 {
                write!(err, "{perf}")
            } else if let Some(reason) = counters.reason() {
                writeln!(err, "hw counters        unavailable: {reason}")
            } else {
                Ok(())
            }
        };
        match (&report, invocation.stats) {
            (_, Some(StatsFormat::Json)) => writeln!(
                err,
                "{}",
                versioned_stats_json(
                    report.stats(),
                    report.profile(),
                    (perf.docs > 0).then_some(perf)
                )
            ),
            (EngineReport::Profile(p), Some(StatsFormat::Human)) => {
                writeln!(err, "{p}").and_then(|()| hw(err))
            }
            (EngineReport::Profile(p), None) if invocation.profile => {
                writeln!(err, "{p}").and_then(|()| hw(err))
            }
            (EngineReport::Stats(stats), Some(StatsFormat::Human)) => write!(err, "{stats}"),
            // Stats gathered only to feed --metrics-out: nothing on stderr.
            (_, None) => Ok(()),
        }
        .map_err(|e| CliError::new(CliErrorKind::Failure, format!("write error: {e}")))
    };
    let want_profile = invocation.profile;
    let want_stats = invocation.stats.is_some() || invocation.metrics_out.is_some();
    if let Some(source) = &invocation.batch {
        return run_batch(invocation, source, out, err);
    }
    // Hardware counters ride along only when a report will surface them;
    // the plain result-only path never opens a perf fd.
    let counters = if want_stats || want_profile {
        CounterSet::open(invocation.perf)
    } else {
        CounterSet::open(PerfMode::Off)
    };
    let mut perf = PerfStats::default();
    if let Some(g) = counters.group() {
        perf.core_only = g.is_core_only();
    }
    match invocation.mode {
        Mode::Stats => {
            let input = read_input_plain(invocation.file.as_deref())?;
            let stats = rsq_json::document_stats(&input);
            emit(
                out,
                format_args!(
                    "size      {} bytes ({:.2} MB)",
                    stats.size_bytes,
                    stats.size_mb()
                ),
            )?;
            emit(out, format_args!("depth     {}", stats.max_depth))?;
            emit(out, format_args!("nodes     {}", stats.node_count))?;
            emit(
                out,
                format_args!("verbosity {:.2} bytes/node", stats.verbosity()),
            )
        }
        Mode::Compile => {
            let query = Query::parse(&invocation.query)
                .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))?;
            let automaton = rsq_query::Automaton::compile(&query)
                .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))?;
            write!(out, "{}", automaton.to_dot())
                .map_err(|e| CliError::new(CliErrorKind::Failure, format!("write error: {e}")))
        }
        Mode::Count => {
            let engine = compile(invocation)?;
            let t_ingest = want_profile.then(Instant::now);
            let input = read_input(&engine, invocation)?;
            let ingest_ns = t_ingest.map(elapsed_ns);
            let mut sink = CountSink::new();
            let mut report = run_engine(
                &engine,
                &input,
                &mut sink,
                want_stats,
                want_profile,
                &counters,
                &mut perf,
            )?;
            let t_sink = want_profile.then(Instant::now);
            emit(out, format_args!("{}", sink.count()))?;
            add_driver_stages(&mut report, ingest_ns, t_sink);
            emit_stats(err, report, &counters, &perf)
        }
        Mode::Positions => {
            let engine = compile(invocation)?;
            let t_ingest = want_profile.then(Instant::now);
            let input = read_input(&engine, invocation)?;
            let ingest_ns = t_ingest.map(elapsed_ns);
            let mut sink = PositionsSink::new();
            let mut report = run_engine(
                &engine,
                &input,
                &mut sink,
                want_stats,
                want_profile,
                &counters,
                &mut perf,
            )?;
            let t_sink = want_profile.then(Instant::now);
            for pos in sink.into_positions() {
                emit(out, format_args!("{pos}"))?;
            }
            add_driver_stages(&mut report, ingest_ns, t_sink);
            emit_stats(err, report, &counters, &perf)
        }
        Mode::Values => {
            let engine = compile(invocation)?;
            let t_ingest = want_profile.then(Instant::now);
            let input = read_input(&engine, invocation)?;
            let ingest_ns = t_ingest.map(elapsed_ns);
            let mut sink = PositionsSink::new();
            let mut report = run_engine(
                &engine,
                &input,
                &mut sink,
                want_stats,
                want_profile,
                &counters,
                &mut perf,
            )?;
            let t_sink = want_profile.then(Instant::now);
            for pos in sink.into_positions() {
                emit_node(out, &input, pos)?;
            }
            add_driver_stages(&mut report, ingest_ns, t_sink);
            emit_stats(err, report, &counters, &perf)
        }
        Mode::Verify => {
            let query = Query::parse(&invocation.query)
                .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))?;
            let engine = Engine::with_options(&query, invocation.options)
                .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))?;
            let input = read_input(&engine, invocation)?;
            let mut sink = PositionsSink::new();
            let report = run_engine(
                &engine,
                &input,
                &mut sink,
                want_stats,
                want_profile,
                &counters,
                &mut perf,
            )?;
            let streamed = sink.into_positions();
            let dom = rsq_json::parse(&input)
                .map_err(|e| CliError::new(CliErrorKind::Malformed, e.to_string()))?;
            let oracle = rsq_baselines::positions(&query, &dom);
            if streamed == oracle {
                emit(
                    out,
                    format_args!("ok: {} matches, engine and oracle agree", streamed.len()),
                )?;
                emit_stats(err, report, &counters, &perf)
            } else {
                Err(CliError::new(
                    CliErrorKind::Failure,
                    format!(
                        "MISMATCH: engine found {} matches, oracle {} (this is a bug — \
                         duplicate sibling keys? see README on sibling skipping)",
                        streamed.len(),
                        oracle.len()
                    ),
                ))
            }
        }
    }
}

/// Assembles [`ServeOptions`] from a parsed serve invocation.
fn serve_options(invocation: &Invocation) -> ServeOptions {
    ServeOptions {
        query: invocation.query.clone(),
        engine: invocation.options,
        mode: match invocation.mode {
            Mode::Count => ResponseMode::Count,
            Mode::Positions => ResponseMode::Positions,
            _ => ResponseMode::Values,
        },
        threads: invocation.threads,
        max_inflight: invocation
            .max_inflight
            .unwrap_or(ServeOptions::DEFAULT_MAX_INFLIGHT),
        deadline: invocation.deadline_ms.map(Duration::from_millis),
        collect_spans: invocation.trace_out.is_some(),
        // Counters arm only when some report will surface them — the
        // plain serve path opens no perf fds on the workers.
        perf: if invocation.stats.is_some()
            || invocation.metrics_out.is_some()
            || invocation.telemetry.enabled()
        {
            invocation.perf
        } else {
            PerfMode::Off
        },
    }
}

/// Builds the live-telemetry hub when any telemetry flag armed it.
fn telemetry_hub(invocation: &Invocation) -> Option<Arc<Telemetry>> {
    invocation
        .telemetry
        .enabled()
        .then(|| Telemetry::new(&invocation.telemetry.to_options()))
}

/// Binds the scrape socket (replacing a stale file) and answers it from
/// a background thread until the hub's listener-stop flag is raised.
fn spawn_telemetry_listener(
    hub: &Arc<Telemetry>,
    path: &str,
) -> Result<std::thread::JoinHandle<()>, CliError> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path).map_err(|e| {
        CliError::new(
            CliErrorKind::Io,
            format!("cannot bind telemetry socket {path}: {e}"),
        )
    })?;
    let hub = Arc::clone(hub);
    Ok(std::thread::spawn(move || {
        let _ = serve_telemetry_listener(&hub, &listener);
    }))
}

/// Stops and joins the scrape-listener thread, if one is running.
fn stop_telemetry_listener(
    hub: Option<&Arc<Telemetry>>,
    handle: Option<std::thread::JoinHandle<()>>,
) {
    if let Some(h) = hub {
        h.stop_listener();
    }
    if let Some(t) = handle {
        let _ = t.join();
    }
}

/// The serve-mode `--stats-json` line; with telemetry on it carries a
/// `"telemetry"` object (rolling windows, slow-log/postmortem counts)
/// next to the lifetime `"serve"` counters, and when hardware counters
/// were readable a `"perf"` object with the cycles-per-byte report.
fn serve_stats_line(
    counters: &ServeCounters,
    perf: Option<&PerfStats>,
    hub: Option<&Arc<Telemetry>>,
) -> String {
    let mut line = format!(
        "{{\"schema_version\":{STATS_SCHEMA_VERSION},\"serve\":{}",
        counters.to_json()
    );
    if let Some(p) = perf {
        line.push_str(",\"perf\":");
        line.push_str(&p.to_json());
    }
    if let Some(h) = hub {
        line.push_str(",\"telemetry\":");
        line.push_str(&h.to_json());
    }
    line.push('}');
    line
}

/// The `--metrics-out` exposition: the hub's live rendering (lifetime
/// series plus rolling windows and gauges — identical to a scrape) when
/// telemetry is on, else the report's counters.
fn serve_metrics_text(report: &ServeReport, hub: Option<&Arc<Telemetry>>) -> String {
    match hub {
        // The hub rendering already carries the folded rsq_perf_* series.
        Some(h) => h.render_metrics(),
        None => {
            let mut text = prometheus_serve(&report.counters, Some(&report.latency));
            if let Some(p) = &report.perf {
                prometheus_perf_into(&mut text, p);
            }
            text
        }
    }
}

/// Writes the serve-mode reports (`--stats`/`--stats-json` on `err`,
/// `--metrics-out` exposition including latency quantiles) and turns the
/// session outcome into the exit classification: per-document failures
/// map to the first failure's class, a lost connection to an I/O error.
fn finish_serve(
    invocation: &Invocation,
    err: &mut impl Write,
    report: &ServeReport,
    hub: Option<&Arc<Telemetry>>,
) -> Result<(), CliError> {
    if let Some(path) = &invocation.metrics_out {
        std::fs::write(path, serve_metrics_text(report, hub))
            .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = &invocation.trace_out {
        std::fs::write(path, chrome_trace_json(&report.spans))
            .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot write {path}: {e}")))?;
    }
    match invocation.stats {
        Some(StatsFormat::Json) => writeln!(
            err,
            "{}",
            serve_stats_line(&report.counters, report.perf.as_ref(), hub)
        ),
        Some(StatsFormat::Human) => writeln!(err, "{}", report.counters),
        None => Ok(()),
    }
    .map_err(|e| CliError::new(CliErrorKind::Failure, format!("write error: {e}")))?;
    if let Some(kind) = report.first_failure {
        return Err(CliError::new(
            doc_error_kind(kind),
            format!(
                "{} of {} documents failed",
                report.counters.failed_documents(),
                report.counters.documents
            ),
        ));
    }
    if !report.clean {
        return Err(CliError::new(
            CliErrorKind::Io,
            "connection lost before the stream completed",
        ));
    }
    Ok(())
}

/// Serves the pipe protocol over an arbitrary reader (stdin in the
/// binary; test harnesses substitute chaos streams): one session, then
/// the post-drain reports.
///
/// # Errors
///
/// As [`run`]: bad queries, report-write failures, and the session's
/// exit classification.
pub fn run_serve_pipe(
    invocation: &Invocation,
    reader: impl Read,
    out: &mut (impl Write + Send),
    err: &mut (impl Write + Send),
) -> Result<(), CliError> {
    let options = serve_options(invocation);
    let hub = telemetry_hub(invocation);
    let listener = match (&hub, &invocation.telemetry.socket) {
        (Some(h), Some(path)) => Some(spawn_telemetry_listener(h, path)?),
        _ => None,
    };
    let result = serve_connection_with(&options, hub.as_ref(), reader, &mut *out, &mut *err)
        .map_err(|e| CliError::new(CliErrorKind::Query, e.message));
    stop_telemetry_listener(hub.as_ref(), listener);
    let report = result?;
    finish_serve(invocation, err, &report, hub.as_ref())
}

/// Serves connections on a Unix socket. A stale socket file at `path`
/// is replaced. Reports (`--stats*`, `--metrics-out`) are refreshed
/// after every connection drains, so a long-lived server keeps its
/// metrics file current.
///
/// Without telemetry the loop runs until the process is killed, exactly
/// as before telemetry existed. With `--telemetry-socket`, `POST
/// /shutdown` on the scrape endpoint requests a graceful drain: the
/// in-progress connection finishes, no further connections are
/// accepted, `/healthz` answers `503 draining` meanwhile, and the final
/// reports (with exit classification) are written on the way out.
fn run_serve_unix(
    invocation: &Invocation,
    path: &str,
    err: &mut (impl Write + Send),
) -> Result<(), CliError> {
    let options = serve_options(invocation);
    // Compile eagerly so a bad query fails at startup, not on the first
    // connection.
    compile(invocation)?;
    let hub = telemetry_hub(invocation);
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)
        .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot bind {path}: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot configure {path}: {e}")))?;
    let telemetry_thread = match (&hub, &invocation.telemetry.socket) {
        (Some(h), Some(sock)) => Some(spawn_telemetry_listener(h, sock)?),
        _ => None,
    };
    // Without a hub there is no shutdown channel: the flag below never
    // flips and the loop runs until the process dies.
    let never = AtomicBool::new(false);
    let shutdown: &AtomicBool = hub.as_deref().map_or(&never, Telemetry::shutdown_flag);

    let mut aggregate = ServeReport::default();
    let accept_loop = |aggregate: &mut ServeReport, err: &mut dyn Write| -> Result<(), CliError> {
        while !shutdown.load(Ordering::Acquire) {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                Err(e) => {
                    return Err(CliError::new(
                        CliErrorKind::Io,
                        format!("accept on {path}: {e}"),
                    ))
                }
            };
            stream
                .set_nonblocking(false)
                .map_err(|e| CliError::new(CliErrorKind::Io, format!("socket setup: {e}")))?;
            let pair = stream
                .try_clone()
                .and_then(|o| stream.try_clone().map(|e| (o, e)));
            let (sock_out, sock_err) = match pair {
                Ok(pair) => pair,
                // The client vanished between accept and setup: count it
                // and keep serving.
                Err(_) => {
                    aggregate.counters.io_errors += 1;
                    continue;
                }
            };
            let report = serve_connection_with(&options, hub.as_ref(), &stream, sock_out, sock_err)
                .map_err(|e| CliError::new(CliErrorKind::Query, e.message))?;
            aggregate.merge(&report);
            if let Some(mpath) = &invocation.metrics_out {
                std::fs::write(mpath, serve_metrics_text(aggregate, hub.as_ref())).map_err(
                    |e| CliError::new(CliErrorKind::Io, format!("cannot write {mpath}: {e}")),
                )?;
            }
            // Like --metrics-out, the trace file is refreshed after every
            // connection so a long-lived server's timeline stays current.
            if let Some(tpath) = &invocation.trace_out {
                std::fs::write(tpath, chrome_trace_json(&aggregate.spans)).map_err(|e| {
                    CliError::new(CliErrorKind::Io, format!("cannot write {tpath}: {e}"))
                })?;
            }
            match invocation.stats {
                Some(StatsFormat::Json) => {
                    writeln!(
                        err,
                        "{}",
                        serve_stats_line(
                            &aggregate.counters,
                            aggregate.perf.as_ref(),
                            hub.as_ref()
                        )
                    )
                }
                Some(StatsFormat::Human) => writeln!(err, "{}", aggregate.counters),
                None => Ok(()),
            }
            .map_err(|e| CliError::new(CliErrorKind::Failure, format!("write error: {e}")))?;
        }
        Ok(())
    };
    let result = accept_loop(&mut aggregate, err);
    stop_telemetry_listener(hub.as_ref(), telemetry_thread);
    result?;
    // Only reachable through a graceful shutdown request: write the
    // final reports and map the session onto an exit class.
    finish_serve(invocation, err, &aggregate, hub.as_ref())
}

/// Executes a batch invocation: documents from the batch source, sharded
/// across worker threads, results printed **in input order** — stdout is
/// byte-identical to looping `rsq` over each document sequentially.
///
/// A failing document is reported on `err` (`<label>: <message>`) and
/// does not abort the batch; when any document failed, the returned error
/// carries the first failure's class so the exit code reflects it.
fn run_batch(
    invocation: &Invocation,
    source: &BatchSource,
    out: &mut impl Write,
    err: &mut impl Write,
) -> Result<(), CliError> {
    let engine = BatchEngine::new(BatchOptions {
        threads: invocation.threads,
        engine: invocation.options,
        collect_stats: invocation.stats.is_some() || invocation.metrics_out.is_some(),
        profile: invocation.profile,
        collect_spans: invocation.trace_out.is_some(),
        // As in serve mode: counters only arm when a report surfaces them.
        perf: if invocation.stats.is_some()
            || invocation.metrics_out.is_some()
            || invocation.profile
        {
            invocation.perf
        } else {
            PerfMode::Off
        },
        ..BatchOptions::default()
    });

    // Load the corpus: ingest is sequential (one disk), compute parallel.
    // Directory files honor the `--mmap` policy (large documents are
    // mapped, not copied); NDJSON lines are always buffered, since they
    // are slices of one shared read. Labels name documents in stderr
    // diagnostics: line numbers for NDJSON, file names for directories.
    let mut buffers: Vec<MmapInput> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    match source {
        BatchSource::Ndjson(path) => {
            let input = if path == "-" {
                read_input_plain(None)?
            } else {
                read_input_plain(Some(path))?
            };
            for range in rsq_batch::split_ndjson(&input) {
                labels.push(format!("document {}", labels.len() + 1));
                // PANIC-OK: split_ndjson ranges are derived from input and lie in bounds
                buffers.push(MmapInput::from_vec(input[range].to_vec()));
            }
        }
        BatchSource::Dir(path) => {
            let files = BatchEngine::load_dir_mapped(std::path::Path::new(path), invocation.mmap)
                .map_err(|e| {
                CliError::new(CliErrorKind::Io, format!("cannot read {path}: {e}"))
            })?;
            for (name, input) in files {
                labels.push(name);
                buffers.push(input);
            }
        }
    }
    let docs: Vec<&[u8]> = buffers.iter().map(MmapInput::as_bytes).collect();

    let result = engine
        .run_slices(&invocation.query, &docs)
        .map_err(|e| CliError::new(CliErrorKind::Query, e.to_string()))?;

    let mut first_failure: Option<CliErrorKind> = None;
    let mut failed = 0usize;
    for (i, outcome) in result.outcomes.iter().enumerate() {
        match outcome {
            Ok(output) => match invocation.mode {
                Mode::Count => writeln!(out, "{}", output.count),
                Mode::Positions => output
                    .positions
                    .iter()
                    .try_for_each(|pos| writeln!(out, "{pos}")),
                _ => output
                    .positions
                    .iter()
                    // PANIC-OK: one outcome per document, so i < docs.len()
                    .try_for_each(|pos| write_node(out, docs[i], *pos)),
            }
            .map_err(|e| CliError::new(CliErrorKind::Failure, format!("write error: {e}")))?,
            Err(doc_err) => {
                failed += 1;
                first_failure.get_or_insert(doc_error_kind(doc_err.kind));
                // PANIC-OK: labels grows in lockstep with the documents, so i < labels.len()
                writeln!(err, "{}: {}", labels[i], doc_err.message).map_err(|e| {
                    CliError::new(CliErrorKind::Failure, format!("write error: {e}"))
                })?;
            }
        }
    }

    if let Some(path) = &invocation.metrics_out {
        let mut text = prometheus(
            &result.stats,
            None,
            Some((&result.counters, result.profile.as_ref())),
        );
        if let Some(p) = &result.perf {
            prometheus_perf_into(&mut text, p);
        }
        std::fs::write(path, text)
            .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = &invocation.trace_out {
        std::fs::write(path, chrome_trace_json(&result.spans))
            .map_err(|e| CliError::new(CliErrorKind::Io, format!("cannot write {path}: {e}")))?;
    }
    // The hardware-counter table rides the human profile report; JSON
    // reports carry the structured "perf" object instead.
    let hw = |err: &mut dyn Write| match &result.perf {
        Some(p) => write!(err, "{p}"),
        None => Ok(()),
    };
    match invocation.stats {
        Some(StatsFormat::Json) => {
            let mut line = format!(
                "{{\"schema_version\":{STATS_SCHEMA_VERSION},\"batch\":{},\"stats\":{}",
                result.counters.to_json(),
                result.stats.to_json()
            );
            if let Some(profile) = &result.profile {
                line.push_str(",\"profile\":");
                line.push_str(&profile.to_json());
            }
            if let Some(p) = &result.perf {
                line.push_str(",\"perf\":");
                line.push_str(&p.to_json());
            }
            line.push('}');
            writeln!(err, "{line}")
        }
        Some(StatsFormat::Human) => {
            writeln!(err, "{}", result.counters).and_then(|()| match &result.profile {
                // RunStats::Display ends without a newline; terminate it
                // before the profile block.
                Some(profile) => writeln!(err, "{}", result.stats)
                    .and_then(|()| writeln!(err, "{profile}"))
                    .and_then(|()| hw(err)),
                None => write!(err, "{}", result.stats),
            })
        }
        None => match &result.profile {
            Some(profile) => writeln!(err, "{profile}").and_then(|()| hw(err)),
            None => Ok(()),
        },
    }
    .map_err(|e| CliError::new(CliErrorKind::Failure, format!("write error: {e}")))?;

    match first_failure {
        Some(kind) => Err(CliError::new(
            kind,
            format!("{failed} of {} documents failed", result.outcomes.len()),
        )),
        None => Ok(()),
    }
}

/// Folds the CLI driver's ingest and sink timings into a profiled
/// report (no-op for unprofiled runs).
fn add_driver_stages(
    report: &mut Option<EngineReport>,
    ingest_ns: Option<u64>,
    sink_start: Option<Instant>,
) {
    if let Some(EngineReport::Profile(p)) = report {
        if let Some(ns) = ingest_ns {
            p.add_stage_ns(ProfileStage::Ingest, ns);
        }
        if let Some(t0) = sink_start {
            p.add_stage_ns(ProfileStage::Sink, elapsed_ns(t0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Invocation, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Invocation::parse(&owned)
    }

    #[test]
    fn parses_modes() {
        assert_eq!(parse(&["$..a"]).unwrap().mode, Mode::Values);
        assert_eq!(parse(&["--count", "$..a"]).unwrap().mode, Mode::Count);
        assert_eq!(
            parse(&["--positions", "$..a", "f.json"])
                .unwrap()
                .file
                .as_deref(),
            Some("f.json")
        );
        assert_eq!(parse(&["--stats"]).unwrap().mode, Mode::Stats);
        assert_eq!(parse(&["--compile", "$.a"]).unwrap().mode, Mode::Compile);
        assert!(parse(&["--nope", "$..a"]).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&["a", "b", "c"]).is_err());
    }

    #[test]
    fn stats_flag_is_mode_without_query_and_report_with_one() {
        // Back compat: no query positional → document statistics mode.
        let doc_stats = parse(&["--stats", "f.json"]).unwrap();
        assert_eq!(doc_stats.mode, Mode::Stats);
        assert_eq!(doc_stats.stats, None);

        // A `$…` positional makes it the run-statistics flag.
        let run_stats = parse(&["--stats", "$..a", "f.json"]).unwrap();
        assert_eq!(run_stats.mode, Mode::Values);
        assert_eq!(run_stats.stats, Some(StatsFormat::Human));

        // So does another mode flag.
        let with_count = parse(&["--count", "--stats", "$..a"]).unwrap();
        assert_eq!(with_count.mode, Mode::Count);
        assert_eq!(with_count.stats, Some(StatsFormat::Human));

        // `--stats-json` always means run statistics; it wins over
        // `--stats` when both are given.
        let json = parse(&["--stats-json", "$..a"]).unwrap();
        assert_eq!(json.mode, Mode::Values);
        assert_eq!(json.stats, Some(StatsFormat::Json));
        let both = parse(&["--stats", "--stats-json", "$..a"]).unwrap();
        assert_eq!(both.stats, Some(StatsFormat::Json));

        // Run statistics need a run.
        assert!(parse(&["--compile", "--stats-json", "$.a"]).is_err());
    }

    #[test]
    fn parses_limit_flags() {
        let inv = parse(&[
            "--strict",
            "--max-depth",
            "64",
            "--max-bytes=1000",
            "--max-matches",
            "5",
            "$..a",
        ])
        .unwrap();
        assert!(inv.options.strict);
        assert_eq!(inv.options.max_depth, 64);
        assert_eq!(inv.options.max_document_bytes, Some(1000));
        assert_eq!(inv.options.max_matches, Some(5));
        assert!(parse(&["--max-depth", "$..a"]).is_err()); // not a number
        assert!(parse(&["--max-depth"]).is_err()); // missing value
        assert!(parse(&["--max-bytes=many", "$..a"]).is_err());
    }

    #[test]
    fn parses_mmap_policy() {
        assert_eq!(parse(&["$..a"]).unwrap().mmap, MapPolicy::Auto);
        assert_eq!(
            parse(&["--mmap", "on", "$..a"]).unwrap().mmap,
            MapPolicy::On
        );
        assert_eq!(parse(&["--mmap=off", "$..a"]).unwrap().mmap, MapPolicy::Off);
        assert_eq!(
            parse(&["--mmap=auto", "$..a"]).unwrap().mmap,
            MapPolicy::Auto
        );
        assert!(parse(&["--mmap", "sometimes", "$..a"]).is_err());
        assert!(parse(&["--mmap"]).is_err());
    }

    /// `--mmap on` and `--mmap off` must be byte-identical on stdout for
    /// every mode — the flag changes how bytes reach the engine, never
    /// what comes out.
    #[test]
    fn mmap_on_and_off_agree_everywhere() {
        // Body above AUTO_THRESHOLD would be slow to build per test run;
        // `On` maps regardless of size, which is the interesting path.
        let doc = format!(
            r#"{{"pad": "{}", "a": [1, {{"b": 2}}], "b": 3}}"#,
            "x".repeat(4096)
        );
        with_temp_file(&doc, |path| {
            for mode in [Mode::Count, Mode::Values, Mode::Positions, Mode::Verify] {
                let inv = |mmap| Invocation {
                    mode: mode.clone(),
                    query: "$..b".to_owned(),
                    file: Some(path.to_owned()),
                    options: EngineOptions::default(),
                    stats: None,
                    batch: None,
                    threads: 0,
                    profile: false,
                    metrics_out: None,
                    serve: None,
                    deadline_ms: None,
                    max_inflight: None,
                    telemetry: TelemetryConfig::default(),
                    mmap,
                    perf: PerfMode::Off,
                    trace_out: None,
                };
                let mapped = run_to_string(&inv(MapPolicy::On)).unwrap();
                let buffered = run_to_string(&inv(MapPolicy::Off)).unwrap();
                assert_eq!(mapped, buffered, "mode {mode:?}");
            }
        });
    }

    /// An oversized file is rejected with the Limit class whether or not
    /// mapping is requested (the mmap path defers to the reader's check).
    #[test]
    fn mmap_respects_max_bytes_limit() {
        with_temp_file(&format!(r#"{{"a": "{}"}}"#, "y".repeat(2048)), |path| {
            for mmap in [MapPolicy::On, MapPolicy::Off] {
                let inv = Invocation {
                    mode: Mode::Count,
                    query: "$.a".to_owned(),
                    file: Some(path.to_owned()),
                    options: EngineOptions {
                        max_document_bytes: Some(100),
                        ..EngineOptions::default()
                    },
                    stats: None,
                    batch: None,
                    threads: 0,
                    profile: false,
                    metrics_out: None,
                    serve: None,
                    deadline_ms: None,
                    max_inflight: None,
                    telemetry: TelemetryConfig::default(),
                    mmap,
                    perf: PerfMode::Off,
                    trace_out: None,
                };
                let err = run_to_string(&inv).unwrap_err();
                assert_eq!(err.kind, CliErrorKind::Limit, "policy {mmap:?}");
            }
        });
    }

    fn run_to_string(inv: &Invocation) -> Result<String, CliError> {
        let mut out = Vec::new();
        run(inv, &mut out, &mut Vec::new())?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn with_temp_file(content: &str, f: impl FnOnce(&str)) {
        let path = std::env::temp_dir().join(format!(
            "rsq-cli-test-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, content).unwrap();
        f(path.to_str().unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn count_values_positions_and_verify() {
        with_temp_file(r#"{"a": [1, {"b": 2}], "b": 3}"#, |path| {
            let inv = |mode| Invocation {
                mode,
                query: "$..b".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions::default(),
                stats: None,
                batch: None,
                threads: 0,
                profile: false,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Off,
                trace_out: None,
            };
            assert_eq!(run_to_string(&inv(Mode::Count)).unwrap(), "2\n");
            assert_eq!(run_to_string(&inv(Mode::Values)).unwrap(), "2\n3\n");
            let positions = run_to_string(&inv(Mode::Positions)).unwrap();
            assert_eq!(positions.lines().count(), 2);
            let verify = run_to_string(&inv(Mode::Verify)).unwrap();
            assert!(verify.starts_with("ok: 2 matches"));
        });
    }

    #[test]
    fn error_kinds_are_classified() {
        let bad_query = Invocation {
            mode: Mode::Count,
            query: "nope".to_owned(),
            file: None,
            options: EngineOptions::default(),
            stats: None,
            batch: None,
            threads: 0,
            profile: false,
            metrics_out: None,
            serve: None,
            deadline_ms: None,
            max_inflight: None,
            telemetry: TelemetryConfig::default(),
            mmap: MapPolicy::Auto,
            perf: PerfMode::Off,
            trace_out: None,
        };
        assert_eq!(
            run(&bad_query, &mut Vec::new(), &mut Vec::new())
                .unwrap_err()
                .kind,
            CliErrorKind::Query
        );

        let missing_file = Invocation {
            mode: Mode::Count,
            query: "$..a".to_owned(),
            file: Some("/nonexistent/rsq-test.json".to_owned()),
            options: EngineOptions::default(),
            stats: None,
            batch: None,
            threads: 0,
            profile: false,
            metrics_out: None,
            serve: None,
            deadline_ms: None,
            max_inflight: None,
            telemetry: TelemetryConfig::default(),
            mmap: MapPolicy::Auto,
            perf: PerfMode::Off,
            trace_out: None,
        };
        assert_eq!(
            run(&missing_file, &mut Vec::new(), &mut Vec::new())
                .unwrap_err()
                .kind,
            CliErrorKind::Io
        );

        with_temp_file(r#"{"a": 1, "a": 2"#, |path| {
            let strict = Invocation {
                mode: Mode::Count,
                query: "$..a".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions {
                    strict: true,
                    ..EngineOptions::default()
                },
                stats: None,
                batch: None,
                threads: 0,
                profile: false,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Off,
                trace_out: None,
            };
            assert_eq!(
                run(&strict, &mut Vec::new(), &mut Vec::new())
                    .unwrap_err()
                    .kind,
                CliErrorKind::Malformed
            );
        });

        with_temp_file(r#"{"a": 1, "b": {"a": 2}}"#, |path| {
            let limited = Invocation {
                mode: Mode::Count,
                query: "$..a".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions {
                    max_matches: Some(1),
                    ..EngineOptions::default()
                },
                stats: None,
                batch: None,
                threads: 0,
                profile: false,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Off,
                trace_out: None,
            };
            assert_eq!(
                run(&limited, &mut Vec::new(), &mut Vec::new())
                    .unwrap_err()
                    .kind,
                CliErrorKind::Limit
            );
        });
    }

    #[test]
    fn stats_mode() {
        with_temp_file(r#"{"a": [1, 2]}"#, |path| {
            let inv = Invocation {
                mode: Mode::Stats,
                query: String::new(),
                file: Some(path.to_owned()),
                options: EngineOptions::default(),
                stats: None,
                batch: None,
                threads: 0,
                profile: false,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Off,
                trace_out: None,
            };
            let out = run_to_string(&inv).unwrap();
            assert!(out.contains("nodes     4"), "{out}");
            assert!(out.contains("depth     3"), "{out}");
        });
    }

    #[test]
    fn run_stats_go_to_err_writer_only() {
        with_temp_file(r#"{"a": [1, {"b": 2}], "b": 3}"#, |path| {
            let inv = |stats| Invocation {
                mode: Mode::Count,
                query: "$..b".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions::default(),
                stats,
                batch: None,
                threads: 0,
                profile: false,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Off,
                trace_out: None,
            };
            let mut out = Vec::new();
            let mut err = Vec::new();
            run(&inv(Some(StatsFormat::Json)), &mut out, &mut err).unwrap();
            assert_eq!(out, b"2\n", "stdout is results only");
            let err = String::from_utf8(err).unwrap();
            assert_eq!(err.lines().count(), 1, "single line: {err}");
            assert!(err.contains("\"matches\":2"), "{err}");

            let mut err = Vec::new();
            run(&inv(Some(StatsFormat::Human)), &mut Vec::new(), &mut err).unwrap();
            let err = String::from_utf8(err).unwrap();
            assert!(err.contains("matches"), "{err}");

            let mut err = Vec::new();
            run(&inv(None), &mut Vec::new(), &mut err).unwrap();
            assert!(err.is_empty(), "no stats without the flag");
        });
    }

    #[test]
    fn parses_batch_flags() {
        let inv = parse(&[
            "--count",
            "--batch-ndjson",
            "corpus.ndjson",
            "--threads",
            "4",
            "$..a",
        ])
        .unwrap();
        assert_eq!(
            inv.batch,
            Some(BatchSource::Ndjson("corpus.ndjson".to_owned()))
        );
        assert_eq!(inv.threads, 4);
        assert_eq!(inv.mode, Mode::Count);

        let dir = parse(&["--batch-dir=docs/", "$..a"]).unwrap();
        assert_eq!(dir.batch, Some(BatchSource::Dir("docs/".to_owned())));
        assert_eq!(dir.threads, 0, "auto by default");

        // --threads needs a batch source; batch needs a runnable mode and
        // takes no FILE positional.
        assert!(parse(&["--threads", "4", "$..a"]).is_err());
        assert!(parse(&["--verify", "--batch-ndjson", "x", "$..a"]).is_err());
        assert!(parse(&["--batch-ndjson", "x", "$..a", "f.json"]).is_err());
        assert!(parse(&["--batch-ndjson", "x"]).is_err()); // no query
    }

    #[test]
    fn batch_ndjson_outputs_in_input_order() {
        with_temp_file(
            "{\"a\": 1}\n{\"b\": {\"a\": [2, 3]}}\n{\"c\": 0}\n",
            |path| {
                let inv = |mode| Invocation {
                    mode,
                    query: "$..a".to_owned(),
                    file: None,
                    options: EngineOptions::default(),
                    stats: None,
                    batch: Some(BatchSource::Ndjson(path.to_owned())),
                    threads: 2,
                    profile: false,
                    metrics_out: None,
                    serve: None,
                    deadline_ms: None,
                    max_inflight: None,
                    telemetry: TelemetryConfig::default(),
                    mmap: MapPolicy::Auto,
                    perf: PerfMode::Off,
                    trace_out: None,
                };
                assert_eq!(run_to_string(&inv(Mode::Count)).unwrap(), "1\n1\n0\n");
                assert_eq!(
                    run_to_string(&inv(Mode::Values)).unwrap(),
                    "1\n[2, 3]\n",
                    "values in input order, no output for the no-match doc"
                );
            },
        );
    }

    #[test]
    fn batch_reports_failures_without_aborting() {
        with_temp_file("{\"a\": 1, \"b\": {\"a\": 2}}\n{\"a\": 3}\n", |path| {
            let inv = Invocation {
                mode: Mode::Count,
                query: "$..a".to_owned(),
                file: None,
                options: EngineOptions {
                    max_matches: Some(1),
                    ..EngineOptions::default()
                },
                stats: None,
                batch: Some(BatchSource::Ndjson(path.to_owned())),
                threads: 1,
                profile: false,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Off,
                trace_out: None,
            };
            let mut out = Vec::new();
            let mut err = Vec::new();
            let failure = run(&inv, &mut out, &mut err).unwrap_err();
            assert_eq!(failure.kind, CliErrorKind::Limit);
            assert!(failure.message.contains("1 of 2 documents failed"));
            assert_eq!(out, b"1\n", "the healthy document still prints");
            let err = String::from_utf8(err).unwrap();
            assert!(err.starts_with("document 1: "), "{err}");
        });
    }

    #[test]
    fn batch_stats_json_reports_cache_and_merged_stats() {
        with_temp_file("{\"a\": 1}\n{\"a\": 2}\n", |path| {
            let inv = Invocation {
                mode: Mode::Count,
                query: "$..a".to_owned(),
                file: None,
                options: EngineOptions::default(),
                stats: Some(StatsFormat::Json),
                batch: Some(BatchSource::Ndjson(path.to_owned())),
                threads: 1,
                profile: false,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Off,
                trace_out: None,
            };
            let mut out = Vec::new();
            let mut err = Vec::new();
            run(&inv, &mut out, &mut err).unwrap();
            assert_eq!(out, b"1\n1\n");
            let err = String::from_utf8(err).unwrap();
            assert_eq!(err.lines().count(), 1, "{err}");
            assert!(err.contains("\"batch\":{\"documents\":2"), "{err}");
            assert!(err.contains("\"cache_misses\":1"), "{err}");
            assert!(err.contains("\"stats\":{"), "{err}");
            assert!(err.contains("\"matches\":2"), "{err}");
        });
    }

    #[test]
    fn batch_dir_mode_labels_errors_by_file_name() {
        let dir = std::env::temp_dir().join(format!("rsq-cli-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("1-bad.json"), b"{\"a\": 1, \"a\": 2").unwrap();
        std::fs::write(dir.join("2-good.json"), b"{\"a\": 1}").unwrap();
        let inv = Invocation {
            mode: Mode::Count,
            query: "$..a".to_owned(),
            file: None,
            options: EngineOptions {
                strict: true,
                ..EngineOptions::default()
            },
            stats: None,
            batch: Some(BatchSource::Dir(dir.to_str().unwrap().to_owned())),
            threads: 2,
            profile: false,
            metrics_out: None,
            serve: None,
            deadline_ms: None,
            max_inflight: None,
            telemetry: TelemetryConfig::default(),
            mmap: MapPolicy::Auto,
            perf: PerfMode::Off,
            trace_out: None,
        };
        let mut out = Vec::new();
        let mut err = Vec::new();
        let failure = run(&inv, &mut out, &mut err).unwrap_err();
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(failure.kind, CliErrorKind::Malformed);
        assert_eq!(out, b"1\n", "good file still counted");
        let err = String::from_utf8(err).unwrap();
        assert!(err.starts_with("1-bad.json: "), "{err}");
    }

    #[test]
    fn parses_profile_and_metrics_flags() {
        let inv = parse(&["--profile", "--stats-json", "$..a", "f.json"]).unwrap();
        assert!(inv.profile);
        assert_eq!(inv.stats, Some(StatsFormat::Json));

        let metrics = parse(&["--metrics-out", "m.prom", "$..a"]).unwrap();
        assert_eq!(metrics.metrics_out.as_deref(), Some("m.prom"));
        assert!(!metrics.profile);

        // Profiling needs a run, like --stats-json.
        assert!(parse(&["--compile", "--profile", "$.a"]).is_err());
        assert!(parse(&["--profile", "--stats", "f.json"]).is_err());
    }

    #[test]
    fn stats_json_carries_schema_version_and_profile_object() {
        with_temp_file(r#"{"a": [1, {"b": 2}], "b": 3}"#, |path| {
            let inv = |profile| Invocation {
                mode: Mode::Count,
                query: "$..b".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions::default(),
                stats: Some(StatsFormat::Json),
                batch: None,
                threads: 0,
                profile,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Off,
                trace_out: None,
            };
            let mut err = Vec::new();
            run(&inv(false), &mut Vec::new(), &mut err).unwrap();
            let plain = String::from_utf8(err).unwrap();
            assert!(plain.starts_with("{\"schema_version\":4,"), "{plain}");
            assert!(!plain.contains("\"profile\""), "{plain}");

            let mut err = Vec::new();
            run(&inv(true), &mut Vec::new(), &mut err).unwrap();
            let profiled = String::from_utf8(err).unwrap();
            assert_eq!(profiled.lines().count(), 1, "{profiled}");
            for key in [
                "\"schema_version\":4,",
                "\"profile\":{",
                "\"bytes_skipped\":{",
                "\"skip_rate_pct\":",
                "\"stages\":{",
                "\"skip_map\":{",
            ] {
                assert!(profiled.contains(key), "{key} missing from {profiled}");
            }
            // Modulo the version field and the appended profile object,
            // the profiled line still carries the identical stats body.
            let stats_body = plain
                .trim_end()
                .strip_prefix("{\"schema_version\":4,")
                .unwrap()
                .strip_suffix('}')
                .unwrap();
            assert!(profiled.contains(stats_body), "{profiled}");
        });
    }

    #[test]
    fn profile_without_stats_prints_human_table() {
        with_temp_file(r#"{"a": [1, {"b": 2}], "b": 3}"#, |path| {
            let inv = Invocation {
                mode: Mode::Count,
                query: "$..b".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions::default(),
                stats: None,
                batch: None,
                threads: 0,
                profile: true,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Off,
                trace_out: None,
            };
            let mut out = Vec::new();
            let mut err = Vec::new();
            run(&inv, &mut out, &mut err).unwrap();
            assert_eq!(out, b"2\n", "stdout unchanged by --profile");
            let err = String::from_utf8(err).unwrap();
            assert!(err.contains("bytes skipped"), "{err}");
            assert!(err.contains("skip map"), "{err}");
            assert!(err.contains("stage times (ns)"), "{err}");
        });
    }

    #[test]
    fn metrics_out_writes_prometheus_exposition() {
        with_temp_file(r#"{"a": [1, {"b": 2}], "b": 3}"#, |path| {
            let metrics_path = format!("{path}.prom");
            let inv = Invocation {
                mode: Mode::Count,
                query: "$..b".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions::default(),
                stats: None,
                batch: None,
                threads: 0,
                profile: true,
                metrics_out: Some(metrics_path.clone()),
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Off,
                trace_out: None,
            };
            let mut err = Vec::new();
            run(&inv, &mut Vec::new(), &mut err).unwrap();
            let text = std::fs::read_to_string(&metrics_path).unwrap();
            let _ = std::fs::remove_file(&metrics_path);
            assert!(text.contains("# TYPE rsq_matches_total counter"), "{text}");
            assert!(text.contains("rsq_matches_total 2"), "{text}");
            assert!(text.contains("rsq_bytes_skipped_total{"), "{text}");
        });
    }

    #[test]
    fn batch_profile_reports_latency_and_workers() {
        with_temp_file("{\"a\": 1}\n{\"b\": {\"a\": [2, 3]}}\n", |path| {
            let inv = |stats| Invocation {
                mode: Mode::Count,
                query: "$..a".to_owned(),
                file: None,
                options: EngineOptions::default(),
                stats,
                batch: Some(BatchSource::Ndjson(path.to_owned())),
                threads: 1,
                profile: true,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Off,
                trace_out: None,
            };
            let mut err = Vec::new();
            run(&inv(Some(StatsFormat::Json)), &mut Vec::new(), &mut err).unwrap();
            let json = String::from_utf8(err).unwrap();
            assert_eq!(json.lines().count(), 1, "{json}");
            for key in [
                "\"schema_version\":4,",
                "\"batch\":{",
                "\"cache_hit_ratio\":",
                "\"profile\":{",
                "\"latency\":{",
                "\"workers\":[{",
                "\"queue_wait_ns\":",
            ] {
                assert!(json.contains(key), "{key} missing from {json}");
            }

            let mut err = Vec::new();
            run(&inv(None), &mut Vec::new(), &mut err).unwrap();
            let human = String::from_utf8(err).unwrap();
            assert!(human.contains("doc latency (ns)"), "{human}");
            assert!(human.contains("worker 0"), "{human}");
        });
    }

    #[test]
    fn compile_mode_emits_dot() {
        let inv = Invocation {
            mode: Mode::Compile,
            query: "$.a..b".to_owned(),
            file: None,
            options: EngineOptions::default(),
            stats: None,
            batch: None,
            threads: 0,
            profile: false,
            metrics_out: None,
            serve: None,
            deadline_ms: None,
            max_inflight: None,
            telemetry: TelemetryConfig::default(),
            mmap: MapPolicy::Auto,
            perf: PerfMode::Off,
            trace_out: None,
        };
        let out = run_to_string(&inv).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("doublecircle"));
    }

    #[test]
    fn parses_serve_flags() {
        let inv = parse(&["--serve", "--count", "$..b"]).unwrap();
        assert_eq!(inv.serve, Some(ServeTransport::Pipe));
        assert_eq!(inv.mode, Mode::Count);
        assert_eq!(inv.file, None);

        let inv = parse(&[
            "--serve-socket=/tmp/rsq.sock",
            "--deadline-ms",
            "250",
            "--max-inflight",
            "8",
            "--threads",
            "2",
            "$..b",
        ])
        .unwrap();
        assert_eq!(
            inv.serve,
            Some(ServeTransport::Unix("/tmp/rsq.sock".to_owned()))
        );
        assert_eq!(inv.deadline_ms, Some(250));
        assert_eq!(inv.max_inflight, Some(8));
        assert_eq!(inv.threads, 2);

        // Serve reads from its transport: exactly one positional.
        assert!(parse(&["--serve", "$..b", "f.json"]).is_err());
        assert!(parse(&["--serve"]).is_err());
        // Incompatible modes and flags.
        assert!(parse(&["--serve", "--batch-ndjson", "$..b"]).is_err());
        assert!(parse(&["--serve", "--verify", "$..b"]).is_err());
        assert!(parse(&["--serve", "--profile", "$..b"]).is_err());
        // Flag dependencies and ranges.
        assert!(parse(&["--max-inflight", "4", "$..b"]).is_err());
        assert!(parse(&["--max-inflight", "0", "--serve", "$..b"]).is_err());
        assert!(parse(&["--deadline-ms", "5", "--batch-ndjson", "$..b"]).is_err());
        assert!(parse(&["--deadline-ms", "5", "--compile", "$.a"]).is_err());
        // Single-document runs may carry an ingest deadline.
        assert_eq!(
            parse(&["--deadline-ms", "5", "$..b", "f.json"])
                .unwrap()
                .deadline_ms,
            Some(5)
        );
    }

    #[test]
    fn parses_telemetry_flags() {
        let inv = parse(&[
            "--serve-socket=/tmp/rsq.sock",
            "--telemetry-socket=/tmp/rsq-telemetry.sock",
            "--slow-log-ms",
            "250",
            "--postmortem-dir",
            "/tmp/postmortems",
            "--flight-window",
            "8",
            "$..b",
        ])
        .unwrap();
        assert_eq!(
            inv.telemetry.socket.as_deref(),
            Some("/tmp/rsq-telemetry.sock")
        );
        assert_eq!(inv.telemetry.slow_log_ms, Some(250));
        assert_eq!(
            inv.telemetry.postmortem_dir.as_deref(),
            Some("/tmp/postmortems")
        );
        assert_eq!(inv.telemetry.flight_window, Some(8));
        assert!(inv.telemetry.enabled());

        let off = parse(&["--serve", "$..b"]).unwrap();
        assert!(!off.telemetry.enabled());

        // Telemetry rides on serve mode only.
        assert!(parse(&["--telemetry-socket", "/tmp/t.sock", "$..b"]).is_err());
        assert!(parse(&["--slow-log-ms", "5", "$..b"]).is_err());
        assert!(parse(&["--postmortem-dir", "/tmp/p", "--count", "$..b"]).is_err());
        // The flight window sizes the postmortem ring: pointless alone.
        assert!(parse(&["--serve", "--flight-window", "4", "$..b"]).is_err());
        assert!(parse(&[
            "--serve",
            "--postmortem-dir",
            "/tmp/p",
            "--flight-window",
            "0",
            "$..b"
        ])
        .is_err());
    }

    fn serve_invocation(mode: Mode) -> Invocation {
        Invocation {
            mode,
            query: "$..b".to_owned(),
            file: None,
            options: EngineOptions::default(),
            stats: None,
            batch: None,
            threads: 2,
            profile: false,
            metrics_out: None,
            serve: Some(ServeTransport::Pipe),
            deadline_ms: None,
            max_inflight: None,
            telemetry: TelemetryConfig::default(),
            mmap: MapPolicy::Auto,
            perf: PerfMode::Off,
            trace_out: None,
        }
    }

    const SERVE_INPUT: &[u8] = b"{\"a\": {\"b\": 1}}\n{\"b\": [1, {\"b\": 2}]}\n";

    #[test]
    fn serve_pipe_counts_and_reports_stats_json() {
        let mut inv = serve_invocation(Mode::Count);
        inv.stats = Some(StatsFormat::Json);
        let mut out = Vec::new();
        let mut err = Vec::new();
        run_serve_pipe(&inv, SERVE_INPUT, &mut out, &mut err).unwrap();
        assert_eq!(out, b"1\n2\n");
        let stderr = String::from_utf8(err).unwrap();
        assert!(stderr.contains("\"serve\":{"), "{stderr}");
        assert!(stderr.contains("\"documents\":2"), "{stderr}");
        assert!(stderr.contains("\"responses_ok\":2"), "{stderr}");
    }

    #[test]
    fn serve_pipe_writes_metrics_exposition() {
        with_temp_file("", |path| {
            let mut inv = serve_invocation(Mode::Count);
            inv.metrics_out = Some(path.to_owned());
            let mut out = Vec::new();
            run_serve_pipe(&inv, SERVE_INPUT, &mut out, &mut Vec::new()).unwrap();
            let text = std::fs::read_to_string(path).unwrap();
            assert!(text.contains("rsq_serve_documents_total 2"), "{text}");
            assert!(
                text.contains("rsq_serve_document_latency_ns{quantile=\"0.99\"}"),
                "{text}"
            );
        });
    }

    #[test]
    fn serve_deadline_classifies_as_deadline_exit() {
        let mut inv = serve_invocation(Mode::Count);
        inv.deadline_ms = Some(0);
        let mut out = Vec::new();
        let mut err = Vec::new();
        let error = run_serve_pipe(&inv, SERVE_INPUT, &mut out, &mut err).unwrap_err();
        assert_eq!(error.kind, CliErrorKind::Deadline);
        assert_eq!(error.kind.exit_code(), 7);
        assert!(error.to_string().contains("2 of 2 documents failed"));
        assert!(out.is_empty());
        let stderr = String::from_utf8(err).unwrap();
        assert!(stderr.contains("[timeout]"), "{stderr}");
    }

    #[test]
    fn serve_limit_errors_answer_the_rest_and_set_exit_class() {
        let mut inv = serve_invocation(Mode::Count);
        inv.options.max_matches = Some(1);
        let mut out = Vec::new();
        let mut err = Vec::new();
        let error = run_serve_pipe(&inv, SERVE_INPUT, &mut out, &mut err).unwrap_err();
        assert_eq!(error.kind, CliErrorKind::Limit);
        // Document 1 (one match) still answers; document 2 trips the cap.
        assert_eq!(out, b"1\n");
        let stderr = String::from_utf8(err).unwrap();
        assert!(stderr.contains("document 2:"), "{stderr}");
        assert!(stderr.contains("[limit:matches]"), "{stderr}");
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "rsq-cli-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    /// Connects to a Unix socket, retrying while the server starts up.
    fn poll_connect(path: &std::path::Path) -> std::os::unix::net::UnixStream {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match std::os::unix::net::UnixStream::connect(path) {
                Ok(s) => return s,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("cannot connect to {}: {e}", path.display()),
            }
        }
    }

    /// One minimal HTTP GET against the telemetry socket.
    fn http_get(path: &std::path::Path, target: &str) -> String {
        let mut stream = poll_connect(path);
        stream
            .write_all(format!("GET {target} HTTP/1.0\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serve_pipe_telemetry_reports_postmortems_and_stats_json_object() {
        let dir = temp_path("pm");
        let _ = std::fs::remove_dir_all(&dir);
        let mut inv = serve_invocation(Mode::Count);
        inv.stats = Some(StatsFormat::Json);
        inv.deadline_ms = Some(0);
        inv.telemetry.postmortem_dir = Some(dir.to_str().unwrap().to_owned());
        inv.telemetry.flight_window = Some(4);
        let mut out = Vec::new();
        let mut err = Vec::new();
        let error = run_serve_pipe(&inv, SERVE_INPUT, &mut out, &mut err).unwrap_err();
        assert_eq!(error.kind, CliErrorKind::Deadline);
        let stderr = String::from_utf8(err).unwrap();
        assert!(stderr.contains("\"telemetry\":{"), "{stderr}");
        assert!(stderr.contains("\"postmortems\":2"), "{stderr}");
        assert!(stderr.contains("\"window_10s\":"), "{stderr}");
        let dumped = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(dumped, 2, "one postmortem per timed-out document");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_unix_scrapes_live_and_drains_gracefully_on_shutdown() {
        let serve_sock = temp_path("serve.sock");
        let tele_sock = temp_path("tele.sock");
        let metrics_path = temp_path("metrics.prom");
        let mut inv = serve_invocation(Mode::Count);
        inv.serve = Some(ServeTransport::Unix(
            serve_sock.to_str().unwrap().to_owned(),
        ));
        inv.metrics_out = Some(metrics_path.to_str().unwrap().to_owned());
        inv.telemetry.socket = Some(tele_sock.to_str().unwrap().to_owned());
        let server = std::thread::spawn({
            let inv = inv.clone();
            let serve_sock = serve_sock.clone();
            move || {
                let mut err = Vec::new();
                let result = run_serve_unix(&inv, serve_sock.to_str().unwrap(), &mut err);
                (result, err)
            }
        });

        // While serving: send documents and scrape until they show up.
        let mut conn = poll_connect(&serve_sock);
        conn.write_all(SERVE_INPUT).unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut answers = String::new();
        conn.read_to_string(&mut answers).unwrap();
        assert_eq!(answers, "1\n2\n");
        drop(conn);
        let deadline = Instant::now() + Duration::from_secs(5);
        let scrape = loop {
            let scrape = http_get(&tele_sock, "/metrics");
            if scrape.contains("rsq_serve_documents_total 2") || Instant::now() >= deadline {
                break scrape;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(scrape.starts_with("HTTP/1.0 200"), "{scrape}");
        assert!(scrape.contains("rsq_serve_documents_total 2"), "{scrape}");
        assert!(
            scrape.contains("rsq_window_documents{window=\"10s\"}"),
            "{scrape}"
        );
        assert!(scrape.contains("rsq_queue_depth 0"), "{scrape}");
        let body = scrape.split("\r\n\r\n").nth(1).unwrap();
        rsq_obs::expo::check(body).expect("scrape passes the exposition lint");
        assert!(http_get(&tele_sock, "/healthz").starts_with("HTTP/1.0 200"));

        // Graceful drain: /shutdown flips /healthz and ends the loop.
        let shutdown = http_get(&tele_sock, "/shutdown");
        assert!(shutdown.contains("draining"), "{shutdown}");
        let (result, err) = server.join().unwrap();
        result.expect("graceful shutdown exits cleanly");
        assert!(err.is_empty(), "no --stats: nothing on stderr");
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("rsq_serve_documents_total 2"), "{metrics}");
        for p in [&serve_sock, &tele_sock, &metrics_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn parses_trace_out_flag() {
        let serve = parse(&["--serve", "--trace-out", "t.json", "$..b"]).unwrap();
        assert_eq!(serve.trace_out.as_deref(), Some("t.json"));
        let batch = parse(&["--batch-ndjson", "x", "--trace-out=t.json", "$..b"]).unwrap();
        assert_eq!(batch.trace_out.as_deref(), Some("t.json"));
        // The timeline exists only where a worker pipeline does.
        assert!(parse(&["--trace-out", "t.json", "$..b"]).is_err());
        assert!(parse(&["--trace-out", "t.json", "$..b", "f.json"]).is_err());
        assert!(parse(&["--trace-out"]).is_err());
    }

    /// Forced denial (`RSQ_PERF=deny`) and `off` must be observably
    /// identical to a kernel that refuses `perf_event_open`: same
    /// stdout, same exit class, and a stats JSON without a `"perf"`
    /// object. `Auto` may add the object on capable hosts but must
    /// never change stdout.
    #[test]
    fn perf_denial_changes_no_output() {
        with_temp_file(r#"{"a": [1, {"b": 2}], "b": 3}"#, |path| {
            let inv = |perf| Invocation {
                mode: Mode::Count,
                query: "$..b".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions::default(),
                stats: Some(StatsFormat::Json),
                batch: None,
                threads: 0,
                profile: false,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf,
                trace_out: None,
            };
            let capture = |perf| {
                let mut out = Vec::new();
                let mut err = Vec::new();
                run(&inv(perf), &mut out, &mut err).unwrap();
                (out, String::from_utf8(err).unwrap())
            };
            let (out_off, err_off) = capture(PerfMode::Off);
            let (out_deny, err_deny) = capture(PerfMode::Deny);
            let (out_auto, err_auto) = capture(PerfMode::Auto);
            assert_eq!(out_off, b"2\n");
            assert_eq!(out_off, out_deny);
            assert_eq!(out_off, out_auto);
            assert_eq!(err_off, err_deny, "denial modes agree byte-for-byte");
            assert!(!err_deny.contains("\"perf\""), "{err_deny}");
            assert!(err_auto.starts_with("{\"schema_version\":4,"), "{err_auto}");
            // Auto either matches the denied report exactly (denied
            // host) or adds only the trailing "perf" object.
            if err_auto != err_off {
                assert!(err_auto.contains(",\"perf\":{\"core_only\":"), "{err_auto}");
                let stats_body = err_off
                    .trim_end()
                    .strip_prefix('{')
                    .unwrap()
                    .strip_suffix('}')
                    .unwrap();
                assert!(err_auto.contains(stats_body), "{err_auto}");
            }
        });
    }

    /// `--profile` reports why counters are missing instead of silently
    /// dropping the block.
    #[test]
    fn profile_reports_counter_denial_reason() {
        with_temp_file(r#"{"a": 1}"#, |path| {
            let inv = Invocation {
                mode: Mode::Count,
                query: "$.a".to_owned(),
                file: Some(path.to_owned()),
                options: EngineOptions::default(),
                stats: None,
                batch: None,
                threads: 0,
                profile: true,
                metrics_out: None,
                serve: None,
                deadline_ms: None,
                max_inflight: None,
                telemetry: TelemetryConfig::default(),
                mmap: MapPolicy::Auto,
                perf: PerfMode::Deny,
                trace_out: None,
            };
            let mut out = Vec::new();
            let mut err = Vec::new();
            run(&inv, &mut out, &mut err).unwrap();
            assert_eq!(out, b"1\n", "stdout untouched");
            let err = String::from_utf8(err).unwrap();
            assert!(
                err.contains("hw counters        unavailable: RSQ_PERF=deny:"),
                "{err}"
            );
        });
    }

    #[test]
    fn batch_trace_out_writes_a_complete_timeline() {
        with_temp_file(
            "{\"a\": 1}\n{\"b\": {\"a\": [2, 3]}}\n{\"c\": 0}\n",
            |path| {
                let trace_path = format!("{path}.trace.json");
                let inv = Invocation {
                    mode: Mode::Count,
                    query: "$..a".to_owned(),
                    file: None,
                    options: EngineOptions::default(),
                    stats: None,
                    batch: Some(BatchSource::Ndjson(path.to_owned())),
                    threads: 2,
                    profile: false,
                    metrics_out: None,
                    serve: None,
                    deadline_ms: None,
                    max_inflight: None,
                    telemetry: TelemetryConfig::default(),
                    mmap: MapPolicy::Auto,
                    perf: PerfMode::Off,
                    trace_out: Some(trace_path.clone()),
                };
                let stdout = run_to_string(&inv).unwrap();
                assert_eq!(stdout, "1\n1\n0\n", "stdout unchanged by --trace-out");
                let trace = std::fs::read_to_string(&trace_path).unwrap();
                let _ = std::fs::remove_file(&trace_path);
                assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
                assert!(trace.ends_with("]}"), "{trace}");
                // One doc slice plus four phase slices per document, all
                // complete events — Perfetto opens this directly.
                assert_eq!(trace.matches("\"ph\":\"X\"").count(), 3 * 5, "{trace}");
                assert!(trace.contains("\"thread_name\""), "{trace}");
                assert!(trace.contains("\"name\":\"doc 0 ["), "{trace}");
                assert_eq!(
                    trace.matches('{').count(),
                    trace.matches('}').count(),
                    "balanced JSON: {trace}"
                );
            },
        );
    }

    #[test]
    fn serve_trace_out_writes_a_complete_timeline() {
        with_temp_file("", |path| {
            let mut inv = serve_invocation(Mode::Count);
            inv.trace_out = Some(path.to_owned());
            let mut out = Vec::new();
            run_serve_pipe(&inv, SERVE_INPUT, &mut out, &mut Vec::new()).unwrap();
            assert_eq!(out, b"1\n2\n");
            let trace = std::fs::read_to_string(path).unwrap();
            assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
            assert_eq!(trace.matches("\"ph\":\"X\"").count(), 2 * 5, "{trace}");
            assert!(trace.contains("\"queue-wait\""), "{trace}");
            assert!(trace.contains("\"reorder-wait\""), "{trace}");
        });
    }
}
