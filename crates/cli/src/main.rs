//! `rsq` — command-line streaming JSONPath.
//!
//! ```text
//! rsq QUERY [FILE]              print every matched node (stdin if no FILE)
//! rsq --count QUERY [FILE]      print only the number of matches
//! rsq --positions QUERY [FILE]  print byte offsets, one per line
//! rsq --verify QUERY [FILE]     also evaluate on a DOM oracle and compare
//! rsq --stats [FILE]            document statistics (size/depth/verbosity)
//! rsq --compile QUERY           dump the query automaton in Graphviz DOT
//! ```

use rsq_cli::{run, Invocation};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match Invocation::parse(&args) {
        Ok(inv) => inv,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("{}", rsq_cli::USAGE);
            return ExitCode::from(2);
        }
    };
    match run(&invocation, &mut std::io::stdout().lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("rsq: {message}");
            ExitCode::FAILURE
        }
    }
}
