//! `rsq` — command-line streaming JSONPath.
//!
//! ```text
//! rsq QUERY [FILE]              print every matched node (stdin if no FILE)
//! rsq --count QUERY [FILE]      print only the number of matches
//! rsq --positions QUERY [FILE]  print byte offsets, one per line
//! rsq --verify QUERY [FILE]     also evaluate on a DOM oracle and compare
//! rsq --stats [FILE]            document statistics (size/depth/verbosity)
//! rsq --compile QUERY           dump the query automaton in Graphviz DOT
//! ```
//!
//! Hardening flags: `--strict`, `--max-depth N`, `--max-bytes N`,
//! `--max-matches N`. Stdin is consumed in chunks with limits enforced
//! while bytes arrive. Diagnostics go to stderr only; the exit code
//! identifies the failure class (see `--help`).

use rsq_cli::{run, Invocation};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match Invocation::parse(&args) {
        Ok(inv) => inv,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("{}", rsq_cli::USAGE);
            return ExitCode::from(2);
        }
    };
    // Unlocked handles: serve mode hands the writers to an emitter
    // thread, and the lock guards are not `Send`. `Stdout`/`Stderr`
    // lock per write, which every mode's line-at-a-time output is
    // already sized for.
    match run(&invocation, &mut std::io::stdout(), &mut std::io::stderr()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("rsq: {error}");
            ExitCode::from(error.kind.exit_code())
        }
    }
}
