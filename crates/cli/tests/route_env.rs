//! The `RSQ_ROUTE` environment override (DESIGN.md §15): parity and
//! ablation harnesses force the general main loop across whole CLI
//! invocations without threading a flag through every script.
//!
//! Environment variables are process-global, so everything lives in one
//! test function — this file is its own test binary and the mutations
//! cannot race the unit tests in `src/lib.rs`.

use rsq_cli::Invocation;
use rsq_engine::RouteChoice;

fn parse(args: &[&str]) -> Result<Invocation, String> {
    let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    Invocation::parse(&owned)
}

#[test]
fn rsq_route_env_forces_the_general_route() {
    // No override: the default routes automatically.
    std::env::remove_var("RSQ_ROUTE");
    assert_eq!(
        parse(&["$.a.b"]).unwrap().options.route,
        RouteChoice::Auto,
        "no env → Auto"
    );

    std::env::set_var("RSQ_ROUTE", "general");
    assert_eq!(
        parse(&["$.a.b"]).unwrap().options.route,
        RouteChoice::General,
        "RSQ_ROUTE=general forces the main loop"
    );
    // The override flows into batch invocations too (that is the point:
    // ci.sh diffs whole catalog runs under it).
    assert_eq!(
        parse(&["--batch-ndjson", "docs.ndjson", "$.a.b"])
            .unwrap()
            .options
            .route,
        RouteChoice::General
    );

    std::env::set_var("RSQ_ROUTE", "auto");
    assert_eq!(parse(&["$.a.b"]).unwrap().options.route, RouteChoice::Auto);

    // A typo fails fast instead of silently auto-routing (mirrors
    // RSQ_BACKEND).
    std::env::set_var("RSQ_ROUTE", "fastest");
    let err = parse(&["$.a.b"]).unwrap_err();
    assert!(err.contains("RSQ_ROUTE"), "{err}");

    std::env::remove_var("RSQ_ROUTE");
}
