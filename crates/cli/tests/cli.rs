//! End-to-end tests of the `rsq` binary: exit codes per failure class,
//! stderr-only diagnostics, and chunked stdin consumption.

use std::io::Write;
use std::process::{Command, Output, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_rsq");

fn rsq(args: &[&str], stdin: Option<&[u8]>) -> Output {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(if stdin.is_some() {
            Stdio::piped()
        } else {
            Stdio::null()
        })
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    if let Some(bytes) = stdin {
        // Feed the document in small fragments so the reader sees many
        // short reads rather than one big one. The child may exit before
        // draining stdin (bad query, tripped limit) — a broken pipe here
        // is expected, not a test failure.
        let mut pipe = child.stdin.take().expect("stdin piped");
        for chunk in bytes.chunks(7) {
            if pipe.write_all(chunk).and_then(|()| pipe.flush()).is_err() {
                break;
            }
        }
        drop(pipe);
    }
    child.wait_with_output().expect("binary exits")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("utf-8 stderr")
}

const DOC: &[u8] = br#"{"a": [1, {"b": 2}], "b": 3}"#;

#[test]
fn matches_from_chunked_stdin() {
    let out = rsq(&["--count", "$..b"], Some(DOC));
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out), "2\n");

    let out = rsq(&["$..b"], Some(DOC));
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stdout(&out), "2\n3\n");
}

#[test]
fn usage_errors_exit_2() {
    let out = rsq(&["--nope", "$..a"], None);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
    assert!(stdout(&out).is_empty(), "diagnostics must not reach stdout");
}

#[test]
fn bad_query_exits_3() {
    let out = rsq(&["--count", "definitely not jsonpath"], Some(DOC));
    assert_eq!(out.status.code(), Some(3));
    assert!(stdout(&out).is_empty());
    assert!(!stderr(&out).is_empty());
}

#[test]
fn unreadable_input_exits_4() {
    let out = rsq(&["--count", "$..a", "/nonexistent/rsq-it.json"], None);
    assert_eq!(out.status.code(), Some(4));
    assert!(stdout(&out).is_empty());
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn tripped_limit_exits_5() {
    let out = rsq(&["--count", "--max-matches", "1", "$..b"], Some(DOC));
    assert_eq!(out.status.code(), Some(5), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("limit"));

    let out = rsq(&["--count", "--max-bytes", "10", "$..b"], Some(DOC));
    assert_eq!(out.status.code(), Some(5));

    let out = rsq(&["--count", "--max-depth", "1", "$..b"], Some(DOC));
    assert_eq!(out.status.code(), Some(5));
}

#[test]
fn strict_mode_rejects_malformed_with_6() {
    let out = rsq(&["--count", "--strict", "$..b"], Some(br#"{"a": [1, 2}"#));
    assert_eq!(out.status.code(), Some(6), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("malformed"));
    assert!(stdout(&out).is_empty());

    // The same document passes without --strict (lenient best-effort).
    let out = rsq(&["--count", "$..b"], Some(br#"{"a": [1, 2}"#));
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
}

#[test]
fn strict_well_formed_still_matches() {
    let out = rsq(&["--count", "--strict", "$..b"], Some(DOC));
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out), "2\n");
}

#[test]
fn stats_json_goes_to_stderr_and_leaves_stdout_identical() {
    let plain = rsq(&["$..b"], Some(DOC));
    let with_stats = rsq(&["--stats-json", "$..b"], Some(DOC));
    assert_eq!(with_stats.status.code(), Some(0));
    // Stdout must be byte-identical to a run without the flag.
    assert_eq!(with_stats.stdout, plain.stdout);

    // Stderr carries exactly one line of valid JSON with the stable keys.
    let err = stderr(&with_stats);
    assert_eq!(err.lines().count(), 1, "single-line JSON: {err}");
    let parsed = rsq_json::parse(err.trim().as_bytes()).expect("valid JSON");
    let text = format!("{parsed:?}");
    for key in [
        "bytes",
        "blocks_classified",
        "skips",
        "leaf",
        "child",
        "sibling",
        "label",
        "memmem_jumps",
        "matches",
    ] {
        assert!(text.contains(key), "missing key {key} in {err}");
    }
}

#[test]
fn stats_table_goes_to_stderr() {
    let out = rsq(&["--count", "--stats", "$..b"], Some(DOC));
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out), "2\n", "results stay on stdout");
    let err = stderr(&out);
    assert!(err.contains("bytes"), "table on stderr: {err}");
    assert!(err.contains("matches"), "table on stderr: {err}");
}

const NDJSON: &[u8] = b"{\"a\": 1, \"b\": {\"a\": 2}}\n{\"c\": 0}\n{\"a\": [3, {\"a\": 4}]}\n";

fn with_temp_ndjson(f: impl FnOnce(&str)) {
    let path = std::env::temp_dir().join(format!(
        "rsq-e2e-batch-{}-{:?}.ndjson",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, NDJSON).unwrap();
    f(path.to_str().unwrap());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn batch_ndjson_matches_sequential_loop_across_thread_counts() {
    with_temp_ndjson(|path| {
        // Expected stdout: each line run through rsq individually.
        let mut expected = String::new();
        for line in NDJSON.split(|&b| b == b'\n') {
            if line.is_empty() {
                continue;
            }
            let one = rsq(&["--count", "$..a"], Some(line));
            assert_eq!(one.status.code(), Some(0));
            expected.push_str(&stdout(&one));
        }
        for threads in ["1", "2", "8"] {
            let out = rsq(
                &[
                    "--count",
                    "--batch-ndjson",
                    path,
                    "--threads",
                    threads,
                    "$..a",
                ],
                None,
            );
            assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
            assert_eq!(stdout(&out), expected, "threads={threads}");
        }
    });
}

#[test]
fn batch_stats_json_exposes_cache_counters() {
    with_temp_ndjson(|path| {
        let out = rsq(
            &["--count", "--stats-json", "--batch-ndjson", path, "$..a"],
            None,
        );
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
        let err = stderr(&out);
        assert_eq!(err.lines().count(), 1, "single-line JSON: {err}");
        let parsed = rsq_json::parse(err.trim().as_bytes()).expect("valid JSON");
        let text = format!("{parsed:?}");
        for key in [
            "batch",
            "documents",
            "cache_hits",
            "cache_misses",
            "stats",
            "matches",
        ] {
            assert!(text.contains(key), "missing key {key} in {err}");
        }
    });
}

#[test]
fn batch_failing_document_reports_but_does_not_abort() {
    with_temp_ndjson(|path| {
        let out = rsq(
            &[
                "--count",
                "--max-matches",
                "1",
                "--batch-ndjson",
                path,
                "$..a",
            ],
            None,
        );
        // Docs 1 and 3 trip the 1-match limit; doc 2 still prints its 0.
        assert_eq!(out.status.code(), Some(5), "stderr: {}", stderr(&out));
        assert_eq!(stdout(&out), "0\n");
        let err = stderr(&out);
        assert!(err.contains("document 1: "), "{err}");
        assert!(err.contains("document 3: "), "{err}");
        assert!(err.contains("2 of 3 documents failed"), "{err}");
    });
}

#[test]
fn stats_does_not_corrupt_count_exit_codes() {
    // A tripped limit must still exit 5, with no stats report (the run
    // failed) and nothing extra on stdout.
    let out = rsq(
        &["--count", "--stats-json", "--max-matches", "1", "$..b"],
        Some(DOC),
    );
    assert_eq!(out.status.code(), Some(5), "stderr: {}", stderr(&out));
    assert!(stdout(&out).is_empty());
    assert!(!stderr(&out).contains("blocks_classified"));

    // Legacy document-statistics mode is untouched by the overload.
    let out = rsq(&["--stats"], Some(DOC));
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("nodes"));
}
