//! Batch determinism under the `RSQ_BACKEND` environment override.
//!
//! The override is read once per process, so this test lives in its own
//! integration-test binary: it sets the variable before anything latches
//! the detection result, then asserts that a multi-threaded batch run on
//! the forced portable backend is byte-identical to a sequential loop
//! (which latches the same override — the point is that sharding adds no
//! divergence on top of whatever backend the process runs).

use rsq_batch::{BatchEngine, BatchOptions};
use rsq_engine::Engine;
use rsq_simd::{BackendKind, Simd};

#[test]
fn batch_is_deterministic_under_env_override() {
    // Latch the override before the first `detect()` in this process.
    std::env::set_var("RSQ_BACKEND", "swar");
    assert_eq!(Simd::detect().kind(), BackendKind::Swar);

    let docs: Vec<&[u8]> = vec![
        br#"{"a": 1, "b": {"a": [2, {"a": 3}]}}"#,
        br#"[{"a": "x"}, {"c": 0}]"#,
        br#"{"deep": {"deep": {"a": true}}}"#,
        br#"{}"#,
    ];
    let engine = Engine::from_text("$..a").unwrap();
    let expected: Vec<Vec<usize>> = docs
        .iter()
        .map(|doc| engine.try_positions(doc).unwrap())
        .collect();

    for threads in [1, 2, 8] {
        let batch = BatchEngine::new(BatchOptions {
            threads,
            ..BatchOptions::default()
        });
        let result = batch.run_slices("$..a", &docs).unwrap();
        for (i, (got, want)) in result.outcomes.iter().zip(&expected).enumerate() {
            assert_eq!(
                &got.as_ref().unwrap().positions,
                want,
                "doc {i} diverged under RSQ_BACKEND=swar, threads={threads}"
            );
        }
    }
}
