//! Batch determinism: for any thread count, any chunk size, and any
//! backend, `BatchEngine` output must be byte-identical to a sequential
//! `Engine` loop over the same documents. This is the batch layer's
//! contract — parallelism is an implementation detail the results must
//! not leak.

use rsq_batch::{BatchEngine, BatchOptions, DocOutput};
use rsq_engine::{Engine, EngineOptions};
use rsq_query::Query;
use rsq_simd::BackendKind;

/// A corpus mixing the difftest seed documents with handwritten shapes
/// that exercise matches, empties, deep nesting, and arrays.
fn corpus() -> Vec<Vec<u8>> {
    let mut docs: Vec<Vec<u8>> = rsq_difftest::load_corpus(rsq_difftest::Target::Engine)
        .into_iter()
        .map(|(_, bytes)| bytes)
        .collect();
    docs.extend(
        [
            &br#"{"a": 1}"#[..],
            br#"{"a": {"a": {"a": {"a": 1}}}}"#,
            br#"[{"a": 1}, {"b": {"a": 2}}, [3, [4, {"a": 5}]]]"#,
            br#"{}"#,
            br#"[]"#,
            br#"{"x": [1, 2, 3], "a": "no {braces} here"}"#,
            br#"{"products": [{"id": 1, "categoryPath": [{"id": 7}]}]}"#,
        ]
        .iter()
        .map(|d| d.to_vec()),
    );
    // Replicate so the corpus is larger than any chunk, forcing several
    // queue claims per worker.
    let base = docs.clone();
    for _ in 0..3 {
        docs.extend(base.iter().cloned());
    }
    docs
}

/// The expected outcome list: a plain sequential loop with a fresh
/// single-document engine.
fn sequential(query: &str, options: EngineOptions, docs: &[&[u8]]) -> Vec<Option<DocOutput>> {
    let parsed = Query::parse(query).unwrap();
    let engine = Engine::with_options(&parsed, options).unwrap();
    docs.iter()
        .map(|doc| {
            engine.try_positions(doc).ok().map(|positions| DocOutput {
                count: positions.len() as u64,
                positions,
            })
        })
        .collect()
}

/// Asserts batch output equals the sequential loop for every thread
/// count and a couple of chunk grains.
fn assert_deterministic(query: &str, options: EngineOptions) {
    let docs = corpus();
    let doc_refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
    let expected = sequential(query, options, &doc_refs);
    for threads in [1, 2, 8] {
        for chunk_docs in [0, 1, 5] {
            let batch = BatchEngine::new(BatchOptions {
                threads,
                chunk_docs,
                engine: options,
                ..BatchOptions::default()
            });
            let result = batch.run_slices(query, &doc_refs).unwrap();
            assert_eq!(result.outcomes.len(), expected.len());
            for (i, (got, want)) in result.outcomes.iter().zip(&expected).enumerate() {
                match (got, want) {
                    (Ok(g), Some(w)) => assert_eq!(
                        g, w,
                        "doc {i} diverged ({query}, threads={threads}, chunk={chunk_docs})"
                    ),
                    (Err(_), None) => {}
                    (got, want) => panic!(
                        "doc {i} outcome class diverged ({query}, threads={threads}, \
                         chunk={chunk_docs}): batch={got:?} sequential={want:?}"
                    ),
                }
            }
            assert_eq!(result.counters.documents, doc_refs.len() as u64);
            assert!(result.counters.shards >= 1 && result.counters.shards <= threads as u64);
        }
    }
}

#[test]
fn determinism_across_threads_default_backend() {
    for query in ["$..a", "$.a", "$..*", "$.products.*.categoryPath.*.id"] {
        assert_deterministic(query, EngineOptions::default());
    }
}

#[test]
fn determinism_swar_backend() {
    let options = EngineOptions {
        backend: Some(BackendKind::Swar),
        ..EngineOptions::default()
    };
    assert_deterministic("$..a", options);
}

#[test]
fn determinism_avx2_backend_when_supported() {
    if !rsq_difftest::supported(BackendKind::Avx2) {
        eprintln!("skipping: AVX2 not supported on this host");
        return;
    }
    let options = EngineOptions {
        backend: Some(BackendKind::Avx2),
        ..EngineOptions::default()
    };
    assert_deterministic("$..a", options);
}

#[test]
fn ndjson_batch_matches_sequential() {
    // Build an NDJSON corpus out of single-line documents, including one
    // with an escaped-newline string that must not split.
    let lines: Vec<&[u8]> = vec![
        br#"{"a": 1}"#,
        br#"{"b": {"a": 2}, "s": "newline \n inside"}"#,
        br#"[{"a": 3}, 4]"#,
        br#"{"nope": 0}"#,
    ];
    let mut input = Vec::new();
    for line in &lines {
        input.extend_from_slice(line);
        input.push(b'\n');
    }
    let expected = sequential("$..a", EngineOptions::default(), &lines);
    for threads in [1, 2, 8] {
        let batch = BatchEngine::new(BatchOptions {
            threads,
            ..BatchOptions::default()
        });
        let (ranges, result) = batch.run_ndjson("$..a", &input).unwrap();
        assert_eq!(ranges.len(), lines.len());
        for (i, range) in ranges.iter().enumerate() {
            assert_eq!(&input[range.clone()], lines[i], "line {i} range drifted");
        }
        for (i, (got, want)) in result.outcomes.iter().zip(&expected).enumerate() {
            assert_eq!(
                got.as_ref().ok(),
                want.as_ref(),
                "doc {i}, threads={threads}"
            );
        }
    }
}

#[test]
fn merged_stats_match_sequential_totals() {
    let docs = corpus();
    let doc_refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
    let engine = Engine::from_text("$..a").unwrap();
    let mut expected = rsq_engine::RunStats::default();
    for doc in &doc_refs {
        let mut sink = Vec::new();
        if let Ok(stats) = engine.try_run_with_stats(doc, &mut sink) {
            expected += stats;
        }
    }
    for threads in [1, 2, 8] {
        let batch = BatchEngine::new(BatchOptions {
            threads,
            collect_stats: true,
            ..BatchOptions::default()
        });
        let result = batch.run_slices("$..a", &doc_refs).unwrap();
        assert_eq!(result.stats, expected, "threads={threads}");
    }
}
