//! Sharded multi-document batch execution for the rsq engine.
//!
//! The single-document engine ([`rsq_engine::Engine`]) answers one query
//! over one buffer at peak per-byte throughput; this crate scales that
//! to *corpora* — a slice of in-memory documents, an NDJSON buffer (one
//! JSON document per line), or a directory of files — while preserving
//! the property the rest of the workspace is built on: **the output is
//! byte-identical to a sequential loop**, no matter how many threads
//! run.
//!
//! Three pieces, all dependency-free std:
//!
//! * a compiled-query LRU cache ([`QueryCache`]) keyed by normalized
//!   query text, so a working set of queries compiles once, not once
//!   per document;
//! * an atomic chunk-claiming work queue (one `fetch_add` per claim)
//!   feeding a fixed pool of [`std::thread::scope`] workers, each with
//!   its own reusable [`Scratch`](rsq_engine::Scratch) so steady-state
//!   workers allocate nothing per document beyond the output they keep;
//! * a deterministic merge: workers tag every result with its document
//!   index, the merge orders by index, and [`RunStats`] merge with the
//!   existing commutative `+` — so per-document outputs *and* aggregate
//!   statistics are independent of scheduling.
//!
//! Per-document failures (limit trips, strict-mode rejections) are
//! *reported*, not fatal: the batch completes and each document's slot
//! holds either its output or its [`DocError`].
//!
//! # Example
//!
//! ```
//! use rsq_batch::{BatchEngine, BatchOptions};
//!
//! let engine = BatchEngine::new(BatchOptions::default());
//! let docs: Vec<&[u8]> = vec![br#"{"a": 1}"#, br#"{"b": {"a": 2}}"#];
//! let result = engine.run_slices("$..a", &docs).unwrap();
//! assert_eq!(result.outcomes.len(), 2);
//! assert_eq!(result.outcomes[0].as_ref().unwrap().count, 1);
//! assert_eq!(result.counters.documents, 2);
//! ```

mod cache;
mod ndjson;
mod queue;

pub use cache::QueryCache;
pub use ndjson::{split_ndjson, Frame, NdjsonFramer, QuoteScan};

use queue::WorkQueue;
use rsq_engine::{Engine, EngineError, EngineOptions, LimitKind, ProfileStats, RunError, Scratch};
use rsq_obs::{
    BatchCounters, BatchProfile, DocSpan, Histogram, RunStats, SpanRecord, Stopwatch, WorkerProfile,
};
use rsq_perf::{CounterSet, PerfMode, PerfStats};
use std::fs;
use std::io;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Configuration for a [`BatchEngine`].
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Worker threads. `0` means auto: one per available CPU.
    pub threads: usize,
    /// Documents per work-queue claim. `0` means auto: scaled from the
    /// corpus size and thread count (roughly four claims per worker,
    /// capped at 32).
    pub chunk_docs: usize,
    /// Engine options applied to every compiled query. Fixed per
    /// `BatchEngine`, which keeps them out of the cache key.
    pub engine: EngineOptions,
    /// Compiled-query cache capacity (distinct resident queries).
    pub cache_capacity: usize,
    /// Gather per-run [`RunStats`] and merge them into
    /// [`BatchResult::stats`]. Off by default: the counting run costs a
    /// few percent of throughput.
    pub collect_stats: bool,
    /// Gather the Tier C batch profile — per-technique `bytes_skipped`,
    /// stage times, a per-document latency histogram, and per-worker
    /// busy/queue-wait accounting — into [`BatchResult::profile`].
    /// Implies stats collection (the profile recorder carries the Tier A
    /// counters). Off by default: the profiled run reads the monotonic
    /// clock around every fast-forward and document.
    pub profile: bool,
    /// Hardware-counter mode: with anything but [`PerfMode::Off`], each
    /// worker arms a per-thread counter group and brackets every
    /// document run, accumulating into [`BatchResult::perf`]. Denied
    /// hosts degrade to no report with zero behavior change.
    pub perf: PerfMode,
    /// Collect a per-document pipeline [`SpanRecord`] (worker, route,
    /// epoch offset, run time) into [`BatchResult::spans`] for
    /// timeline-trace export. Off by default: the plain path keeps its
    /// no-clock-reads guarantee.
    pub collect_spans: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: 0,
            chunk_docs: 0,
            engine: EngineOptions::default(),
            cache_capacity: 32,
            collect_stats: false,
            profile: false,
            perf: PerfMode::Off,
            collect_spans: false,
        }
    }
}

/// Output for one successfully processed document.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DocOutput {
    /// Number of matches.
    pub count: u64,
    /// Byte offset of each match, in document order.
    pub positions: Vec<usize>,
}

/// Failure class of a [`DocError`] — the batch-side mirror of
/// [`RunError`], minus the live `io::Error` payload so outcomes stay
/// clonable and comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DocErrorKind {
    /// The document could not be read (directory mode only).
    Io,
    /// A resource limit from [`EngineOptions`] tripped.
    Limit(LimitKind),
    /// Strict-mode structural validation rejected the document.
    Malformed,
    /// The per-document deadline passed before the work finished
    /// (serve mode's watchdog; see [`RunError::DeadlineExceeded`]).
    Timeout,
    /// The worker processing this document panicked. The panic was
    /// contained at the worker boundary; only this document failed.
    Panic,
}

impl DocErrorKind {
    /// Stable machine-readable code for this failure class, used in the
    /// serve protocol's per-document error lines and in metrics labels.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            DocErrorKind::Io => "io",
            DocErrorKind::Limit(LimitKind::Depth) => "limit:depth",
            DocErrorKind::Limit(LimitKind::DocumentBytes) => "limit:document-bytes",
            DocErrorKind::Limit(LimitKind::LabelBytes) => "limit:label-bytes",
            DocErrorKind::Limit(LimitKind::Matches) => "limit:matches",
            DocErrorKind::Malformed => "malformed",
            DocErrorKind::Timeout => "timeout",
            DocErrorKind::Panic => "panic",
        }
    }
}

/// A per-document failure. Never fatal to the batch: the remaining
/// documents still run, and this slot records what went wrong here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DocError {
    /// Failure class.
    pub kind: DocErrorKind,
    /// Rendered error message (the underlying [`RunError`]'s `Display`).
    pub message: String,
}

impl DocError {
    /// Maps an engine [`RunError`] onto its batch-side mirror, rendering
    /// the message eagerly so the outcome stays clonable.
    #[must_use]
    pub fn from_run(err: &RunError) -> Self {
        let kind = match err {
            RunError::Io(_) => DocErrorKind::Io,
            RunError::LimitExceeded { kind, .. } => DocErrorKind::Limit(*kind),
            RunError::Malformed(_) => DocErrorKind::Malformed,
            RunError::DeadlineExceeded => DocErrorKind::Timeout,
        };
        DocError {
            kind,
            message: err.to_string(),
        }
    }

    /// This failure's stable machine-readable code (see
    /// [`DocErrorKind::code`]).
    #[must_use]
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }
}

impl std::fmt::Display for DocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DocError {}

/// The result of one batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchResult {
    /// One outcome per input document, **in input order** regardless of
    /// which shard processed it.
    pub outcomes: Vec<Result<DocOutput, DocError>>,
    /// Merged [`RunStats`] across all successful documents (all zeros
    /// unless [`BatchOptions::collect_stats`] is set).
    pub stats: RunStats,
    /// Batch-layer counters: documents, shards, queue claims, cache
    /// hits/misses/evictions.
    pub counters: BatchCounters,
    /// Merged Tier C batch profile (`None` unless
    /// [`BatchOptions::profile`] is set). Histograms and byte counters
    /// merge with saturating element-wise adds, so the merged values are
    /// independent of how documents were sharded; `workers` is ordered by
    /// worker index. Partial work from failed documents stays in the
    /// aggregate.
    pub profile: Option<BatchProfile>,
    /// Hardware-counter totals across all workers (`None` unless
    /// [`BatchOptions::perf`] armed counters the kernel granted).
    pub perf: Option<PerfStats>,
    /// Per-document pipeline spans ordered by document index (empty
    /// unless [`BatchOptions::collect_spans`] is set).
    pub spans: Vec<SpanRecord>,
}

impl BatchResult {
    /// Total matches across all successful documents.
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.outcomes
            .iter()
            .filter_map(|o| o.as_ref().ok())
            .fold(0u64, |acc, o| acc.saturating_add(o.count))
    }
}

/// A multi-document batch executor: compiled-query cache + worker pool.
///
/// One `BatchEngine` owns one [`QueryCache`] and one fixed
/// [`BatchOptions`] configuration; it is cheap to keep alive across
/// many batches so the cache pays off. See the [crate
/// documentation](crate) for the determinism guarantees.
#[derive(Debug)]
pub struct BatchEngine {
    cache: QueryCache,
    options: BatchOptions,
}

impl BatchEngine {
    /// A batch engine with the given configuration and an empty query
    /// cache.
    #[must_use]
    pub fn new(options: BatchOptions) -> Self {
        BatchEngine {
            cache: QueryCache::new(options.cache_capacity),
            options,
        }
    }

    /// The compiled-query cache (for hit/miss inspection).
    #[must_use]
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The configuration this engine runs with.
    #[must_use]
    pub fn options(&self) -> &BatchOptions {
        &self.options
    }

    /// Worker count a run will actually use: the configured count, or
    /// one per available CPU when `threads == 0`.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.options.threads > 0 {
            self.options.threads
        } else {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Runs `query` over every document in `docs`, sharded across the
    /// worker pool. Outcomes come back in input order, byte-identical to
    /// a sequential loop over the same documents.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] only when the *query* fails to compile;
    /// per-document failures land in [`BatchResult::outcomes`].
    pub fn run_slices(&self, query: &str, docs: &[&[u8]]) -> Result<BatchResult, EngineError> {
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        let evictions_before = self.cache.evictions();
        let engine = self.cache.get_or_compile(query, &self.options.engine)?;
        let mut result = self.run_compiled(&engine, docs);
        result.counters.cache_hits = self.cache.hits() - hits_before;
        result.counters.cache_misses = self.cache.misses() - misses_before;
        result.counters.cache_evictions = self.cache.evictions() - evictions_before;
        Ok(result)
    }

    /// Runs `query` over an NDJSON buffer (one JSON document per line,
    /// split with the quote-aware [`split_ndjson`] scan). Returns the
    /// byte range of each document alongside the batch result, so
    /// callers can map outcome `i` back to its line.
    ///
    /// # Errors
    ///
    /// As [`run_slices`](Self::run_slices).
    pub fn run_ndjson(
        &self,
        query: &str,
        input: &[u8],
    ) -> Result<(Vec<Range<usize>>, BatchResult), EngineError> {
        let ranges = split_ndjson(input);
        // PANIC-OK: split_ndjson ranges are derived from input and lie in bounds
        let docs: Vec<&[u8]> = ranges.iter().map(|r| &input[r.clone()]).collect();
        let result = self.run_slices(query, &docs)?;
        Ok((ranges, result))
    }

    /// Runs a compiled engine over the documents, sharded. This is the
    /// core worker-pool loop shared by every entry point.
    fn run_compiled(&self, engine: &Arc<Engine>, docs: &[&[u8]]) -> BatchResult {
        let threads = self.effective_threads().min(docs.len()).max(1);
        let chunk = if self.options.chunk_docs > 0 {
            self.options.chunk_docs
        } else {
            WorkQueue::auto_chunk(docs.len(), threads)
        };
        let queue = WorkQueue::new(docs.len(), chunk);
        let collect_stats = self.options.collect_stats;
        let profile = self.options.profile;
        let perf_mode = self.options.perf;
        let collect_spans = self.options.collect_spans;
        // Clock zero for span placement; the route is a static property
        // of the compiled query, shared by every document.
        let epoch = Instant::now();
        let route = engine.route();

        // Each worker collects (index, outcome) pairs privately and
        // returns them with its local stats merge — no shared mutable
        // state, no locks on the hot path. The main thread merges by
        // index, which makes the output independent of scheduling.
        type ShardOutput = (
            Vec<(usize, Result<DocOutput, DocError>)>,
            RunStats,
            Option<ShardProfile>,
            PerfStats,
            Vec<SpanRecord>,
        );
        let shard = |worker: usize| -> ShardOutput {
            let mut local: Vec<(usize, Result<DocOutput, DocError>)> = Vec::new();
            let mut stats = RunStats::default();
            let mut scratch = Scratch::new();
            let mut prof: Option<ShardProfile> = profile.then(ShardProfile::default);
            // Per-worker counter group: perf events count the opening
            // thread. `Off` (the default) and denied hosts both yield
            // `Unavailable`, making the per-document bracket a no-op.
            let counters = CounterSet::open(perf_mode);
            let mut perf = PerfStats::default();
            if let Some(g) = counters.group() {
                perf.core_only = g.is_core_only();
            }
            let mut spans: Vec<SpanRecord> = Vec::new();
            // Lap timer shared with the serve pipeline's spans: the lap
            // taken after `claim` returns is queue wait, the lap after
            // each document is busy time, and consecutive laps telescope
            // — the worker's wall clock partitions exactly into waits
            // and work. Only a profiled run starts the watch; the plain
            // path keeps its no-clock-reads guarantee.
            let mut watch = prof.as_ref().map(|_| Stopwatch::start());
            loop {
                if let Some(w) = watch.as_mut() {
                    w.lap();
                }
                let Some(range) = queue.claim() else { break };
                if let (Some(p), Some(w)) = (prof.as_mut(), watch.as_mut()) {
                    p.worker.queue_wait_ns = p.worker.queue_wait_ns.saturating_add(w.lap());
                    p.worker.claims += 1;
                }
                for i in range {
                    let mut span = collect_spans.then(|| {
                        let mut s = DocSpan::begin_at(
                            i as u64,
                            // PANIC-OK: doc indices come from the shared claim queue, all < docs.len()
                            docs[i].len() as u64,
                            u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                        s.worker(worker as u32);
                        s.route(route);
                        // Batch has no admission queue: the span starts
                        // at claim, so queue wait is ~zero by design.
                        s.claimed();
                        s
                    });
                    let group = counters.group();
                    if let Some(g) = group {
                        g.start();
                    }
                    // Containment at the document boundary: a panic
                    // inside the engine (or a user sink, via the serve
                    // path) fails this document, not the whole batch.
                    let outcome = if let Some(p) = prof.as_mut() {
                        // PANIC-OK: watch is constructed together with prof a few lines up; Some iff profiling
                        let w = watch.as_mut().expect("watch exists iff profiling");
                        w.lap();
                        let outcome = contain(|| {
                            run_one(
                                engine,
                                // PANIC-OK: doc indices come from the shared claim queue, all < docs.len()
                                docs[i],
                                &mut scratch,
                                collect_stats,
                                &mut stats,
                                Some(&mut p.profile),
                            )
                        });
                        let ns = w.lap();
                        p.latency.record(ns);
                        p.worker.busy_ns = p.worker.busy_ns.saturating_add(ns);
                        p.worker.documents += 1;
                        outcome
                    } else {
                        contain(|| {
                            run_one(
                                engine,
                                // PANIC-OK: doc indices come from the shared claim queue, all < docs.len()
                                docs[i],
                                &mut scratch,
                                collect_stats,
                                &mut stats,
                                None,
                            )
                        })
                    };
                    if let Some(delta) = group.and_then(|g| g.stop()) {
                        // PANIC-OK: doc indices come from the shared claim queue, all < docs.len()
                        perf.add_run(docs[i].len() as u64, &delta);
                    }
                    if let Some(mut s) = span.take() {
                        s.ran();
                        if let Err(e) = &outcome {
                            s.fault(e.kind.code());
                        }
                        s.released();
                        spans.push(s.finish());
                    }
                    local.push((i, outcome));
                }
            }
            (local, stats, prof, perf, spans)
        };

        let mut shards: Vec<ShardOutput> = if threads == 1 {
            // Run inline: identical code path, no thread spawn overhead.
            vec![shard(0)]
        } else {
            thread::scope(|scope| {
                let shard = &shard;
                let handles: Vec<_> = (0..threads)
                    .map(|w| scope.spawn(move || shard(w)))
                    .collect();
                // Per-document panics are contained inside the shard
                // loop; a join failure means the worker died outside it
                // (e.g. an allocator abort path that still unwound).
                // Drop that shard's results — its claimed documents stay
                // at the "worker thread lost" default below — and keep
                // the batch alive.
                handles.into_iter().filter_map(|h| h.join().ok()).collect()
            })
        };

        let mut result = BatchResult {
            outcomes: Vec::with_capacity(docs.len()),
            profile: profile.then(BatchProfile::default),
            ..BatchResult::default()
        };
        // Default every slot to a lost-worker error: any document whose
        // shard never reported back (worker died outside the contained
        // region) surfaces as a per-document failure, not silence.
        result.outcomes.resize(
            docs.len(),
            Err(DocError {
                kind: DocErrorKind::Panic,
                message: "worker thread lost".to_owned(),
            }),
        );
        // Shards come back in worker-index order (spawn order), so the
        // merged `workers` vec is stable across runs of the same shape.
        for (local, stats, shard_profile, shard_perf, shard_spans) in shards.drain(..) {
            result.stats += stats;
            if shard_perf.docs > 0 {
                *result.perf.get_or_insert_with(PerfStats::default) += shard_perf;
            }
            result.spans.extend(shard_spans);
            if let (Some(merged), Some(sp)) = (result.profile.as_mut(), shard_profile) {
                result.stats += sp.profile.stats;
                merged.bytes_skipped += sp.profile.bytes_skipped;
                merged.stages += sp.profile.stages;
                merged.latency += &sp.latency;
                merged.workers.push(sp.worker);
            }
            for (i, outcome) in local {
                // PANIC-OK: outcomes was pre-sized to docs.len(); queue indices stay in range
                result.outcomes[i] = outcome;
            }
        }
        // Shards interleave document ranges; order the merged timeline
        // by document index so trace output is deterministic.
        result.spans.sort_by_key(|s| s.seq);
        result.counters.failed_documents =
            result.outcomes.iter().filter(|o| o.is_err()).count() as u64;
        result.counters.documents = docs.len() as u64;
        result.counters.shards = threads as u64;
        result.counters.queue_claims = queue.claims();
        result
    }

    /// Loads every regular file in `dir` (sorted by file name for a
    /// stable document order) for batch processing: ingest is sequential
    /// — one disk — and the compute stays parallel via
    /// [`run_slices`](Self::run_slices) on the returned buffers.
    ///
    /// # Errors
    ///
    /// Returns the first directory-walk or read error; per-file content
    /// problems surface later as per-document outcomes.
    pub fn load_dir(dir: &Path) -> io::Result<Vec<(String, Vec<u8>)>> {
        let mut files: Vec<(String, Vec<u8>)> = Vec::new();
        for (name, path) in Self::dir_entries(dir)? {
            files.push((name, fs::read(&path)?));
        }
        Ok(files)
    }

    /// [`load_dir`](Self::load_dir) with zero-copy ingest: each file is
    /// loaded under the given [`rsq_mmap::MapPolicy`], so large documents
    /// are memory-mapped instead of copied into heap buffers (DESIGN.md
    /// §15). Document order and error behavior match `load_dir` exactly;
    /// only the backing storage differs.
    ///
    /// # Errors
    ///
    /// Returns the first directory-walk or read error; per-file content
    /// problems surface later as per-document outcomes.
    pub fn load_dir_mapped(
        dir: &Path,
        policy: rsq_mmap::MapPolicy,
    ) -> io::Result<Vec<(String, rsq_mmap::MmapInput)>> {
        let mut files: Vec<(String, rsq_mmap::MmapInput)> = Vec::new();
        for (name, path) in Self::dir_entries(dir)? {
            files.push((name, rsq_mmap::load(&path, policy)?));
        }
        Ok(files)
    }

    /// The regular files of `dir`, sorted by file name.
    fn dir_entries(dir: &Path) -> io::Result<Vec<(String, std::path::PathBuf)>> {
        let mut names: Vec<(String, std::path::PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_file() {
                names.push((entry.file_name().to_string_lossy().into_owned(), path));
            }
        }
        names.sort();
        Ok(names)
    }
}

/// Renders a panic payload the way the default hook would: the `&str` or
/// `String` message if there is one, a placeholder otherwise.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_owned()
    }
}

/// Runs `f`, converting a panic into a per-document
/// [`DocErrorKind::Panic`] outcome instead of unwinding into the worker
/// pool. The engine holds no global state and its scratch buffers are
/// plain `Vec`s, so observing them after an unwind is safe (the next
/// document clears them); `AssertUnwindSafe` records that judgement.
fn contain<T>(f: impl FnOnce() -> Result<T, DocError>) -> Result<T, DocError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(outcome) => outcome,
        Err(payload) => Err(DocError {
            kind: DocErrorKind::Panic,
            message: format!("worker panicked: {}", panic_message(payload.as_ref())),
        }),
    }
}

/// Runs one document through `engine` into `sink` with panic containment
/// at the boundary: a panic anywhere inside the run (including a
/// panicking [`Sink`](rsq_engine::Sink) implementation) comes back as a
/// [`DocErrorKind::Panic`] outcome for *this* document instead of
/// unwinding the calling thread. This is the isolation primitive the
/// batch shard loop and the serve workers share.
///
/// # Errors
///
/// As [`Engine::try_run`], mapped through [`DocError::from_run`], plus
/// [`DocErrorKind::Panic`] for contained panics.
pub fn run_document_contained<S: rsq_engine::Sink>(
    engine: &Engine,
    doc: &[u8],
    sink: &mut S,
) -> Result<(), DocError> {
    run_document_contained_with(engine, doc, sink, None)
}

/// [`run_document_contained`] with an optional Tier C profiling
/// recorder threaded through the run. When `profile` is given the
/// engine's monomorphized stage timers fire (the only configuration
/// that reads the clock inside the run); serve-mode telemetry uses this
/// to put an engine stage breakdown inside each document's pipeline
/// span. `None` is byte-for-byte the uninstrumented path.
///
/// # Errors
///
/// As [`run_document_contained`].
pub fn run_document_contained_with<S: rsq_engine::Sink>(
    engine: &Engine,
    doc: &[u8],
    sink: &mut S,
    profile: Option<&mut ProfileStats>,
) -> Result<(), DocError> {
    contain(move || {
        let run = match profile {
            Some(p) => engine.try_run_into_profile(doc, sink, p),
            None => engine.try_run(doc, sink),
        };
        run.map_err(|e| DocError::from_run(&e))
    })
}

/// One worker's accumulated Tier C profile: an engine-side profile shared
/// across the shard's documents (no per-document skip map), the
/// per-document latency histogram, and the worker's own busy/queue-wait
/// accounting.
#[derive(Debug, Default)]
struct ShardProfile {
    profile: ProfileStats,
    latency: Histogram,
    worker: WorkerProfile,
}

/// Runs one document through the engine using the worker's scratch
/// buffers, producing its outcome and (optionally) accumulating stats or
/// a full profile. When `profile` is given it supersedes `collect_stats`:
/// the profile recorder carries the Tier A counters.
fn run_one(
    engine: &Engine,
    doc: &[u8],
    scratch: &mut Scratch,
    collect_stats: bool,
    stats: &mut RunStats,
    profile: Option<&mut ProfileStats>,
) -> Result<DocOutput, DocError> {
    scratch.positions.clear();
    let run = if let Some(p) = profile {
        engine.try_run_into_profile(doc, &mut scratch.positions, p)
    } else if collect_stats {
        engine
            .try_run_with_stats(doc, &mut scratch.positions)
            .map(|s| *stats += s)
    } else {
        engine.try_run(doc, &mut scratch.positions)
    };
    match run {
        Ok(()) => Ok(DocOutput {
            count: scratch.positions.len() as u64,
            // Exact-size clone: the kept output never carries scratch
            // slack capacity.
            positions: scratch.positions.as_slice().to_vec(),
        }),
        Err(e) => Err(DocError::from_run(&e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_doc_matches_engine() {
        let doc: &[u8] = br#"{"a": {"b": 1}, "b": [2, {"b": 3}]}"#;
        let batch = BatchEngine::new(BatchOptions::default());
        let result = batch.run_slices("$..b", &[doc]).unwrap();
        let expected = Engine::from_text("$..b")
            .unwrap()
            .try_positions(doc)
            .unwrap();
        let out = result.outcomes[0].as_ref().unwrap();
        assert_eq!(out.positions, expected);
        assert_eq!(out.count, expected.len() as u64);
    }

    #[test]
    fn empty_corpus_is_fine() {
        let batch = BatchEngine::new(BatchOptions::default());
        let result = batch.run_slices("$..a", &[]).unwrap();
        assert!(result.outcomes.is_empty());
        assert_eq!(result.counters.documents, 0);
        assert_eq!(result.total_count(), 0);
    }

    #[test]
    fn query_compile_error_is_batch_fatal() {
        let batch = BatchEngine::new(BatchOptions::default());
        assert!(batch.run_slices("nope", &[b"{}"]).is_err());
    }

    #[test]
    fn per_document_failure_does_not_abort() {
        let options = BatchOptions {
            engine: EngineOptions {
                max_matches: Some(2),
                ..EngineOptions::default()
            },
            ..BatchOptions::default()
        };
        let batch = BatchEngine::new(options);
        let many: &[u8] = br#"{"a": 1, "b": {"a": 2}, "c": {"a": 3}}"#;
        let few: &[u8] = br#"{"a": 1}"#;
        let result = batch.run_slices("$..a", &[many, few, many]).unwrap();
        assert!(matches!(
            result.outcomes[0],
            Err(DocError {
                kind: DocErrorKind::Limit(LimitKind::Matches),
                ..
            })
        ));
        assert_eq!(result.outcomes[1].as_ref().unwrap().count, 1);
        assert!(result.outcomes[2].is_err());
        assert_eq!(result.counters.failed_documents, 2);
        assert_eq!(result.counters.documents, 3);
    }

    #[test]
    fn cache_counters_are_per_batch() {
        let batch = BatchEngine::new(BatchOptions::default());
        let docs: [&[u8]; 1] = [br#"{"a": 1}"#];
        let first = batch.run_slices("$..a", &docs).unwrap();
        assert_eq!(
            (first.counters.cache_hits, first.counters.cache_misses),
            (0, 1)
        );
        let second = batch.run_slices("$..a", &docs).unwrap();
        assert_eq!(
            (second.counters.cache_hits, second.counters.cache_misses),
            (1, 0)
        );
    }

    #[test]
    fn stats_collection_merges_runs() {
        let options = BatchOptions {
            collect_stats: true,
            ..BatchOptions::default()
        };
        let batch = BatchEngine::new(options);
        let docs: [&[u8]; 3] = [br#"{"a": 1}"#, br#"{"b": {"a": 2}}"#, b"[1, 2]"];
        let result = batch.run_slices("$..a", &docs).unwrap();
        let total_bytes: u64 = docs.iter().map(|d| d.len() as u64).sum();
        assert_eq!(result.stats.bytes, total_bytes);
        assert_eq!(result.stats.matches, result.total_count());
    }

    #[test]
    fn profile_off_leaves_result_profile_empty() {
        let batch = BatchEngine::new(BatchOptions::default());
        let result = batch.run_slices("$..a", &[br#"{"a": 1}"#]).unwrap();
        assert!(result.profile.is_none());
    }

    #[test]
    fn profile_collects_latency_workers_and_spans() {
        let options = BatchOptions {
            threads: 2,
            profile: true,
            ..BatchOptions::default()
        };
        let batch = BatchEngine::new(options);
        let doc: &[u8] = br#"{"a": 1, "deep": {"nested": {"a": [1, 2, 3]}}, "pad": "xxxx"}"#;
        let docs: Vec<&[u8]> = vec![doc; 8];
        let result = batch.run_slices("$..a", &docs).unwrap();
        let profile = result.profile.as_ref().unwrap();
        assert_eq!(profile.latency.count(), 8);
        assert_eq!(profile.workers.len() as u64, result.counters.shards);
        let docs_run: u64 = profile.workers.iter().map(|w| w.documents).sum();
        assert_eq!(docs_run, 8);
        let claims: u64 = profile.workers.iter().map(|w| w.claims).sum();
        assert_eq!(claims, result.counters.queue_claims);
        // Profiling implies stats collection even with collect_stats off.
        let total_bytes: u64 = docs.iter().map(|d| d.len() as u64).sum();
        assert_eq!(result.stats.bytes, total_bytes);
        assert!(result.stats.events > 0);
    }

    #[test]
    fn profile_does_not_change_outcomes() {
        let doc_a: &[u8] = br#"{"a": {"b": 1}, "b": [2, {"b": 3}]}"#;
        let doc_b: &[u8] = br#"[{"b": []}, {"c": {"b": 4}}]"#;
        let plain = BatchEngine::new(BatchOptions::default());
        let profiled = BatchEngine::new(BatchOptions {
            profile: true,
            ..BatchOptions::default()
        });
        let without = plain.run_slices("$..b", &[doc_a, doc_b]).unwrap();
        let with = profiled.run_slices("$..b", &[doc_a, doc_b]).unwrap();
        assert_eq!(without.outcomes, with.outcomes);
    }

    #[test]
    fn collect_spans_stamps_worker_route_and_epoch() {
        let options = BatchOptions {
            threads: 2,
            collect_spans: true,
            ..BatchOptions::default()
        };
        let batch = BatchEngine::new(options);
        let doc: &[u8] = br#"{"a": 1, "b": {"a": 2}}"#;
        let docs: Vec<&[u8]> = vec![doc; 6];
        let result = batch.run_slices("$..a", &docs).unwrap();
        assert_eq!(result.spans.len(), 6, "one span per document");
        for (i, span) in result.spans.iter().enumerate() {
            assert_eq!(span.seq, i as u64, "spans sorted by document index");
            assert_eq!(span.bytes, doc.len() as u64);
            assert!(span.route.is_some());
            assert!(span.start_ns > 0);
            assert!(span.run_ns > 0);
            assert!(span.code.is_none());
        }
        let json = rsq_obs::chrome_trace_json(&result.spans);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        // Span collection never changes outcomes.
        let plain = BatchEngine::new(BatchOptions::default())
            .run_slices("$..a", &docs)
            .unwrap();
        assert_eq!(result.outcomes, plain.outcomes);
    }

    #[test]
    fn failed_documents_carry_codes_in_spans() {
        let options = BatchOptions {
            collect_spans: true,
            engine: EngineOptions {
                max_matches: Some(1),
                ..EngineOptions::default()
            },
            ..BatchOptions::default()
        };
        let batch = BatchEngine::new(options);
        let many: &[u8] = br#"{"a": 1, "b": {"a": 2}}"#;
        let result = batch.run_slices("$..a", &[many]).unwrap();
        assert!(result.outcomes[0].is_err());
        assert_eq!(result.spans[0].code, Some("limit:matches"));
    }

    #[test]
    fn perf_deny_and_auto_change_nothing_observable() {
        let docs: [&[u8]; 2] = [br#"{"a": 1}"#, br#"{"b": {"a": 2}}"#];
        let plain = BatchEngine::new(BatchOptions::default())
            .run_slices("$..a", &docs)
            .unwrap();
        for mode in [PerfMode::Deny, PerfMode::Auto] {
            let batch = BatchEngine::new(BatchOptions {
                perf: mode,
                ..BatchOptions::default()
            });
            let result = batch.run_slices("$..a", &docs).unwrap();
            assert_eq!(result.outcomes, plain.outcomes, "{mode:?}");
            if mode == PerfMode::Deny {
                assert!(result.perf.is_none(), "denied counters leave no report");
            }
        }
    }

    #[test]
    fn eviction_counter_is_per_batch() {
        let options = BatchOptions {
            cache_capacity: 1,
            ..BatchOptions::default()
        };
        let batch = BatchEngine::new(options);
        let docs: [&[u8]; 1] = [br#"{"a": 1}"#];
        let first = batch.run_slices("$.a", &docs).unwrap();
        assert_eq!(first.counters.cache_evictions, 0);
        let second = batch.run_slices("$.b", &docs).unwrap();
        assert_eq!(second.counters.cache_evictions, 1);
    }

    #[test]
    fn ndjson_entry_point_maps_lines_to_outcomes() {
        let input = b"{\"a\": 1}\n\n{\"a\": {\"a\": 2}}\n[3]\n";
        let batch = BatchEngine::new(BatchOptions::default());
        let (ranges, result) = batch.run_ndjson("$..a", input).unwrap();
        assert_eq!(ranges.len(), 3);
        assert_eq!(result.outcomes.len(), 3);
        assert_eq!(result.outcomes[0].as_ref().unwrap().count, 1);
        assert_eq!(result.outcomes[1].as_ref().unwrap().count, 2);
        assert_eq!(result.outcomes[2].as_ref().unwrap().count, 0);
        assert_eq!(&input[ranges[2].clone()], b"[3]");
    }

    #[test]
    fn panicking_sink_is_contained_as_doc_error() {
        // A sink that panics partway through recording — the regression
        // case for worker-boundary containment: the caller must get a
        // per-document Panic outcome, not an unwinding thread.
        struct Bomb {
            fuse: usize,
        }
        impl rsq_engine::Sink for Bomb {
            fn record(&mut self, _pos: usize) -> Result<(), rsq_engine::SinkFull> {
                if self.fuse == 0 {
                    panic!("sink exploded");
                }
                self.fuse -= 1;
                Ok(())
            }
        }
        let engine = Engine::from_text("$..a").unwrap();
        let doc: &[u8] = br#"{"a": 1, "b": {"a": 2}, "c": {"a": 3}}"#;

        // Silence the default panic hook for the expected panic so the
        // test log stays readable; restore it after.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = run_document_contained(&engine, doc, &mut Bomb { fuse: 1 }).unwrap_err();
        std::panic::set_hook(hook);

        assert_eq!(err.kind, DocErrorKind::Panic);
        assert_eq!(err.code(), "panic");
        assert!(err.message.contains("sink exploded"), "{}", err.message);

        // A healthy run through the same containment wrapper still works.
        let mut out: Vec<usize> = Vec::new();
        run_document_contained(&engine, doc, &mut out).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn contained_run_with_profile_fills_stage_timers() {
        let engine = Engine::from_text("$..a").unwrap();
        let doc: &[u8] = br#"{"a": 1, "b": {"a": 2}, "c": {"a": 3}}"#;
        let mut plain: Vec<usize> = Vec::new();
        run_document_contained(&engine, doc, &mut plain).unwrap();

        let mut profiled: Vec<usize> = Vec::new();
        let mut profile = ProfileStats::new();
        run_document_contained_with(&engine, doc, &mut profiled, Some(&mut profile)).unwrap();
        assert_eq!(profiled, plain, "profiling never changes the answer");
        assert_eq!(profile.stats.bytes, doc.len() as u64);
        assert!(
            profile.stages.get(rsq_obs::ProfileStage::Automaton) > 0,
            "monomorphized stage timers fired: {:?}",
            profile.stages
        );
    }

    #[test]
    fn doc_error_codes_are_distinct_and_stable() {
        let kinds = [
            DocErrorKind::Io,
            DocErrorKind::Limit(LimitKind::Depth),
            DocErrorKind::Limit(LimitKind::DocumentBytes),
            DocErrorKind::Limit(LimitKind::LabelBytes),
            DocErrorKind::Limit(LimitKind::Matches),
            DocErrorKind::Malformed,
            DocErrorKind::Timeout,
            DocErrorKind::Panic,
        ];
        let codes: Vec<&str> = kinds.iter().map(|k| k.code()).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "codes must be distinct");
        assert_eq!(codes[1], "limit:depth");
        assert_eq!(codes[6], "timeout");
    }

    #[test]
    fn deadline_error_maps_to_timeout_kind() {
        let err = DocError::from_run(&RunError::DeadlineExceeded);
        assert_eq!(err.kind, DocErrorKind::Timeout);
        assert_eq!(err.code(), "timeout");
        assert_eq!(err.message, "deadline exceeded");
    }

    #[test]
    fn load_dir_sorts_by_name() {
        let dir = std::env::temp_dir().join(format!("rsq-batch-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("b.json"), b"[2]").unwrap();
        fs::write(dir.join("a.json"), b"[1]").unwrap();
        let files = BatchEngine::load_dir(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.json", "b.json"]);
        assert_eq!(files[0].1, b"[1]");
    }
}
