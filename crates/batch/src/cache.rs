//! Bounded compiled-query cache.
//!
//! Compiling a JSONPath query — parse, NFA construction, determinization
//! to the minimal DFA — costs orders of magnitude more than running the
//! resulting automaton over a small document, so a batch service that
//! sees a working set of queries should pay compilation once per query,
//! not once per document. [`QueryCache`] is a small LRU keyed by the
//! *normalized* query text: the text is parsed and re-rendered through
//! the parser's canonical [`Display`](std::fmt::Display) form, so
//! bracket and dot spellings of the same selector (`$['a'][*]` and
//! `$.a.*`) share one cache slot and one compiled [`Engine`].
//!
//! The cache stores `Arc<Engine>` so workers across shards share one
//! compiled automaton with no copying. Engine options are fixed per
//! cache (they come from the owning `BatchEngine`), which keeps options
//! out of the key: one `BatchEngine` == one options configuration.
//!
//! Recency is tracked with a logical clock over a plain `Vec` — with
//! capacities in the tens, a linear scan beats any pointer-chasing LRU
//! structure and keeps the crate dependency-free.

use rsq_engine::{Engine, EngineError, EngineOptions};
use rsq_query::Query;
use std::sync::{Arc, Mutex};

/// One cache slot: normalized key, compiled engine, last-use stamp.
#[derive(Debug)]
struct Slot {
    key: String,
    engine: Arc<Engine>,
    stamp: u64,
}

#[derive(Debug, Default)]
struct Inner {
    slots: Vec<Slot>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded LRU cache of compiled query engines, keyed by normalized
/// query text.
///
/// Thread-safe: `get_or_compile` may be called from any number of
/// threads. Compilation happens under the lock — queries compile in
/// microseconds, and serializing compilation guarantees each distinct
/// query is compiled at most once per residency.
#[derive(Debug)]
pub struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl QueryCache {
    /// A cache holding at most `capacity` compiled queries (clamped to at
    /// least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Returns the compiled engine for `query`, compiling (and caching)
    /// it on first sight. Spelling variants that parse to the same query
    /// share one entry.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the query does not parse or its
    /// automaton exceeds the state cap. Failures are not cached: a retry
    /// re-parses.
    pub fn get_or_compile(
        &self,
        query: &str,
        options: &EngineOptions,
    ) -> Result<Arc<Engine>, EngineError> {
        // Parse outside the happy path only when the raw text misses:
        // normalization requires a parse anyway, so parse once and reuse
        // the Query for compilation on a miss.
        let parsed = Query::parse(query)?;
        let key = parsed.to_string();
        // PANIC-OK: cache mutex poisoned only if a panic escaped per-document containment; a torn cache must not serve
        let mut inner = self.inner.lock().expect("query cache poisoned");
        inner.clock += 1;
        let now = inner.clock;
        if let Some(slot) = inner.slots.iter_mut().find(|s| s.key == key) {
            slot.stamp = now;
            let engine = Arc::clone(&slot.engine);
            inner.hits += 1;
            return Ok(engine);
        }
        let engine = Arc::new(Engine::with_options(&parsed, *options)?);
        inner.misses += 1;
        if inner.slots.len() == self.capacity {
            // Evict the least recently used slot.
            let lru = inner
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
                // PANIC-OK: cache mutex poisoned only if a panic escaped per-document containment; a torn cache must not serve
                .expect("capacity >= 1, so a full cache has slots");
            inner.slots.swap_remove(lru);
            inner.evictions += 1;
        }
        inner.slots.push(Slot {
            key,
            engine: Arc::clone(&engine),
            stamp: now,
        });
        Ok(engine)
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        // PANIC-OK: cache mutex poisoned only if a panic escaped per-document containment; a torn cache must not serve
        self.inner.lock().expect("query cache poisoned").hits
    }

    /// Cache misses (compilations performed) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        // PANIC-OK: cache mutex poisoned only if a panic escaped per-document containment; a torn cache must not serve
        self.inner.lock().expect("query cache poisoned").misses
    }

    /// Entries evicted to make room so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        // PANIC-OK: cache mutex poisoned only if a panic escaped per-document containment; a torn cache must not serve
        self.inner.lock().expect("query cache poisoned").evictions
    }

    /// Number of compiled queries currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        // PANIC-OK: cache mutex poisoned only if a panic escaped per-document containment; a torn cache must not serve
        self.inner.lock().expect("query cache poisoned").slots.len()
    }

    /// True when no queries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> EngineOptions {
        EngineOptions::default()
    }

    #[test]
    fn second_lookup_hits() {
        let cache = QueryCache::new(4);
        let a = cache.get_or_compile("$..a", &opts()).unwrap();
        let b = cache.get_or_compile("$..a", &opts()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn spelling_variants_share_a_slot() {
        let cache = QueryCache::new(4);
        let dot = cache.get_or_compile("$.a.b.*", &opts()).unwrap();
        let bracket = cache.get_or_compile("$['a'][\"b\"][*]", &opts()).unwrap();
        assert!(Arc::ptr_eq(&dot, &bracket), "normalization failed");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_drops_least_recently_used() {
        let cache = QueryCache::new(2);
        cache.get_or_compile("$.a", &opts()).unwrap();
        cache.get_or_compile("$.b", &opts()).unwrap();
        cache.get_or_compile("$.a", &opts()).unwrap(); // refresh a
        assert_eq!(cache.evictions(), 0);
        cache.get_or_compile("$.c", &opts()).unwrap(); // evicts b
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        let misses_before = cache.misses();
        cache.get_or_compile("$.a", &opts()).unwrap(); // still resident
        assert_eq!(cache.misses(), misses_before);
        cache.get_or_compile("$.b", &opts()).unwrap(); // recompile
        assert_eq!(cache.misses(), misses_before + 1);
    }

    #[test]
    fn parse_failure_is_not_cached() {
        let cache = QueryCache::new(2);
        assert!(cache.get_or_compile("not a query", &opts()).is_err());
        assert_eq!(cache.len(), 0);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn concurrent_lookups_compile_once() {
        let cache = QueryCache::new(4);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10 {
                        cache.get_or_compile("$..x.y", &opts()).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 79);
    }
}
