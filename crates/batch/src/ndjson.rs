//! Quote-aware NDJSON splitting — one-shot and incremental.
//!
//! NDJSON (newline-delimited JSON) carries one document per line. A
//! syntactically valid JSON document cannot contain a raw newline inside
//! a string (control characters must be escaped), but a batch layer that
//! serves untrusted corpora cannot assume validity: a lenient engine run
//! over a document with a raw `\n` inside a string must still see the
//! same bytes the producer wrote. The splitter therefore scans with the
//! same quote/escape automaton the engine's scalar paths use — a `"`
//! toggles string state unless preceded by an odd run of backslashes —
//! and treats a newline as a document boundary *only outside strings*.
//! Braces, brackets, and anything else inside strings never confuse it,
//! because it never looks at them.
//!
//! Blank lines (empty or whitespace-only) are skipped; a trailing `\r`
//! (CRLF input) is trimmed from each document. Offsets returned are
//! ranges into the original buffer, so callers can borrow each document
//! as a subslice without copying.
//!
//! Two front-ends share one automaton ([`QuoteScan`]):
//!
//! * [`split_ndjson`] — the one-shot batch splitter over a fully
//!   resident buffer, returning borrowed ranges;
//! * [`NdjsonFramer`] — the incremental serve-side framer, fed
//!   arbitrarily fragmented chunks (a 1-byte chunk may split an escape
//!   sequence or a CRLF pair), carrying string/escape state across chunk
//!   boundaries and never buffering more than a configured byte cap.
//!
//! The two are differentially tested against each other: for any input
//! and any chunk plan, the framer's documents are byte-identical to the
//! splitter's.

use std::ops::Range;

/// The quote/escape automaton shared by [`split_ndjson`] and
/// [`NdjsonFramer`]: tracks whether the scan is inside a JSON string,
/// honoring backslash escapes (a `"` preceded by an odd run of
/// backslashes does not close the string).
#[derive(Clone, Copy, Debug, Default)]
pub struct QuoteScan {
    in_string: bool,
    escaped: bool,
}

impl QuoteScan {
    /// Advances over one byte. Returns `true` exactly when `b` is a
    /// document boundary: a newline outside any string.
    #[inline]
    pub fn boundary(&mut self, b: u8) -> bool {
        if self.in_string {
            if self.escaped {
                self.escaped = false;
            } else if b == b'\\' {
                self.escaped = true;
            } else if b == b'"' {
                self.in_string = false;
            }
            return false;
        }
        match b {
            b'"' => {
                self.in_string = true;
                false
            }
            b'\n' => true,
            _ => false,
        }
    }

    /// True while the scan is inside an (unterminated) string.
    #[must_use]
    pub fn in_string(&self) -> bool {
        self.in_string
    }
}

/// Splits an NDJSON buffer into one byte range per document.
///
/// Newlines inside JSON strings (tracked with a quote/escape scan) do
/// not split; blank lines are skipped; a trailing `\r` is trimmed from
/// each line. An unterminated string swallows the rest of the input into
/// the final document — deterministic, and the lenient engine will
/// process it best-effort like any other malformed input.
///
/// # Examples
///
/// ```
/// let input = b"{\"a\": 1}\n\n{\"b\": \"x\\ny\"}\n";
/// let docs = rsq_batch::split_ndjson(input);
/// assert_eq!(docs.len(), 2);
/// assert_eq!(&input[docs[0].clone()], b"{\"a\": 1}");
/// ```
#[must_use]
pub fn split_ndjson(input: &[u8]) -> Vec<Range<usize>> {
    let mut docs = Vec::new();
    let mut start = 0usize;
    let mut scan = QuoteScan::default();
    for (i, &b) in input.iter().enumerate() {
        if scan.boundary(b) {
            push_line(input, start, i, &mut docs);
            start = i + 1;
        }
    }
    push_line(input, start, input.len(), &mut docs);
    docs
}

/// Appends `input[start..end]` (trailing `\r` trimmed) unless the line is
/// blank.
fn push_line(input: &[u8], start: usize, mut end: usize, docs: &mut Vec<Range<usize>>) {
    // PANIC-OK: end > start on the same line guards end - 1; end <= input.len() is the scanner's invariant
    if end > start && input[end - 1] == b'\r' {
        end -= 1;
    }
    // PANIC-OK: start <= end <= input.len() by the scanner's invariant
    if input[start..end].iter().any(|b| !b.is_ascii_whitespace()) {
        docs.push(start..end);
    }
}

/// One framed unit produced by [`NdjsonFramer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete document line (trailing `\r` already trimmed), owned
    /// because the source chunks are gone by the time the line closes.
    Doc(Vec<u8>),
    /// A line that exceeded the framer's byte cap. Its bytes were
    /// discarded as they arrived — the framer never buffers more than
    /// the cap (plus one slack byte for `\r` trimming) — so only the
    /// running length is known.
    Oversize {
        /// Bytes of the line seen so far (at least `limit + 1`,
        /// counting a trailing `\r` if present).
        bytes_seen: u64,
        /// The configured cap that tripped.
        limit: usize,
    },
}

/// Incremental, quote-aware NDJSON framer for chunk streams.
///
/// The serve-side counterpart of [`split_ndjson`]: bytes arrive in
/// arbitrarily fragmented chunks (a chunk boundary may fall between a
/// backslash and the byte it escapes, or inside a CRLF pair) and the
/// framer carries the [`QuoteScan`] state across them. Semantics are
/// byte-identical to the one-shot splitter on the concatenated input:
/// newlines inside strings don't split, blank lines are skipped, one
/// trailing `\r` is trimmed per line, and [`finish`](Self::finish)
/// treats end-of-stream like the splitter's final unterminated line.
///
/// The one divergence is deliberate: with a byte cap set, a line longer
/// than the cap is emitted as [`Frame::Oversize`] and its bytes are
/// *discarded on arrival*, so a hostile client streaming an unbounded
/// line costs O(cap) memory, not O(line). A whitespace-only line that
/// exceeds the cap is still silently skipped — the splitter would have
/// skipped it too, and an error there would break parity.
#[derive(Debug)]
pub struct NdjsonFramer {
    scan: QuoteScan,
    buf: Vec<u8>,
    max_document_bytes: Option<usize>,
    /// The current line overflowed the cap: discard until boundary.
    overflowing: bool,
    /// Total bytes of the current (overflowing) line.
    line_bytes: u64,
    /// The current line is all-whitespace so far.
    blank: bool,
}

impl NdjsonFramer {
    /// A fresh framer. `max_document_bytes` bounds the per-line buffer;
    /// `None` means unbounded (memory grows with the longest line).
    #[must_use]
    pub fn new(max_document_bytes: Option<usize>) -> Self {
        NdjsonFramer {
            scan: QuoteScan::default(),
            buf: Vec::new(),
            max_document_bytes,
            overflowing: false,
            line_bytes: 0,
            blank: true,
        }
    }

    /// Bytes currently buffered for the in-progress line. Never exceeds
    /// the configured cap plus one (the one slack byte lets a line whose
    /// *trimmed* length is exactly the cap keep its trailing `\r` until
    /// the boundary decides).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Feeds one chunk, invoking `emit` once per completed frame, in
    /// input order. Chunks may be any size, including empty; state is
    /// carried so fragmentation never changes the emitted frames.
    pub fn push(&mut self, chunk: &[u8], emit: &mut impl FnMut(Frame)) {
        for &b in chunk {
            if self.scan.boundary(b) {
                self.close_line(emit);
                continue;
            }
            self.blank = self.blank && b.is_ascii_whitespace();
            self.line_bytes += 1;
            if self.overflowing {
                continue;
            }
            if let Some(limit) = self.max_document_bytes {
                // One byte of slack beyond the cap: a line of exactly
                // `limit` content bytes plus a trailing `\r` must not
                // trip (the `\r` is trimmed at the boundary). Whether
                // the cap really tripped is decided in `close_line`.
                if self.buf.len() > limit {
                    self.overflowing = true;
                    self.buf.clear();
                    continue;
                }
            }
            self.buf.push(b);
        }
    }

    /// Ends the stream: a non-empty trailing line (no final newline) is
    /// framed exactly like [`split_ndjson`]'s last line. Returns the
    /// final frame, if any, and resets the framer for reuse.
    pub fn finish(&mut self) -> Option<Frame> {
        let mut last = None;
        if self.line_bytes > 0 {
            let mut emit = |f: Frame| last = Some(f);
            self.close_line(&mut emit);
        }
        self.scan = QuoteScan::default();
        last
    }

    /// Closes the current line at a boundary (or at end of stream):
    /// skips it if blank, emits `Oversize` if the cap tripped, otherwise
    /// trims one trailing `\r` and emits the document.
    fn close_line(&mut self, emit: &mut impl FnMut(Frame)) {
        if !self.overflowing {
            if self.buf.last() == Some(&b'\r') {
                self.buf.pop();
            }
            // The slack byte may still be resident: a trimmed line one
            // byte over the cap is oversize, decided here not in push.
            if self
                .max_document_bytes
                .is_some_and(|limit| self.buf.len() > limit)
            {
                self.overflowing = true;
            }
        }
        if self.overflowing {
            if !self.blank {
                emit(Frame::Oversize {
                    bytes_seen: self.line_bytes,
                    limit: self.max_document_bytes.unwrap_or(0),
                });
            }
        } else if !self.blank {
            emit(Frame::Doc(std::mem::take(&mut self.buf)));
        }
        self.buf.clear();
        self.overflowing = false;
        self.line_bytes = 0;
        self.blank = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(input: &[u8]) -> Vec<&[u8]> {
        split_ndjson(input).into_iter().map(|r| &input[r]).collect()
    }

    /// Frames `input` through the framer in chunks of `step` bytes.
    fn frames(input: &[u8], step: usize, cap: Option<usize>) -> Vec<Frame> {
        let mut out = Vec::new();
        let mut framer = NdjsonFramer::new(cap);
        for chunk in input.chunks(step.max(1)) {
            framer.push(chunk, &mut |f| out.push(f));
        }
        out.extend(framer.finish());
        out
    }

    #[test]
    fn plain_lines_split_on_newlines() {
        assert_eq!(
            lines(b"{\"a\":1}\n[2,3]\ntrue"),
            [&b"{\"a\":1}"[..], b"[2,3]", b"true"]
        );
    }

    #[test]
    fn blank_lines_and_trailing_newline_are_skipped() {
        assert_eq!(lines(b"\n\n{\"a\":1}\n   \n\t\n"), [&b"{\"a\":1}"[..]]);
        assert_eq!(lines(b""), Vec::<&[u8]>::new());
        assert_eq!(lines(b"\n"), Vec::<&[u8]>::new());
    }

    #[test]
    fn crlf_is_trimmed() {
        assert_eq!(
            lines(b"{\"a\":1}\r\n{\"b\":2}\r\n"),
            [&b"{\"a\":1}"[..], b"{\"b\":2}"]
        );
    }

    #[test]
    fn newline_inside_string_does_not_split() {
        let input = b"{\"a\": \"x\ny\"}\n{\"b\": 2}";
        assert_eq!(lines(input), [&b"{\"a\": \"x\ny\"}"[..], b"{\"b\": 2}"]);
    }

    #[test]
    fn escaped_quote_keeps_string_open_across_newline() {
        // The string `"x\"` is still open at the newline: no split there.
        let input = b"{\"a\": \"x\\\"\n\"}\n[1]";
        assert_eq!(lines(input), [&b"{\"a\": \"x\\\"\n\"}"[..], b"[1]"]);
    }

    #[test]
    fn braces_inside_strings_are_ignored() {
        let input = b"{\"a\": \"}{][\"}\n{\"b\": 1}";
        assert_eq!(lines(input), [&b"{\"a\": \"}{][\"}"[..], b"{\"b\": 1}"]);
    }

    #[test]
    fn even_backslash_run_closes_string() {
        // `"x\\"` — the backslash is itself escaped, the quote closes.
        let input = b"{\"a\": \"x\\\\\"}\n[2]";
        assert_eq!(lines(input), [&b"{\"a\": \"x\\\\\"}"[..], b"[2]"]);
    }

    #[test]
    fn unterminated_string_swallows_the_rest() {
        let input = b"{\"a\": \"open\nstill\nsame doc";
        assert_eq!(lines(input), [&input[..]]);
    }

    /// The shared oracle: for a corpus of tricky inputs and every chunk
    /// granularity, the incremental framer must produce exactly the
    /// documents the one-shot splitter does. This is the batch/serve
    /// parity contract the serve layer leans on.
    #[test]
    fn framer_matches_splitter_for_all_chunk_plans() {
        let corpus: &[&[u8]] = &[
            b"{\"a\":1}\n[2,3]\ntrue",
            b"\n\n{\"a\":1}\n   \n\t\n",
            b"",
            b"\n",
            b"{\"a\":1}\r\n{\"b\":2}\r\n",
            b"{\"a\": \"x\ny\"}\n{\"b\": 2}",
            b"{\"a\": \"x\\\"\n\"}\n[1]",
            b"{\"a\": \"}{][\"}\n{\"b\": 1}",
            b"{\"a\": \"x\\\\\"}\n[2]",
            b"{\"a\": \"open\nstill\nsame doc",
            b"no newline at end",
            b"trailing cr\r",
            b"\r\n\r\n{\"x\": \"\\r\\n\"}\r\n",
            b"{\"s\": \"a\\\\\\\"b\"}\n{\"t\": 1}\n",
        ];
        for input in corpus {
            let expect: Vec<Vec<u8>> = split_ndjson(input)
                .into_iter()
                .map(|r| input[r].to_vec())
                .collect();
            for step in 1..=input.len().max(1) {
                let got: Vec<Vec<u8>> = frames(input, step, None)
                    .into_iter()
                    .map(|f| match f {
                        Frame::Doc(d) => d,
                        Frame::Oversize { .. } => panic!("no cap set, no oversize"),
                    })
                    .collect();
                assert_eq!(got, expect, "input {input:?} step {step}");
            }
        }
    }

    #[test]
    fn framer_caps_memory_and_reports_oversize() {
        let long_line: &[u8] = b"{\"long\": \"xxxxxxxxxxxxxxxxxxxxxxxx\"}";
        let mut input = b"{\"short\": 1}\n".to_vec();
        input.extend_from_slice(long_line);
        input.extend_from_slice(b"\n[7]\n");
        for step in [1, 3, input.len()] {
            let got = frames(&input, step, Some(16));
            assert_eq!(
                got,
                vec![
                    Frame::Doc(b"{\"short\": 1}".to_vec()),
                    Frame::Oversize {
                        bytes_seen: long_line.len() as u64,
                        limit: 16
                    },
                    Frame::Doc(b"[7]".to_vec()),
                ],
                "step {step}"
            );
        }
    }

    #[test]
    fn framer_never_buffers_more_than_cap() {
        let mut framer = NdjsonFramer::new(Some(8));
        let mut sink = Vec::new();
        for _ in 0..1000 {
            framer.push(b"xxxxxxxxxxxxxxxx", &mut |f| sink.push(f));
            assert!(framer.buffered() <= 8 + 1, "buffered {}", framer.buffered());
        }
        assert!(sink.is_empty(), "line never closed");
        assert_eq!(
            framer.finish(),
            Some(Frame::Oversize {
                bytes_seen: 16_000,
                limit: 8
            })
        );
    }

    #[test]
    fn oversize_whitespace_only_line_is_skipped() {
        // The splitter would skip it; an Oversize error here would break
        // batch/serve parity.
        let input = b"                \n[1]\n";
        assert_eq!(frames(input, 1, Some(4)), vec![Frame::Doc(b"[1]".to_vec())]);
    }

    #[test]
    fn finish_resets_for_reuse() {
        let mut framer = NdjsonFramer::new(None);
        let mut out = Vec::new();
        framer.push(b"{\"a\": \"open", &mut |f| out.push(f));
        assert_eq!(
            framer.finish(),
            Some(Frame::Doc(b"{\"a\": \"open".to_vec()))
        );
        // The unterminated string must not leak into the next stream.
        framer.push(b"[1]\n", &mut |f| out.push(f));
        assert_eq!(out, vec![Frame::Doc(b"[1]".to_vec())]);
        assert_eq!(framer.finish(), None);
    }

    #[test]
    fn exact_cap_length_line_is_not_oversize() {
        let input = b"[1,2,34]\n";
        assert_eq!(
            frames(input, 1, Some(8)),
            vec![Frame::Doc(b"[1,2,34]".to_vec())]
        );
        assert!(matches!(
            frames(b"[1,2,345]\n", 1, Some(8)).as_slice(),
            [Frame::Oversize {
                bytes_seen: 9,
                limit: 8
            }]
        ));
    }
}
