//! Quote-aware NDJSON splitting.
//!
//! NDJSON (newline-delimited JSON) carries one document per line. A
//! syntactically valid JSON document cannot contain a raw newline inside
//! a string (control characters must be escaped), but a batch layer that
//! serves untrusted corpora cannot assume validity: a lenient engine run
//! over a document with a raw `\n` inside a string must still see the
//! same bytes the producer wrote. The splitter therefore scans with the
//! same quote/escape automaton the engine's scalar paths use — a `"`
//! toggles string state unless preceded by an odd run of backslashes —
//! and treats a newline as a document boundary *only outside strings*.
//! Braces, brackets, and anything else inside strings never confuse it,
//! because it never looks at them.
//!
//! Blank lines (empty or whitespace-only) are skipped; a trailing `\r`
//! (CRLF input) is trimmed from each document. Offsets returned are
//! ranges into the original buffer, so callers can borrow each document
//! as a subslice without copying.

use std::ops::Range;

/// Splits an NDJSON buffer into one byte range per document.
///
/// Newlines inside JSON strings (tracked with a quote/escape scan) do
/// not split; blank lines are skipped; a trailing `\r` is trimmed from
/// each line. An unterminated string swallows the rest of the input into
/// the final document — deterministic, and the lenient engine will
/// process it best-effort like any other malformed input.
///
/// # Examples
///
/// ```
/// let input = b"{\"a\": 1}\n\n{\"b\": \"x\\ny\"}\n";
/// let docs = rsq_batch::split_ndjson(input);
/// assert_eq!(docs.len(), 2);
/// assert_eq!(&input[docs[0].clone()], b"{\"a\": 1}");
/// ```
#[must_use]
pub fn split_ndjson(input: &[u8]) -> Vec<Range<usize>> {
    let mut docs = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in input.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'\n' => {
                push_line(input, start, i, &mut docs);
                start = i + 1;
            }
            _ => {}
        }
    }
    push_line(input, start, input.len(), &mut docs);
    docs
}

/// Appends `input[start..end]` (trailing `\r` trimmed) unless the line is
/// blank.
fn push_line(input: &[u8], start: usize, mut end: usize, docs: &mut Vec<Range<usize>>) {
    if end > start && input[end - 1] == b'\r' {
        end -= 1;
    }
    if input[start..end].iter().any(|b| !b.is_ascii_whitespace()) {
        docs.push(start..end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(input: &[u8]) -> Vec<&[u8]> {
        split_ndjson(input).into_iter().map(|r| &input[r]).collect()
    }

    #[test]
    fn plain_lines_split_on_newlines() {
        assert_eq!(
            lines(b"{\"a\":1}\n[2,3]\ntrue"),
            [&b"{\"a\":1}"[..], b"[2,3]", b"true"]
        );
    }

    #[test]
    fn blank_lines_and_trailing_newline_are_skipped() {
        assert_eq!(lines(b"\n\n{\"a\":1}\n   \n\t\n"), [&b"{\"a\":1}"[..]]);
        assert_eq!(lines(b""), Vec::<&[u8]>::new());
        assert_eq!(lines(b"\n"), Vec::<&[u8]>::new());
    }

    #[test]
    fn crlf_is_trimmed() {
        assert_eq!(
            lines(b"{\"a\":1}\r\n{\"b\":2}\r\n"),
            [&b"{\"a\":1}"[..], b"{\"b\":2}"]
        );
    }

    #[test]
    fn newline_inside_string_does_not_split() {
        let input = b"{\"a\": \"x\ny\"}\n{\"b\": 2}";
        assert_eq!(lines(input), [&b"{\"a\": \"x\ny\"}"[..], b"{\"b\": 2}"]);
    }

    #[test]
    fn escaped_quote_keeps_string_open_across_newline() {
        // The string `"x\"` is still open at the newline: no split there.
        let input = b"{\"a\": \"x\\\"\n\"}\n[1]";
        assert_eq!(lines(input), [&b"{\"a\": \"x\\\"\n\"}"[..], b"[1]"]);
    }

    #[test]
    fn braces_inside_strings_are_ignored() {
        let input = b"{\"a\": \"}{][\"}\n{\"b\": 1}";
        assert_eq!(lines(input), [&b"{\"a\": \"}{][\"}"[..], b"{\"b\": 1}"]);
    }

    #[test]
    fn even_backslash_run_closes_string() {
        // `"x\\"` — the backslash is itself escaped, the quote closes.
        let input = b"{\"a\": \"x\\\\\"}\n[2]";
        assert_eq!(lines(input), [&b"{\"a\": \"x\\\\\"}"[..], b"[2]"]);
    }

    #[test]
    fn unterminated_string_swallows_the_rest() {
        let input = b"{\"a\": \"open\nstill\nsame doc";
        assert_eq!(lines(input), [&input[..]]);
    }
}
