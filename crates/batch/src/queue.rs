//! Atomic chunk-claiming work queue.
//!
//! The batch layer shards a corpus of `total` documents across workers
//! without any locks or channels: the queue is a single [`AtomicUsize`]
//! cursor into the index space `0..total`, and each worker claims the
//! next `chunk` indices with one `fetch_add`. Claiming in chunks (rather
//! than one document at a time) amortizes the atomic traffic while
//! keeping load balancing fine-grained — a worker stuck on a pathological
//! document only delays the chunk it already holds, and the rest of the
//! corpus drains through the other workers.
//!
//! Determinism does not depend on the queue at all: workers tag every
//! result with its document index and the merge step orders by index, so
//! any interleaving of claims produces byte-identical output.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A lock-free claim queue over the document index space `0..total`.
#[derive(Debug)]
pub(crate) struct WorkQueue {
    next: AtomicUsize,
    total: usize,
    chunk: usize,
    claims: AtomicU64,
}

impl WorkQueue {
    /// A queue over `total` documents handing out `chunk`-sized ranges
    /// (`chunk` is clamped to at least 1).
    pub(crate) fn new(total: usize, chunk: usize) -> Self {
        WorkQueue {
            next: AtomicUsize::new(0),
            total,
            chunk: chunk.max(1),
            claims: AtomicU64::new(0),
        }
    }

    /// Picks a chunk size for `total` documents on `threads` workers:
    /// roughly four claims per worker for balance, capped at 32 so a
    /// straggler never holds a large tail, floored at 1.
    pub(crate) fn auto_chunk(total: usize, threads: usize) -> usize {
        let per_claim = total / (threads.max(1) * 4);
        per_claim.clamp(1, 32)
    }

    /// Claims the next range of document indices, or `None` when the
    /// corpus is exhausted. Each index is handed out exactly once.
    pub(crate) fn claim(&self) -> Option<Range<usize>> {
        // fetch_add hands each caller a disjoint starting point; the
        // cursor may run past `total` (by < chunk per late claimer) but
        // the range end is clamped, so no index is issued twice or
        // out of bounds.
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        self.claims.fetch_add(1, Ordering::Relaxed);
        Some(start..(start + self.chunk).min(self.total))
    }

    /// Number of successful claims so far (the `queue_claims` counter).
    pub(crate) fn claims(&self) -> u64 {
        self.claims.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn covers_every_index_exactly_once() {
        let queue = WorkQueue::new(10, 3);
        let mut seen = Vec::new();
        while let Some(range) = queue.claim() {
            seen.extend(range);
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(queue.claims(), 4); // 3+3+3+1
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let queue = WorkQueue::new(0, 8);
        assert!(queue.claim().is_none());
        assert_eq!(queue.claims(), 0);
    }

    #[test]
    fn chunk_zero_is_clamped() {
        let queue = WorkQueue::new(2, 0);
        assert_eq!(queue.claim(), Some(0..1));
        assert_eq!(queue.claim(), Some(1..2));
        assert!(queue.claim().is_none());
    }

    #[test]
    fn auto_chunk_bounds() {
        assert_eq!(WorkQueue::auto_chunk(0, 4), 1);
        assert_eq!(WorkQueue::auto_chunk(10, 0), 2); // threads clamped to 1
        assert_eq!(WorkQueue::auto_chunk(1_000_000, 2), 32);
        assert_eq!(WorkQueue::auto_chunk(64, 4), 4);
    }

    #[test]
    fn concurrent_claims_partition_the_space() {
        let queue = WorkQueue::new(1000, 7);
        let seen = Mutex::new(vec![false; 1000]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(range) = queue.claim() {
                        let mut seen = seen.lock().unwrap();
                        for i in range {
                            assert!(!seen[i], "index {i} claimed twice");
                            seen[i] = true;
                        }
                    }
                });
            }
        });
        assert!(seen.into_inner().unwrap().into_iter().all(|b| b));
    }
}
