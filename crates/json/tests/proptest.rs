//! Property tests for the JSON substrate: generated DOMs must round-trip
//! through serialization and parsing, and the streaming statistics must
//! agree with the DOM.

use proptest::prelude::*;
use rsq_json::{document_stats, parse, to_string, to_string_pretty, ValueKind, ValueNode};

/// Strategy producing arbitrary JSON *text* by generating a DOM first.
fn arb_value() -> impl Strategy<Value = ValueNode> {
    let leaf = prop_oneof![
        Just(ValueKind::Null),
        any::<bool>().prop_map(ValueKind::Bool),
        (-1000i64..1000).prop_map(|n| ValueKind::Number(rsq_json::Number::from_raw(n.to_string()))),
        "[a-z :,{}\\[\\]]{0,12}".prop_map(|s| {
            let mut raw = String::new();
            rsq_json::escape_into(&s, &mut raw);
            ValueKind::String(raw)
        }),
    ]
    .prop_map(|kind| ValueNode {
        kind,
        span: rsq_json::Span { start: 0, end: 0 },
    });
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(|items| ValueNode {
                kind: ValueKind::Array(items),
                span: rsq_json::Span { start: 0, end: 0 },
            }),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..6).prop_map(|members| {
                ValueNode {
                    kind: ValueKind::Object(
                        members
                            .into_iter()
                            .map(|(k, v)| {
                                (
                                    rsq_json::Key {
                                        text: k,
                                        span: rsq_json::Span { start: 0, end: 0 },
                                    },
                                    v,
                                )
                            })
                            .collect(),
                    ),
                    span: rsq_json::Span { start: 0, end: 0 },
                }
            }),
        ]
    })
}

proptest! {
    #[test]
    fn serialize_parse_round_trip(value in arb_value()) {
        let text = to_string(&value);
        let reparsed = parse(text.as_bytes()).unwrap();
        prop_assert_eq!(to_string(&reparsed), text);
    }

    #[test]
    fn pretty_and_compact_agree(value in arb_value()) {
        let compact = to_string(&value);
        let pretty = to_string_pretty(&value);
        let from_pretty = parse(pretty.as_bytes()).unwrap();
        prop_assert_eq!(to_string(&from_pretty), compact);
    }

    #[test]
    fn stats_agree_with_dom(value in arb_value()) {
        let text = to_string(&value);
        let dom = parse(text.as_bytes()).unwrap();
        let stats = document_stats(text.as_bytes());
        prop_assert_eq!(stats.node_count, dom.node_count());
        prop_assert_eq!(stats.max_depth, dom.depth());
        prop_assert_eq!(stats.size_bytes, text.len());
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse(&bytes);
    }

    #[test]
    fn unescape_escape_round_trip(s in "\\PC{0,32}") {
        let mut raw = String::new();
        rsq_json::escape_into(&s, &mut raw);
        prop_assert_eq!(rsq_json::unescape(&raw).unwrap(), s);
    }
}
