//! JSON string escaping and unescaping.

use std::fmt;

/// Error returned by [`unescape`] for malformed escape sequences.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnescapeError {
    /// Byte offset of the offending escape within the raw string.
    pub offset: usize,
    /// Human-readable description.
    pub message: &'static str,
}

impl fmt::Display for UnescapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid escape at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for UnescapeError {}

/// Decodes a *raw* JSON string (the text between the quotes) into its
/// actual content, resolving backslash escapes including `\uXXXX` and
/// UTF-16 surrogate pairs.
///
/// # Errors
///
/// Returns [`UnescapeError`] on truncated or invalid escapes and unpaired
/// surrogates.
///
/// # Examples
///
/// ```
/// assert_eq!(rsq_json::unescape(r#"a\"bA\n"#).unwrap(), "a\"bA\n");
/// ```
pub fn unescape(raw: &str) -> Result<String, UnescapeError> {
    let bytes = raw.as_bytes();
    let mut out = String::with_capacity(raw.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b != b'\\' {
            // Copy a whole UTF-8 character.
            let ch_len = utf8_len(b);
            let end = (i + ch_len).min(bytes.len());
            out.push_str(&raw[i..end]);
            i = end;
            continue;
        }
        let esc = *bytes.get(i + 1).ok_or(UnescapeError {
            offset: i,
            message: "truncated escape",
        })?;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = parse_hex4(raw, i + 2)?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must be followed by \uDC00..=\uDFFF.
                    if bytes.get(i + 6) != Some(&b'\\') || bytes.get(i + 7) != Some(&b'u') {
                        return Err(UnescapeError {
                            offset: i,
                            message: "unpaired high surrogate",
                        });
                    }
                    let lo = parse_hex4(raw, i + 8)?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(UnescapeError {
                            offset: i,
                            message: "invalid low surrogate",
                        });
                    }
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    // PANIC-OK: surrogate-pair arithmetic lands in the supplementary planes, always a valid char
                    out.push(char::from_u32(c).expect("valid supplementary code point"));
                    i += 12;
                    continue;
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(UnescapeError {
                        offset: i,
                        message: "unpaired low surrogate",
                    });
                } else {
                    // PANIC-OK: hi was checked not to be a surrogate, so from_u32 succeeds
                    out.push(char::from_u32(hi).expect("valid BMP code point"));
                    i += 6;
                    continue;
                }
            }
            _ => {
                return Err(UnescapeError {
                    offset: i,
                    message: "unknown escape character",
                })
            }
        }
        i += 2;
    }
    Ok(out)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_hex4(raw: &str, at: usize) -> Result<u32, UnescapeError> {
    let hex = raw.as_bytes().get(at..at + 4).ok_or(UnescapeError {
        offset: at,
        message: "truncated \\u escape",
    })?;
    let hex = std::str::from_utf8(hex).map_err(|_| UnescapeError {
        offset: at,
        message: "non-ASCII in \\u escape",
    })?;
    u32::from_str_radix(hex, 16).map_err(|_| UnescapeError {
        offset: at,
        message: "invalid hex in \\u escape",
    })
}

/// Appends `text` to `out` with JSON string escaping applied (quotes are
/// *not* added).
///
/// Escapes `"`, `\`, and control characters; everything else is copied
/// verbatim (JSON permits raw UTF-8).
///
/// # Examples
///
/// ```
/// let mut out = String::new();
/// rsq_json::escape_into("a\"b\n", &mut out);
/// assert_eq!(out, r#"a\"b\n"#);
/// ```
pub fn escape_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unescape_simple_escapes() {
        assert_eq!(unescape(r"a\tb\nc").unwrap(), "a\tb\nc");
        assert_eq!(unescape(r"\\\/\b\f\r").unwrap(), "\\/\u{8}\u{c}\r");
        assert_eq!(unescape("plain").unwrap(), "plain");
        assert_eq!(unescape("").unwrap(), "");
    }

    #[test]
    fn unescape_unicode_and_surrogates() {
        assert_eq!(unescape("\\u0041").unwrap(), "A");
        assert_eq!(unescape("\\ud83d\\ude00").unwrap(), "😀");
        assert_eq!(unescape("żółć").unwrap(), "żółć");
    }

    #[test]
    fn unescape_errors() {
        assert!(unescape(r"\q").is_err());
        assert!(unescape("\\").is_err());
        assert!(unescape(r"\u12").is_err());
        assert!(unescape(r"\ud800").is_err());
        assert!(unescape(r"\ude00").is_err());
        assert!(unescape(r"\ud800A").is_err());
    }

    #[test]
    fn escape_round_trips() {
        for s in ["", "plain", "a\"b", "tab\tnl\n", "ctrl\u{1}", "uni żółć 😀"] {
            let mut raw = String::new();
            escape_into(s, &mut raw);
            assert_eq!(unescape(&raw).unwrap(), s, "through {raw:?}");
        }
    }
}
