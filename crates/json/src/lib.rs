//! JSON document model and span-tracking parser.
//!
//! This crate is the *substrate* for the `rsq` reproduction of
//! *Supporting Descendants in SIMD-Accelerated JSONPath* (ASPLOS 2023):
//! it provides the DOM that the reference (oracle) JSONPath engine
//! evaluates over, the serializer used to round-trip documents in tests,
//! and streaming document statistics (size, depth, verbosity) matching
//! Table 3 of the paper.
//!
//! The streaming engines in `rsq-engine` and `rsq-baselines` never build a
//! DOM — that is the point of the paper. The DOM here exists so that
//! differential tests have an independent, obviously-correct semantics to
//! compare against.
//!
//! Strings and object keys are stored *raw* (the bytes between the quotes,
//! escapes undecoded). JSONPath label matching in the paper's engine
//! compares raw label bytes against raw query bytes, so the oracle must do
//! the same for differential testing to be exact. Use
//! [`unescape`] to decode a raw string when the actual text is needed.
//!
//! # Examples
//!
//! ```
//! use rsq_json::{parse, ValueKind};
//!
//! let doc = parse(br#"{"a": [1, true, "x"]}"#)?;
//! let ValueKind::Object(members) = &doc.kind else { panic!() };
//! assert_eq!(members[0].0.text, "a");
//! assert_eq!(doc.span.start, 0);
//! # Ok::<(), rsq_json::ParseError>(())
//! ```

#![warn(missing_docs)]

mod extract;
mod parser;
mod serialize;
mod stats;
mod strings;

pub use extract::{node_span, node_text};
pub use parser::{parse, parse_with_options, ParseError, ParseOptions};
pub use serialize::{to_string, to_string_pretty};
pub use stats::{document_stats, DocumentStats};
pub use strings::{escape_into, unescape, UnescapeError};

/// A byte range `[start, end)` in the source document.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// Offset of the first byte of the value.
    pub start: usize,
    /// Offset one past the last byte of the value.
    pub end: usize,
}

impl Span {
    /// Length of the span in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the span is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// An object key: raw text (escapes undecoded) plus the span of the quoted
/// key token in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Key {
    /// The raw bytes between the quotes, as they appear in the source.
    pub text: String,
    /// Span of the key *including* the surrounding quotes.
    pub span: Span,
}

/// A parsed JSON value together with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct ValueNode {
    /// The value itself.
    pub kind: ValueKind,
    /// Byte range of the value's text in the source document.
    pub span: Span,
}

/// The kinds of JSON values.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueKind {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// A number; the raw source text is kept for lossless round-trips.
    Number(Number),
    /// A string; raw content between the quotes, escapes undecoded.
    String(String),
    /// An array of values.
    Array(Vec<ValueNode>),
    /// An object: ordered members, duplicate keys preserved.
    Object(Vec<(Key, ValueNode)>),
}

/// A JSON number, stored as its raw source text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Number {
    raw: String,
}

impl Number {
    /// Creates a number from raw JSON text.
    ///
    /// The caller is responsible for the text being a valid JSON number;
    /// the parser always upholds this.
    #[must_use]
    pub fn from_raw(raw: String) -> Self {
        Number { raw }
    }

    /// The raw source text of the number.
    #[must_use]
    pub fn as_raw(&self) -> &str {
        &self.raw
    }

    /// The number as an `f64` (lossy for very large integers).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        self.raw.parse().unwrap_or(f64::NAN)
    }

    /// The number as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        self.raw.parse().ok()
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.raw)
    }
}

impl ValueNode {
    /// Iterates over the direct subdocuments (children) of this value:
    /// object member values and array entries.
    pub fn children(&self) -> impl Iterator<Item = &ValueNode> {
        let (arr, obj) = match &self.kind {
            ValueKind::Array(items) => (Some(items.iter()), None),
            ValueKind::Object(members) => (None, Some(members.iter().map(|(_, v)| v))),
            _ => (None, None),
        };
        arr.into_iter().flatten().chain(obj.into_iter().flatten())
    }

    /// Returns `true` for atomic values (strings, numbers, booleans, null).
    #[must_use]
    pub fn is_atom(&self) -> bool {
        !matches!(self.kind, ValueKind::Array(_) | ValueKind::Object(_))
    }

    /// Total number of nodes in the subtree rooted here (this node
    /// included).
    #[must_use]
    pub fn node_count(&self) -> usize {
        1 + match &self.kind {
            ValueKind::Array(items) => items.iter().map(ValueNode::node_count).sum(),
            ValueKind::Object(members) => members.iter().map(|(_, v)| v.node_count()).sum(),
            _ => 0,
        }
    }

    /// Maximum nesting depth of the subtree (an atom has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        1 + match &self.kind {
            ValueKind::Array(items) => items.iter().map(ValueNode::depth).max().unwrap_or(0),
            ValueKind::Object(members) => members.iter().map(|(_, v)| v.depth()).max().unwrap_or(0),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_accessors() {
        let n = Number::from_raw("-12.5e2".to_owned());
        assert_eq!(n.as_raw(), "-12.5e2");
        assert_eq!(n.as_f64(), -1250.0);
        assert_eq!(n.as_i64(), None);
        assert_eq!(Number::from_raw("42".into()).as_i64(), Some(42));
        assert_eq!(n.to_string(), "-12.5e2");
    }

    #[test]
    fn children_of_each_kind() {
        let doc = parse(br#"{"a": 1, "b": [2, 3]}"#).unwrap();
        assert_eq!(doc.children().count(), 2);
        let arr = doc.children().nth(1).unwrap();
        assert_eq!(arr.children().count(), 2);
        assert!(arr.children().all(ValueNode::is_atom));
    }

    #[test]
    fn node_count_and_depth() {
        let doc = parse(br#"{"a": {"b": [1, 2]}}"#).unwrap();
        // object, object, array, 1, 2
        assert_eq!(doc.node_count(), 5);
        assert_eq!(doc.depth(), 4);
        let atom = parse(b"42").unwrap();
        assert_eq!(atom.node_count(), 1);
        assert_eq!(atom.depth(), 1);
    }

    #[test]
    fn span_len() {
        let s = Span { start: 3, end: 10 };
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
    }
}
