//! Streaming document statistics (Table 3 of the paper).
//!
//! Computes size, maximum depth, node count, and *verbosity* — the ratio
//! of document size to the number of nodes in the underlying tree ("the
//! lower the verbosity, the harder it is to achieve high throughput",
//! §5.3) — in a single scalar pass without building a DOM.

/// Statistics of a JSON document, as reported in Table 3 of the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DocumentStats {
    /// Document size in bytes.
    pub size_bytes: usize,
    /// Maximum nesting depth (an atomic document has depth 1).
    pub max_depth: usize,
    /// Number of nodes in the document tree (atoms, arrays, objects).
    pub node_count: usize,
}

impl DocumentStats {
    /// Size in megabytes (10^6 bytes, as in the paper's Table 3).
    #[must_use]
    pub fn size_mb(&self) -> f64 {
        self.size_bytes as f64 / 1_000_000.0
    }

    /// Verbosity: bytes per tree node.
    #[must_use]
    pub fn verbosity(&self) -> f64 {
        if self.node_count == 0 {
            0.0
        } else {
            self.size_bytes as f64 / self.node_count as f64
        }
    }
}

/// Computes [`DocumentStats`] for a (syntactically valid) JSON document in
/// one pass.
///
/// The input is assumed to be valid JSON; malformed input yields
/// unspecified (but memory-safe) statistics.
///
/// # Examples
///
/// ```
/// let stats = rsq_json::document_stats(br#"{"a": [1, 2]}"#);
/// assert_eq!(stats.max_depth, 3);   // object -> array -> atom
/// assert_eq!(stats.node_count, 4);  // the object, the array, 1, and 2
/// ```
#[must_use]
pub fn document_stats(input: &[u8]) -> DocumentStats {
    let mut depth = 0usize;
    let mut max_depth = 0usize;
    let mut node_count = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    // True when the previous non-whitespace, non-structural position was
    // inside an atom already counted.
    let mut in_atom = false;

    for &b in input {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => {
                in_string = true;
                // A string might be an object key; keys are followed by a
                // colon. We cannot know yet, so strings are counted lazily:
                // count it now, and uncount if a colon follows.
                node_count += 1;
                in_atom = false;
            }
            b':' => {
                // The preceding string was a key, not a value node.
                node_count -= 1;
            }
            b'{' | b'[' => {
                node_count += 1;
                depth += 1;
                max_depth = max_depth.max(depth);
                in_atom = false;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                in_atom = false;
            }
            b',' => in_atom = false,
            b' ' | b'\t' | b'\n' | b'\r' => in_atom = false,
            _ => {
                // Part of a number / true / false / null literal.
                if !in_atom {
                    node_count += 1;
                    in_atom = true;
                }
            }
        }
    }
    // Atoms nested in containers sit one level deeper than the container,
    // matching `ValueNode::depth` which counts an atom as depth 1.
    let has_atom_leaves = node_count > 0;
    DocumentStats {
        size_bytes: input.len(),
        max_depth: if has_atom_leaves {
            depth_with_leaves(input, max_depth)
        } else {
            0
        },
        node_count,
    }
}

/// The DOM's notion of depth counts atoms as an extra level; a container
/// document with any direct or nested atom inside containers at depth `d`
/// has DOM depth `d + 1` when the deepest node is an atom. Computing this
/// exactly in one pass: track the maximum of (container depth at each
/// atom + 1) and container depth itself.
fn depth_with_leaves(input: &[u8], container_max: usize) -> usize {
    let mut depth = 0usize;
    let mut best = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut prev_nonws: u8 = 0;
    for &b in input {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
                prev_nonws = b'"';
            }
            continue;
        }
        match b {
            b'"' => {
                in_string = true;
                // Potential atom at depth + 1; corrected below if it turns
                // out to be a key (next non-ws char is ':').
                best = best.max(depth + 1);
            }
            b'{' | b'[' => {
                depth += 1;
                best = best.max(depth);
                prev_nonws = b;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                prev_nonws = b;
            }
            b' ' | b'\t' | b'\n' | b'\r' => {}
            b':' | b',' => prev_nonws = b,
            _ => {
                best = best.max(depth + 1);
                prev_nonws = b;
            }
        }
    }
    let _ = prev_nonws;
    best.max(container_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn check_against_dom(text: &str) {
        let stats = document_stats(text.as_bytes());
        let dom = parse(text.as_bytes()).unwrap();
        assert_eq!(stats.node_count, dom.node_count(), "node count for {text}");
        assert_eq!(stats.max_depth, dom.depth(), "depth for {text}");
        assert_eq!(stats.size_bytes, text.len());
    }

    #[test]
    fn matches_dom_on_examples() {
        for text in [
            "42",
            "\"str\"",
            "[]",
            "{}",
            "[1, 2, 3]",
            r#"{"a": 1}"#,
            r#"{"a": {"b": [1, "x", {"c": null}]}, "d": true}"#,
            r#"[[[["deep"]]]]"#,
            r#"{"s": "a,b:c{d}[e]\" f"}"#,
            r#"{"k1": "v1", "k2": "v2"}"#,
        ] {
            check_against_dom(text);
        }
    }

    #[test]
    fn verbosity_is_bytes_per_node() {
        let stats = document_stats(br#"[1,2,3,4]"#);
        assert_eq!(stats.node_count, 5);
        assert!((stats.verbosity() - 9.0 / 5.0).abs() < 1e-9);
        assert!((stats.size_mb() - 9e-6).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let stats = document_stats(b"");
        assert_eq!(stats.node_count, 0);
        assert_eq!(stats.max_depth, 0);
        assert_eq!(stats.verbosity(), 0.0);
    }
}
