//! Serialization of [`ValueNode`] trees back to JSON text.

use crate::{ValueKind, ValueNode};

/// Serializes a value to compact JSON (no whitespace).
///
/// Raw string and number storage makes this an exact inverse of
/// [`crate::parse`] for documents without inter-token whitespace.
///
/// # Examples
///
/// ```
/// let doc = rsq_json::parse(br#" { "a" : [ 1 , 2 ] } "#)?;
/// assert_eq!(rsq_json::to_string(&doc), r#"{"a":[1,2]}"#);
/// # Ok::<(), rsq_json::ParseError>(())
/// ```
#[must_use]
pub fn to_string(value: &ValueNode) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

/// Serializes a value to indented JSON (two-space indent).
#[must_use]
pub fn to_string_pretty(value: &ValueNode) -> String {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    out
}

fn write_value(value: &ValueNode, out: &mut String) {
    match &value.kind {
        ValueKind::Null => out.push_str("null"),
        ValueKind::Bool(true) => out.push_str("true"),
        ValueKind::Bool(false) => out.push_str("false"),
        ValueKind::Number(n) => out.push_str(n.as_raw()),
        ValueKind::String(raw) => {
            out.push('"');
            out.push_str(raw);
            out.push('"');
        }
        ValueKind::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        ValueKind::Object(members) => {
            out.push('{');
            for (i, (key, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&key.text);
                out.push_str("\":");
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &ValueNode, indent: usize, out: &mut String) {
    match &value.kind {
        ValueKind::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        ValueKind::Object(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (key, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                out.push('"');
                out.push_str(&key.text);
                out.push_str("\": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        _ => write_value(value, out),
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_round_trip() {
        let cases = [
            r#"{"a":[1,2],"b":{"c":null},"d":"x\ny","e":-1.5e3,"f":true,"g":false}"#,
            r#"[]"#,
            r#"{}"#,
            r#"[[[]]]"#,
            r#""escaped \" quote""#,
        ];
        for text in cases {
            let doc = parse(text.as_bytes()).unwrap();
            assert_eq!(to_string(&doc), text);
        }
    }

    #[test]
    fn pretty_reparses_to_same_value() {
        let doc = parse(br#"{"a":[1,{"b":2}],"c":[]}"#).unwrap();
        let pretty = to_string_pretty(&doc);
        let reparsed = parse(pretty.as_bytes()).unwrap();
        assert_eq!(to_string(&reparsed), to_string(&doc));
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn pretty_empty_containers_stay_compact() {
        let doc = parse(br#"{"a":[],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&doc);
        assert!(pretty.contains("[]") && pretty.contains("{}"));
    }
}
