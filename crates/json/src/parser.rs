//! Recursive-descent JSON parser with byte-span tracking.

use crate::{Key, Number, Span, ValueKind, ValueNode};
use std::fmt;

/// Options controlling [`parse_with_options`].
#[derive(Clone, Copy, Debug)]
pub struct ParseOptions {
    /// Maximum nesting depth; exceeding it is a parse error rather than a
    /// stack overflow. The paper's deepest dataset (a clang AST) has depth
    /// around 100; the default of 2048 leaves ample headroom.
    pub max_depth: usize,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions { max_depth: 2048 }
    }
}

/// Error produced when parsing fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which the error was detected.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document with default options.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, trailing garbage, or
/// excessive nesting.
///
/// # Examples
///
/// ```
/// let doc = rsq_json::parse(b"[1, 2, 3]")?;
/// assert_eq!(doc.children().count(), 3);
/// # Ok::<(), rsq_json::ParseError>(())
/// ```
pub fn parse(input: &[u8]) -> Result<ValueNode, ParseError> {
    parse_with_options(input, ParseOptions::default())
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, trailing garbage, or nesting
/// deeper than [`ParseOptions::max_depth`].
pub fn parse_with_options(input: &[u8], options: ParseOptions) -> Result<ValueNode, ParseError> {
    let mut p = Parser {
        input,
        pos: 0,
        options,
    };
    p.skip_whitespace();
    let value = p.parse_value(1)?;
    p.skip_whitespace();
    if p.pos != p.input.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    options: ParseOptions,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<ValueNode, ParseError> {
        if depth > self.options.max_depth {
            return Err(self.error("maximum nesting depth exceeded"));
        }
        let start = self.pos;
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => self.parse_object(depth, start),
            Some(b'[') => self.parse_array(depth, start),
            Some(b'"') => {
                let raw = self.parse_string_raw()?;
                Ok(ValueNode {
                    kind: ValueKind::String(raw),
                    span: Span {
                        start,
                        end: self.pos,
                    },
                })
            }
            Some(b't') => self.parse_literal(b"true", ValueKind::Bool(true), start),
            Some(b'f') => self.parse_literal(b"false", ValueKind::Bool(false), start),
            Some(b'n') => self.parse_literal(b"null", ValueKind::Null, start),
            Some(b'-' | b'0'..=b'9') => self.parse_number(start),
            Some(c) => Err(self.error(format!("unexpected character {:?}", c as char))),
        }
    }

    fn parse_literal(
        &mut self,
        text: &'static [u8],
        kind: ValueKind,
        start: usize,
    ) -> Result<ValueNode, ParseError> {
        if self.input[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(ValueNode {
                kind,
                span: Span {
                    start,
                    end: self.pos,
                },
            })
        } else {
            Err(self.error(format!(
                "invalid literal (expected {})",
                // PANIC-OK: JSON literal names (true/false/null) are ASCII
                std::str::from_utf8(text).expect("literal is ASCII")
            )))
        }
    }

    /// Parses a quoted string token, returning the raw (undecoded) content
    /// between the quotes. Validates escape structure and that the bytes
    /// form valid UTF-8, but leaves escapes in place.
    fn parse_string_raw(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let content_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => break,
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.error("invalid \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
        let raw = std::str::from_utf8(&self.input[content_start..self.pos])
            .map_err(|_| self.error("string is not valid UTF-8"))?
            .to_owned();
        self.expect_byte(b'"')?;
        Ok(raw)
    }

    fn parse_number(&mut self, start: usize) -> Result<ValueNode, ParseError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // integer part
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        // fraction
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // exponent
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos])
            // PANIC-OK: every byte was range-checked as an ASCII digit/sign/dot/exponent
            .expect("number text is ASCII")
            .to_owned();
        Ok(ValueNode {
            kind: ValueKind::Number(Number::from_raw(raw)),
            span: Span {
                start,
                end: self.pos,
            },
        })
    }

    fn parse_array(&mut self, depth: usize, start: usize) -> Result<ValueNode, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(ValueNode {
                kind: ValueKind::Array(items),
                span: Span {
                    start,
                    end: self.pos,
                },
            });
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
        Ok(ValueNode {
            kind: ValueKind::Array(items),
            span: Span {
                start,
                end: self.pos,
            },
        })
    }

    fn parse_object(&mut self, depth: usize, start: usize) -> Result<ValueNode, ParseError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(ValueNode {
                kind: ValueKind::Object(members),
                span: Span {
                    start,
                    end: self.pos,
                },
            });
        }
        loop {
            self.skip_whitespace();
            let key_start = self.pos;
            let key_text = self.parse_string_raw()?;
            let key = Key {
                text: key_text,
                span: Span {
                    start: key_start,
                    end: self.pos,
                },
            };
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
        Ok(ValueNode {
            kind: ValueKind::Object(members),
            span: Span {
                start,
                end: self.pos,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(input: &str) -> ValueKind {
        parse(input.as_bytes()).unwrap().kind
    }

    #[test]
    fn parses_atoms() {
        assert_eq!(kind("null"), ValueKind::Null);
        assert_eq!(kind("true"), ValueKind::Bool(true));
        assert_eq!(kind("false"), ValueKind::Bool(false));
        assert_eq!(kind("\"hi\""), ValueKind::String("hi".into()));
        assert!(matches!(kind("-1.5e3"), ValueKind::Number(n) if n.as_f64() == -1500.0));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(br#" { "a" : [ 1 , { "b" : null } ] , "c" : "d" } "#).unwrap();
        let ValueKind::Object(members) = &doc.kind else {
            panic!()
        };
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].0.text, "a");
        assert_eq!(members[1].0.text, "c");
    }

    #[test]
    fn spans_point_at_source_text() {
        let text = br#"{"a": [10, 20]}"#;
        let doc = parse(text).unwrap();
        assert_eq!(
            doc.span,
            Span {
                start: 0,
                end: text.len()
            }
        );
        let ValueKind::Object(members) = &doc.kind else {
            panic!()
        };
        let arr = &members[0].1;
        assert_eq!(&text[arr.span.start..arr.span.end], b"[10, 20]");
        let ValueKind::Array(items) = &arr.kind else {
            panic!()
        };
        assert_eq!(&text[items[0].span.start..items[0].span.end], b"10");
        assert_eq!(&text[items[1].span.start..items[1].span.end], b"20");
    }

    #[test]
    fn keys_keep_raw_escapes() {
        let doc = parse(br#"{"a\"b": 1}"#).unwrap();
        let ValueKind::Object(members) = &doc.kind else {
            panic!()
        };
        assert_eq!(members[0].0.text, r#"a\"b"#);
    }

    #[test]
    fn duplicate_keys_are_preserved() {
        let doc = parse(br#"{"k": 1, "k": 2}"#).unwrap();
        let ValueKind::Object(members) = &doc.kind else {
            panic!()
        };
        assert_eq!(members.len(), 2);
    }

    #[test]
    fn paper_example_string_with_embedded_json() {
        // {"a":"{\"b\":2022}"} from §2 of the paper: the value is a string.
        let doc = parse(br#"{"a":"{\"b\":2022}"}"#).unwrap();
        let ValueKind::Object(members) = &doc.kind else {
            panic!()
        };
        assert_eq!(
            members[0].1.kind,
            ValueKind::String(r#"{\"b\":2022}"#.into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[",
            "]",
            "{]",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "1 2",
            "tru",
            "\"",
            "\"\\q\"",
            "01",
            "1.",
            "1e",
            "-",
            "+1",
            "\"\\u12g4\"",
            "{\"a\":1,}",
            "nan",
            "[1 2]",
            "\u{1}",
            "\"a\nb\"",
        ] {
            assert!(parse(bad.as_bytes()).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accepts_all_whitespace_forms() {
        assert!(parse(b" \t\r\n [ \t 1 , 2 \r\n ] \t ").is_ok());
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep: String = std::iter::repeat_n('[', 64)
            .chain(std::iter::repeat_n(']', 64))
            .collect();
        assert!(parse_with_options(deep.as_bytes(), ParseOptions { max_depth: 63 }).is_err());
        assert!(parse_with_options(deep.as_bytes(), ParseOptions { max_depth: 64 }).is_ok());
    }

    #[test]
    fn number_grammar_edge_cases() {
        for good in [
            "0",
            "-0",
            "0.5",
            "123e10",
            "1E-2",
            "1e+2",
            "9007199254740993",
        ] {
            assert!(parse(good.as_bytes()).is_ok(), "should accept {good}");
        }
    }

    #[test]
    fn utf8_strings_parse() {
        let doc = parse("\"żółć 😀\"".as_bytes()).unwrap();
        assert_eq!(doc.kind, ValueKind::String("żółć 😀".into()));
    }
}
