//! Span extraction without parsing: the byte range of a single node.
//!
//! The streaming engines report matches as byte offsets. Turning an
//! offset back into the matched node does not need a DOM — a
//! quote-aware bracket scan finds the end of the value — and every
//! value emitter (the CLI's default output mode, batch output, the
//! serve layer's value responses) uses this shared routine, so their
//! rendered output is identical by construction.
//!
//! [`node_span`] is the raw-passthrough primitive (DESIGN.md §15): it
//! returns the matched byte range so emitters can `write_all` the
//! document's own bytes, with no per-match UTF-8 validation and no
//! intermediate `String`. [`node_text`] layers the UTF-8 check on top
//! for callers that need `&str`.

use std::ops::Range;

/// Finds the byte range of the JSON value starting at `pos`.
///
/// Objects and arrays are scanned to their matching close bracket
/// (quote- and escape-aware, so brackets inside strings don't confuse
/// the scan); strings to their closing quote; scalars to the next
/// delimiter. Returns `None` when `pos` is out of bounds or the value
/// is unterminated. The returned range is absolute: index `document`
/// with it directly.
#[must_use]
pub fn node_span(document: &[u8], pos: usize) -> Option<Range<usize>> {
    let bytes = document.get(pos..)?;
    let len = match bytes.first()? {
        open @ (b'{' | b'[') => {
            let close = if *open == b'{' { b'}' } else { b']' };
            let open = *open;
            let mut depth = 0usize;
            let mut in_string = false;
            let mut escaped = false;
            let mut end = None;
            for (i, &b) in bytes.iter().enumerate() {
                if in_string {
                    if escaped {
                        escaped = false;
                    } else if b == b'\\' {
                        escaped = true;
                    } else if b == b'"' {
                        in_string = false;
                    }
                    continue;
                }
                if b == b'"' {
                    in_string = true;
                } else if b == open {
                    depth += 1;
                } else if b == close {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i + 1);
                        break;
                    }
                }
            }
            end?
        }
        b'"' => {
            let mut escaped = false;
            let mut end = None;
            for (i, &b) in bytes.iter().enumerate().skip(1) {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    end = Some(i + 1);
                    break;
                }
            }
            end?
        }
        _ => bytes
            .iter()
            .position(|&b| matches!(b, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r'))
            .unwrap_or(bytes.len()),
    };
    Some(pos..pos + len)
}

/// Extracts the text of the JSON value starting at `pos`.
///
/// [`node_span`] plus UTF-8 validation: returns `None` additionally
/// when the span is not valid UTF-8.
#[must_use]
pub fn node_text(document: &[u8], pos: usize) -> Option<&str> {
    let span = node_span(document, pos)?;
    // PANIC-OK: node_span ranges are in bounds of `document` by construction
    std::str::from_utf8(&document[span]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_each_value_shape() {
        let doc = br#"{"a": [1, {"b": "x]"}], "s": "q\"t", "n": 12.5}"#;
        assert_eq!(node_text(doc, 0), Some(std::str::from_utf8(doc).unwrap()));
        assert_eq!(node_text(doc, 6), Some(r#"[1, {"b": "x]"}]"#));
        assert_eq!(node_text(doc, 29), Some(r#""q\"t""#));
        assert_eq!(node_text(doc, 42), Some("12.5"));
    }

    #[test]
    fn spans_are_absolute_ranges() {
        let doc = br#"{"a": [1, {"b": "x]"}], "n": 12.5}"#;
        let span = node_span(doc, 6).unwrap();
        assert_eq!(span, 6..22);
        assert_eq!(&doc[span], br#"[1, {"b": "x]"}]"#);
        assert_eq!(node_span(doc, 0), Some(0..doc.len()));
    }

    #[test]
    fn span_ignores_invalid_utf8_that_text_rejects() {
        // A latin-1 byte inside a string: the span is found (raw
        // passthrough emits the document's own bytes), but `node_text`
        // refuses to call it a &str.
        let doc = b"{\"s\": \"caf\xe9\"}";
        assert_eq!(node_span(doc, 6), Some(6..12));
        assert_eq!(node_text(doc, 6), None);
    }

    #[test]
    fn unterminated_and_out_of_bounds_are_none() {
        assert_eq!(node_text(b"{\"a\": ", 0), None);
        assert_eq!(node_text(b"\"open", 0), None);
        assert_eq!(node_text(b"[1]", 99), None);
        assert_eq!(node_span(b"{\"a\": ", 0), None);
        assert_eq!(node_span(b"[1]", 99), None);
    }

    #[test]
    fn scalar_at_end_of_input() {
        assert_eq!(node_text(b"true", 0), Some("true"));
        assert_eq!(node_text(b"[1, 2]", 4), Some("2"));
        assert_eq!(node_span(b"[1, 2]", 4), Some(4..5));
    }
}
