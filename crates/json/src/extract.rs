//! Span extraction without parsing: the text of a single node.
//!
//! The streaming engines report matches as byte offsets. Turning an
//! offset back into the matched node's text does not need a DOM — a
//! quote-aware bracket scan finds the end of the value — and both the
//! CLI's default output mode and the serve layer's value responses use
//! this shared routine, so their rendered output is identical by
//! construction.

/// Extracts the text of the JSON value starting at `pos`.
///
/// Objects and arrays are scanned to their matching close bracket
/// (quote- and escape-aware, so brackets inside strings don't confuse
/// the scan); strings to their closing quote; scalars to the next
/// delimiter. Returns `None` when `pos` is out of bounds, the value is
/// unterminated, or the span is not valid UTF-8.
#[must_use]
pub fn node_text(document: &[u8], pos: usize) -> Option<&str> {
    let bytes = document.get(pos..)?;
    let end = match bytes.first()? {
        open @ (b'{' | b'[') => {
            let close = if *open == b'{' { b'}' } else { b']' };
            let open = *open;
            let mut depth = 0usize;
            let mut in_string = false;
            let mut escaped = false;
            let mut end = None;
            for (i, &b) in bytes.iter().enumerate() {
                if in_string {
                    if escaped {
                        escaped = false;
                    } else if b == b'\\' {
                        escaped = true;
                    } else if b == b'"' {
                        in_string = false;
                    }
                    continue;
                }
                if b == b'"' {
                    in_string = true;
                } else if b == open {
                    depth += 1;
                } else if b == close {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i + 1);
                        break;
                    }
                }
            }
            end?
        }
        b'"' => {
            let mut escaped = false;
            let mut end = None;
            for (i, &b) in bytes.iter().enumerate().skip(1) {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    end = Some(i + 1);
                    break;
                }
            }
            end?
        }
        _ => bytes
            .iter()
            .position(|&b| matches!(b, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r'))
            .unwrap_or(bytes.len()),
    };
    std::str::from_utf8(&bytes[..end]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_each_value_shape() {
        let doc = br#"{"a": [1, {"b": "x]"}], "s": "q\"t", "n": 12.5}"#;
        assert_eq!(node_text(doc, 0), Some(std::str::from_utf8(doc).unwrap()));
        assert_eq!(node_text(doc, 6), Some(r#"[1, {"b": "x]"}]"#));
        assert_eq!(node_text(doc, 29), Some(r#""q\"t""#));
        assert_eq!(node_text(doc, 42), Some("12.5"));
    }

    #[test]
    fn unterminated_and_out_of_bounds_are_none() {
        assert_eq!(node_text(b"{\"a\": ", 0), None);
        assert_eq!(node_text(b"\"open", 0), None);
        assert_eq!(node_text(b"[1]", 99), None);
    }

    #[test]
    fn scalar_at_end_of_input() {
        assert_eq!(node_text(b"true", 0), Some("true"));
        assert_eq!(node_text(b"[1, 2]", 4), Some("2"));
    }
}
