//! An inline-capacity vector that spills to the heap when it grows large.
//!
//! This crate is a from-scratch substitute for the `smallvec` crate, built
//! for the depth-stack of the `rsq` query engine (see §3.2 of *Supporting
//! Descendants in SIMD-Accelerated JSONPath*, ASPLOS 2023). The paper keeps
//! the depth-stack "on the actual stack of the executing thread as long as it
//! is relatively shallow (less than 128 elements, bounded by 512 bytes)" and
//! moves it to the heap only in the rare cases when it grows larger.
//!
//! [`StackVec<T, N>`] stores up to `N` elements inline (no allocation); the
//! first push beyond `N` moves the contents into a heap-allocated `Vec<T>`,
//! after which the vector behaves like an ordinary `Vec`. The vector never
//! moves back inline — spills are rare and oscillation would thrash.
//!
//! # Examples
//!
//! ```
//! use rsq_stackvec::StackVec;
//!
//! let mut v: StackVec<u32, 4> = StackVec::new();
//! v.push(1);
//! v.push(2);
//! assert_eq!(v.len(), 2);
//! assert!(!v.spilled());
//! v.extend([3, 4, 5]);
//! assert!(v.spilled()); // grew past the inline capacity of 4
//! assert_eq!(v.pop(), Some(5));
//! assert_eq!(&v[..], &[1, 2, 3, 4]);
//! ```

use core::fmt;
use core::mem::MaybeUninit;
use core::ops::{Deref, DerefMut};

/// A vector with inline storage for up to `N` elements, spilling to the heap
/// beyond that.
///
/// See the [crate-level documentation](crate) for an overview and examples.
pub struct StackVec<T, const N: usize> {
    repr: Repr<T, N>,
}

enum Repr<T, const N: usize> {
    Inline {
        buf: [MaybeUninit<T>; N],
        /// Number of initialized elements in `buf`; invariant: `len <= N`.
        len: usize,
    },
    Heap(Vec<T>),
}

impl<T, const N: usize> StackVec<T, N> {
    /// Creates an empty vector using inline storage.
    ///
    /// # Examples
    ///
    /// ```
    /// let v: rsq_stackvec::StackVec<u8, 16> = rsq_stackvec::StackVec::new();
    /// assert!(v.is_empty());
    /// ```
    #[inline]
    #[must_use]
    pub fn new() -> Self {
        StackVec {
            repr: Repr::Inline {
                // SAFETY: an array of `MaybeUninit` needs no initialization.
                buf: unsafe { MaybeUninit::uninit().assume_init() },
                len: 0,
            },
        }
    }

    /// Returns the number of elements in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Returns `true` if the vector contains no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` once the contents have moved to the heap.
    ///
    /// A fresh vector is inline; it spills on the first push past `N`
    /// elements and stays spilled from then on.
    #[inline]
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// The inline capacity `N`.
    #[inline]
    pub fn inline_capacity(&self) -> usize {
        N
    }

    /// Appends an element to the back of the vector, spilling to the heap if
    /// the inline buffer is full.
    #[inline]
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len < N {
                    buf[*len].write(value);
                    *len += 1;
                } else {
                    self.spill_and_push(value);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    #[cold]
    fn spill_and_push(&mut self, value: T) {
        let mut vec = Vec::with_capacity(N * 2);
        if let Repr::Inline { buf, len } = &mut self.repr {
            // Panic safety: zero `len` *before* moving anything out. If a
            // panic unwound mid-loop with `len` still set, `Drop` for
            // `StackVec` would drop slots whose contents were already
            // moved into `vec` — a double drop. With `len` zeroed first
            // the worst case is a leak of the not-yet-moved tail.
            let count = std::mem::take(len);
            for slot in buf.iter().take(count) {
                // SAFETY: the first `count` slots were initialized (they
                // were within the old `len`), and with `len` now 0 each is
                // read exactly once — nothing else will drop or read them.
                vec.push(unsafe { slot.assume_init_read() });
            }
        }
        vec.push(value);
        self.repr = Repr::Heap(vec);
    }

    /// Removes the last element and returns it, or `None` if empty.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    // SAFETY: slot `len` was initialized and is now
                    // logically out of bounds, so ownership moves out once.
                    Some(unsafe { buf[*len].assume_init_read() })
                }
            }
            Repr::Heap(v) => v.pop(),
        }
    }

    /// Returns a reference to the last element, or `None` if empty.
    #[inline]
    pub fn last(&self) -> Option<&T> {
        self.as_slice().last()
    }

    /// Returns a mutable reference to the last element, or `None` if empty.
    #[inline]
    pub fn last_mut(&mut self) -> Option<&mut T> {
        self.as_mut_slice().last_mut()
    }

    /// Shortens the vector to `new_len`, dropping excess elements.
    ///
    /// Has no effect if `new_len >= self.len()`.
    pub fn truncate(&mut self, new_len: usize) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                while *len > new_len {
                    *len -= 1;
                    // SAFETY: slot was initialized; drop it in place exactly once.
                    unsafe { buf[*len].assume_init_drop() };
                }
            }
            Repr::Heap(v) => v.truncate(new_len),
        }
    }

    /// Removes all elements.
    #[inline]
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Extracts a slice of the entire vector.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { buf, len } => {
                // SAFETY: the first `len` slots are initialized; MaybeUninit<T>
                // has the same layout as T.
                unsafe { core::slice::from_raw_parts(buf.as_ptr().cast::<T>(), *len) }
            }
            Repr::Heap(v) => v.as_slice(),
        }
    }

    /// Extracts a mutable slice of the entire vector.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                // SAFETY: as in `as_slice`, plus we hold `&mut self`.
                unsafe { core::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<T>(), *len) }
            }
            Repr::Heap(v) => v.as_mut_slice(),
        }
    }

    /// Returns an iterator over the elements.
    #[inline]
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T, const N: usize> Drop for StackVec<T, N> {
    fn drop(&mut self) {
        // Heap variant drops its Vec normally; inline elements need explicit drops.
        self.clear();
    }
}

impl<T, const N: usize> Default for StackVec<T, N> {
    #[inline]
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Deref for StackVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for StackVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Clone, const N: usize> Clone for StackVec<T, N> {
    fn clone(&self) -> Self {
        let mut out = Self::new();
        out.extend(self.iter().cloned());
        out
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for StackVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq, const N: usize, const M: usize> PartialEq<StackVec<T, M>> for StackVec<T, N> {
    fn eq(&self, other: &StackVec<T, M>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for StackVec<T, N> {}

impl<T, const N: usize> Extend<T> for StackVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for StackVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        out.extend(iter);
        out
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a StackVec<T, N> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cell::Cell;

    #[test]
    fn new_is_empty_and_inline() {
        let v: StackVec<i32, 4> = StackVec::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert!(!v.spilled());
        assert_eq!(v.inline_capacity(), 4);
    }

    #[test]
    fn push_pop_within_inline() {
        let mut v: StackVec<i32, 4> = StackVec::new();
        v.push(10);
        v.push(20);
        assert_eq!(v.len(), 2);
        assert_eq!(v.last(), Some(&20));
        assert_eq!(v.pop(), Some(20));
        assert_eq!(v.pop(), Some(10));
        assert_eq!(v.pop(), None);
        assert!(!v.spilled());
    }

    #[test]
    fn spills_exactly_past_capacity() {
        let mut v: StackVec<i32, 4> = StackVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        v.push(4);
        assert!(v.spilled());
        assert_eq!(&v[..], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn stays_spilled_after_pops() {
        let mut v: StackVec<i32, 2> = StackVec::new();
        v.extend([1, 2, 3]);
        assert!(v.spilled());
        v.pop();
        v.pop();
        v.pop();
        assert!(v.is_empty());
        assert!(v.spilled());
    }

    #[test]
    fn last_mut_mutates() {
        let mut v: StackVec<i32, 4> = StackVec::new();
        v.push(1);
        *v.last_mut().unwrap() = 7;
        assert_eq!(v.last(), Some(&7));
    }

    #[test]
    fn truncate_and_clear() {
        let mut v: StackVec<i32, 4> = StackVec::new();
        v.extend([1, 2, 3]);
        v.truncate(5); // no-op
        assert_eq!(v.len(), 3);
        v.truncate(1);
        assert_eq!(&v[..], &[1]);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn deref_slice_ops_work() {
        let mut v: StackVec<i32, 8> = StackVec::new();
        v.extend([3, 1, 2]);
        v.sort_unstable();
        assert_eq!(&v[..], &[1, 2, 3]);
        assert_eq!(v[1], 2);
    }

    #[test]
    fn clone_and_eq() {
        let mut v: StackVec<i32, 2> = StackVec::new();
        v.extend([1, 2, 3]);
        let w = v.clone();
        assert_eq!(v, w);
    }

    #[test]
    fn from_iterator_collects() {
        let v: StackVec<i32, 4> = (0..10).collect();
        assert_eq!(v.len(), 10);
        assert!(v.spilled());
    }

    #[test]
    fn debug_is_nonempty() {
        let v: StackVec<i32, 4> = (0..2).collect();
        assert_eq!(format!("{v:?}"), "[0, 1]");
        let e: StackVec<i32, 4> = StackVec::new();
        assert_eq!(format!("{e:?}"), "[]");
    }

    #[test]
    fn works_with_heap_owning_elements() {
        let mut v: StackVec<String, 2> = StackVec::new();
        v.push("a".to_owned());
        v.push("b".to_owned());
        v.push("c".to_owned()); // spill moves the Strings
        assert_eq!(v.as_slice(), ["a", "b", "c"]);
        assert_eq!(v.pop().as_deref(), Some("c"));
    }

    /// Counts drops to verify no element is dropped twice or leaked.
    struct DropCounter<'a>(&'a Cell<usize>);
    impl Drop for DropCounter<'_> {
        fn drop(&mut self) {
            self.0.set(self.0.get() + 1);
        }
    }

    #[test]
    fn drops_each_inline_element_once() {
        let drops = Cell::new(0);
        {
            let mut v: StackVec<DropCounter<'_>, 4> = StackVec::new();
            v.push(DropCounter(&drops));
            v.push(DropCounter(&drops));
        }
        assert_eq!(drops.get(), 2);
    }

    #[test]
    fn drops_each_element_once_across_spill() {
        let drops = Cell::new(0);
        {
            let mut v: StackVec<DropCounter<'_>, 2> = StackVec::new();
            for _ in 0..5 {
                v.push(DropCounter(&drops));
            }
            assert!(v.spilled());
            assert_eq!(drops.get(), 0, "spill must move, not drop");
            v.pop();
            assert_eq!(drops.get(), 1);
            v.truncate(1);
            assert_eq!(drops.get(), 4);
        }
        assert_eq!(drops.get(), 5);
    }

    /// Counts drops and optionally panics in `Drop` — exercises the
    /// unwind paths through `truncate`/`Drop` (DESIGN.md §9).
    struct PanicOnDrop<'a> {
        drops: &'a Cell<usize>,
        panics: bool,
    }
    impl Drop for PanicOnDrop<'_> {
        fn drop(&mut self) {
            self.drops.set(self.drops.get() + 1);
            if self.panics {
                panic!("drop panic");
            }
        }
    }

    /// Regression test: `len` must shrink *before* an element is dropped
    /// or moved out (see `truncate`/`spill_and_push`). If it shrank after,
    /// a panicking `Drop` mid-`truncate` would leave `len` covering the
    /// already-dropped slot and the `StackVec`'s own `Drop` would free it
    /// a second time — counted here as a fourth drop.
    #[test]
    fn unwind_through_truncate_drops_each_element_once() {
        let drops = Cell::new(0);
        let mut v: StackVec<PanicOnDrop<'_>, 4> = StackVec::new();
        v.push(PanicOnDrop {
            drops: &drops,
            panics: false,
        });
        v.push(PanicOnDrop {
            drops: &drops,
            panics: true,
        });
        v.push(PanicOnDrop {
            drops: &drops,
            panics: false,
        });
        let unwound =
            std::panic::catch_unwind(core::panic::AssertUnwindSafe(|| v.truncate(0))).is_err();
        assert!(unwound, "the panicking Drop must propagate");
        drop(v);
        assert_eq!(drops.get(), 3, "each element dropped exactly once");
    }

    #[test]
    fn zero_inline_capacity_spills_immediately() {
        let mut v: StackVec<i32, 0> = StackVec::new();
        v.push(1);
        assert!(v.spilled());
        assert_eq!(&v[..], &[1]);
    }
}
