//! Property-based differential test: `StackVec` must behave exactly like `Vec`
//! under an arbitrary sequence of operations, across the spill boundary.

use proptest::prelude::*;
use rsq_stackvec::StackVec;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Truncate(usize),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u32>().prop_map(Op::Push),
        2 => Just(Op::Pop),
        1 => (0usize..12).prop_map(Op::Truncate),
        1 => Just(Op::Clear),
    ]
}

proptest! {
    #[test]
    fn behaves_like_vec(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let mut sv: StackVec<u32, 4> = StackVec::new();
        let mut model: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Op::Push(x) => { sv.push(x); model.push(x); }
                Op::Pop => prop_assert_eq!(sv.pop(), model.pop()),
                Op::Truncate(n) => { sv.truncate(n); model.truncate(n); }
                Op::Clear => { sv.clear(); model.clear(); }
            }
            prop_assert_eq!(sv.as_slice(), model.as_slice());
            prop_assert_eq!(sv.len(), model.len());
            prop_assert_eq!(sv.last(), model.last());
        }
    }

    #[test]
    fn collects_like_vec(items in proptest::collection::vec(any::<u32>(), 0..64)) {
        let sv: StackVec<u32, 8> = items.iter().copied().collect();
        prop_assert_eq!(sv.as_slice(), items.as_slice());
        prop_assert_eq!(sv.spilled(), items.len() > 8);
    }
}
