//! Zero-copy input for rsq: read-only, private memory maps (DESIGN.md §15).
//!
//! The engine consumes plain `&[u8]`; for large inputs the dominant
//! startup cost is copying the file through a read loop into a heap
//! buffer. Mapping the file instead hands the engine the page cache
//! directly — no copy, no allocation proportional to the input — which
//! is worth a double-digit percentage of end-to-end latency on cold
//! multi-hundred-megabyte runs and makes `--batch-dir` ingestion
//! allocation-free.
//!
//! This is one of the three audited kernel crates (with `rsq-simd` and
//! `rsq-stackvec`): the workspace-wide `unsafe_code = "forbid"` is lifted
//! here and every unsafe block carries its proof obligation next to the
//! code, checked by `cargo xtask audit`. The unsafe surface is
//! deliberately tiny: two raw syscalls (`mmap`, `munmap` — issued via
//! `asm!` so the workspace keeps its no-external-dependency rule; there
//! is no libc) and one `slice::from_raw_parts` over the mapped region.
//!
//! Mapping is attempted only on `x86_64`-Linux; everywhere else — and on
//! any syscall failure, empty files, or unstatable paths — [`load`]
//! falls back to `std::fs::read`, so callers never observe a behavioral
//! difference, only a performance one.
//!
//! # The one sharp edge
//!
//! A file-backed mapping is a window onto the file *as it changes*. If
//! another process truncates the file while we read the tail, the load
//! faults (`SIGBUS`) instead of returning short data. This is inherent
//! to `mmap` (every mapping-based reader shares it) and is why the CLI
//! exposes `--mmap off`. The safety argument for the `unsafe` blocks
//! below covers memory safety of the mapping itself — pointer validity,
//! length, lifetime — not concurrent-truncation signals, which are a
//! process-level liveness hazard, not UB.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// File-size threshold for [`MapPolicy::Auto`]: mapping has a fixed
/// syscall + page-table cost, so tiny files are cheaper to read into a
/// buffer. 1 MiB keeps every catalog dataset on the mapped path while
/// unit-test fixtures stay buffered.
pub const AUTO_THRESHOLD: u64 = 1 << 20;

/// How [`load`] decides between mapping and buffered reading; mirrors
/// the CLI's `--mmap auto|on|off` flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MapPolicy {
    /// Map files of at least [`AUTO_THRESHOLD`] bytes, read smaller ones.
    #[default]
    Auto,
    /// Always attempt to map (still falls back on unsupported targets
    /// or syscall failure — `On` is a preference, not a guarantee).
    On,
    /// Never map; plain `std::fs::read`.
    Off,
}

impl MapPolicy {
    /// Parses a CLI flag value. Returns `None` for anything but
    /// `auto`, `on`, or `off`.
    pub fn parse(text: &str) -> Option<MapPolicy> {
        match text {
            "auto" => Some(MapPolicy::Auto),
            "on" => Some(MapPolicy::On),
            "off" => Some(MapPolicy::Off),
            _ => None,
        }
    }
}

/// An input document: either a private read-only mapping of a file or
/// an owned heap buffer. Both deref to `&[u8]`, so engines and sinks
/// never care which they got.
pub struct MmapInput {
    repr: Repr,
}

enum Repr {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped(Mapping),
    Buffered(Vec<u8>),
}

impl MmapInput {
    /// Wraps an already-materialized buffer (stdin, tests, network).
    pub fn from_vec(bytes: Vec<u8>) -> MmapInput {
        MmapInput {
            repr: Repr::Buffered(bytes),
        }
    }

    /// True when the bytes live in a mapping rather than a heap buffer.
    /// Observability only — behavior is identical either way.
    pub fn is_mapped(&self) -> bool {
        match self.repr {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Repr::Mapped(_) => true,
            Repr::Buffered(_) => false,
        }
    }

    /// The input bytes, however they are backed.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Repr::Mapped(mapping) => mapping.as_slice(),
            Repr::Buffered(bytes) => bytes,
        }
    }
}

impl Deref for MmapInput {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl AsRef<[u8]> for MmapInput {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

/// Loads `path` under `policy`. Mapping failures of any kind degrade to
/// a buffered read; only the buffered read's own I/O errors surface.
pub fn load(path: &Path, policy: MapPolicy) -> io::Result<MmapInput> {
    if let Some(input) = map(path, policy) {
        return Ok(input);
    }
    Ok(MmapInput::from_vec(std::fs::read(path)?))
}

/// Attempts *only* the mapping half of [`load`]: `None` when the policy,
/// target, file size, or kernel declines. For callers with their own
/// buffered path (the CLI's hardened chunked reader) that must stay
/// byte-for-byte identical when no mapping happens.
pub fn map(path: &Path, policy: MapPolicy) -> Option<MmapInput> {
    if policy == MapPolicy::Off {
        return None;
    }
    try_map(path, policy)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn try_map(path: &Path, policy: MapPolicy) -> Option<MmapInput> {
    let file = File::open(path).ok()?;
    let len = file.metadata().ok()?.len();
    // Empty files cannot be mapped (`mmap` rejects length 0) and
    // sub-threshold files are not worth the page-table setup under Auto.
    if len == 0 || (policy == MapPolicy::Auto && len < AUTO_THRESHOLD) {
        return None;
    }
    let mapping = Mapping::of_file(&file, len as usize)?;
    Some(MmapInput {
        repr: Repr::Mapped(mapping),
    })
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn try_map(_path: &Path, _policy: MapPolicy) -> Option<MmapInput> {
    None
}

/// A live `PROT_READ`/`MAP_PRIVATE` mapping. Constructing one is the
/// only way to obtain a non-null `ptr`; `Drop` unmaps exactly once.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
struct Mapping {
    /// Page-aligned base returned by a successful `mmap`; never null,
    /// valid for `len` bytes until `Drop` runs.
    ptr: *const u8,
    /// Exact file length at map time (the kernel rounds the mapping up
    /// to a page internally; we only ever expose `len` bytes).
    len: usize,
}

// SAFETY: the mapping is PROT_READ and MAP_PRIVATE — no thread can write
// through it, and we hand out only `&[u8]`. Ownership of the region is
// unique to this value (the pointer is never cloned out), so moving it
// across threads or sharing shared references is as safe as for a
// `Vec<u8>`.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe impl Send for Mapping {}

// SAFETY: see the `Send` impl above — read-only region, shared access
// only through `&[u8]`.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe impl Sync for Mapping {}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Mapping {
    /// Maps the first `len` bytes of `file` read-only, or `None` if the
    /// kernel refuses (exotic filesystems, `RLIMIT_AS`, …).
    fn of_file(file: &File, len: usize) -> Option<Mapping> {
        use std::os::unix::io::AsRawFd;
        debug_assert!(len > 0, "caller filters empty files");
        // SAFETY: `fd` is a valid open read-only descriptor for the
        // duration of the call (we hold `&File`), `len > 0`, and the
        // request is PROT_READ + MAP_PRIVATE at offset 0 — the kernel
        // either returns a fresh region valid for `len` bytes or an
        // error, which `sys::mmap` reports as `Err`.
        let ptr = unsafe { sys::mmap(len, file.as_raw_fd()) }.ok()?;
        Some(Mapping { ptr, len })
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` came from a successful `mmap` of at least `len`
        // readable bytes and stays mapped until `Drop` (which takes
        // `&mut self`, so no `&[u8]` borrow can outlive it); `len` is
        // the exact mapped length, well under `isize::MAX`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `(ptr, len)` is exactly what `mmap` returned in
        // `of_file` and has not been unmapped — `Drop` runs once and no
        // other code path calls `munmap`. After this line the struct is
        // gone, so the dangling `ptr` is never read.
        unsafe { sys::munmap(self.ptr, self.len) };
    }
}

/// Raw x86_64-Linux syscalls. No libc: the workspace builds offline
/// with zero external crates, so the two calls we need are issued
/// directly via the `syscall` instruction per the kernel ABI (args in
/// rdi/rsi/rdx/r10/r8/r9, number in rax, result in rax, rcx/r11
/// clobbered; errors are returned as `-errno` in `-4095..=-1`).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::arch::asm;

    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// Largest `-errno` the kernel returns; anything in
    /// `-4095..=-1` is an error code, anything else a valid address.
    const ERRNO_MAX: isize = 4095;

    /// `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)`.
    ///
    /// # Safety
    ///
    /// `fd` must be an open, readable file descriptor and `len` must be
    /// non-zero. On `Ok`, the returned pointer is page-aligned and valid
    /// for `len` read-only bytes until passed to [`munmap`]; the caller
    /// owns the region and must unmap it exactly once.
    pub(crate) unsafe fn mmap(len: usize, fd: i32) -> Result<*const u8, i32> {
        let ret: isize;
        // SAFETY: a read-only, private, kernel-chosen-address mapping
        // request touches no existing memory of this process; the asm
        // matches the syscall ABI exactly (six args, rcx/r11 declared
        // clobbered) and the preconditions on `fd`/`len` are the
        // caller's contract above.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_MMAP as isize => ret,
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd as isize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if (-ERRNO_MAX..0).contains(&ret) {
            Err(-ret as i32)
        } else {
            Ok(ret as *const u8)
        }
    }

    /// `munmap(ptr, len)`.
    ///
    /// # Safety
    ///
    /// `(ptr, len)` must be exactly a region returned by [`mmap`] that
    /// has not been unmapped yet; no reference into the region may be
    /// used afterwards.
    pub(crate) unsafe fn munmap(ptr: *const u8, len: usize) {
        let _ret: isize;
        // SAFETY: per this function's contract the region is a live
        // mapping we own, so removing it invalidates no reachable
        // reference; asm per the syscall ABI as in `mmap` above. The
        // result is ignored — on a valid region munmap cannot fail,
        // and in `Drop` there is nothing to do about it anyway.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_MUNMAP as isize => _ret,
                in("rdi") ptr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique temp file that cleans up on drop; no tempfile crate in
    /// the offline workspace.
    struct TempFile(PathBuf);

    impl TempFile {
        fn with_bytes(bytes: &[u8]) -> TempFile {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            let path = std::env::temp_dir().join(format!(
                "rsq-mmap-test-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            let mut file = File::create(&path).expect("create temp file");
            file.write_all(bytes).expect("write temp file");
            TempFile(path)
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn forced_map_matches_buffered_read() {
        let content: Vec<u8> = (0..100_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let tmp = TempFile::with_bytes(&content);
        let mapped = load(&tmp.0, MapPolicy::On).expect("load mapped");
        let buffered = load(&tmp.0, MapPolicy::Off).expect("load buffered");
        assert_eq!(&*mapped, &content[..]);
        assert_eq!(&*buffered, &content[..]);
        assert!(!buffered.is_mapped());
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(mapped.is_mapped(), "On maps on the supported target");
    }

    #[test]
    fn auto_policy_buffers_small_and_maps_large() {
        let small = TempFile::with_bytes(b"{\"a\": 1}");
        let loaded = load(&small.0, MapPolicy::Auto).expect("load small");
        assert_eq!(&*loaded, b"{\"a\": 1}");
        assert!(!loaded.is_mapped(), "below AUTO_THRESHOLD stays buffered");

        let big_bytes = vec![b'x'; AUTO_THRESHOLD as usize + 1];
        let big = TempFile::with_bytes(&big_bytes);
        let loaded = load(&big.0, MapPolicy::Auto).expect("load large");
        assert_eq!(loaded.len(), big_bytes.len());
        assert_eq!(&*loaded, &big_bytes[..]);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(loaded.is_mapped(), "at threshold Auto maps");
    }

    #[test]
    fn empty_file_degrades_to_buffered() {
        let tmp = TempFile::with_bytes(b"");
        let loaded = load(&tmp.0, MapPolicy::On).expect("load empty");
        assert!(loaded.is_empty());
        assert!(!loaded.is_mapped(), "zero-length files cannot be mapped");
    }

    #[test]
    fn missing_file_reports_the_read_error() {
        let path = std::env::temp_dir().join("rsq-mmap-test-definitely-missing");
        assert!(load(&path, MapPolicy::On).is_err());
        assert!(load(&path, MapPolicy::Off).is_err());
    }

    #[test]
    fn many_mappings_map_and_unmap_cleanly() {
        let content = vec![b'y'; 200_000];
        let tmp = TempFile::with_bytes(&content);
        for _ in 0..64 {
            let loaded = load(&tmp.0, MapPolicy::On).expect("load");
            assert_eq!(loaded.len(), content.len());
            assert_eq!(loaded[0], b'y');
            assert_eq!(loaded[content.len() - 1], b'y');
        }
    }

    #[test]
    fn from_vec_and_policy_parse() {
        let input = MmapInput::from_vec(b"[1,2,3]".to_vec());
        assert_eq!(input.as_ref(), b"[1,2,3]");
        assert!(!input.is_mapped());
        assert_eq!(MapPolicy::parse("auto"), Some(MapPolicy::Auto));
        assert_eq!(MapPolicy::parse("on"), Some(MapPolicy::On));
        assert_eq!(MapPolicy::parse("off"), Some(MapPolicy::Off));
        assert_eq!(MapPolicy::parse("maybe"), None);
        assert_eq!(MapPolicy::default(), MapPolicy::Auto);
    }

    /// Mapped input must be consumable from another thread (the batch
    /// layer fans documents out to workers).
    #[test]
    fn mapped_input_crosses_threads() {
        let content = vec![b'z'; 150_000];
        let tmp = TempFile::with_bytes(&content);
        let loaded = load(&tmp.0, MapPolicy::On).expect("load");
        let handle = std::thread::spawn(move || loaded.iter().map(|&b| b as u64).sum::<u64>());
        let sum = handle.join().expect("thread joins");
        assert_eq!(sum, content.len() as u64 * u64::from(b'z'));
    }
}
