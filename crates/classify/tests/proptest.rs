//! Differential property test: the SIMD structural iterator must agree with
//! a trivial scalar lexer on arbitrary (valid and invalid) inputs, under
//! every toggle configuration.

use proptest::prelude::*;
use rsq_classify::{Structural, StructuralIterator};
use rsq_simd::Simd;

/// Scalar reference lexer: structural characters outside strings.
///
/// Backslash escaping is modelled *globally*, as the bit-parallel quote
/// classifier does (and simdjson before it): a backslash escapes the next
/// character even outside a string. Valid JSON never has a backslash
/// outside a string, so the two models only differ on garbage input.
fn scalar_lex(input: &[u8], commas: bool, colons: bool) -> Vec<(u8, usize)> {
    let mut out = Vec::new();
    let mut in_string = false;
    let mut escaped = false; // current character is escaped by a backslash
    for (i, &b) in input.iter().enumerate() {
        let is_escaped = escaped;
        escaped = b == b'\\' && !is_escaped;
        if b == b'"' && !is_escaped {
            in_string = !in_string;
            continue;
        }
        if in_string {
            continue;
        }
        match b {
            b'{' | b'}' | b'[' | b']' => out.push((b, i)),
            b',' if commas => out.push((b, i)),
            b':' if colons => out.push((b, i)),
            _ => {}
        }
    }
    out
}

fn simd_lex(input: &[u8], commas: bool, colons: bool) -> Vec<(u8, usize)> {
    let mut it = StructuralIterator::new(input, Simd::detect());
    it.set_toggles(commas, colons);
    let mut out = Vec::new();
    while let Some(s) = it.next() {
        let b = match s {
            Structural::Opening(t, _) => t.opening(),
            Structural::Closing(t, _) => t.closing(),
            Structural::Colon(_) => b':',
            Structural::Comma(_) => b',',
        };
        out.push((b, s.position()));
    }
    out
}

/// Bytes weighted towards JSON-ish content, including escapes and quotes.
fn arb_jsonish() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            3 => prop_oneof![
                Just(b'{'), Just(b'}'), Just(b'['), Just(b']'),
                Just(b':'), Just(b','),
            ],
            3 => Just(b'"'),
            2 => Just(b'\\'),
            4 => prop_oneof![Just(b'a'), Just(b' '), Just(b'1'), Just(b'\n')],
            1 => any::<u8>(),
        ],
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]
    #[test]
    fn iterator_matches_scalar_lexer(
        input in arb_jsonish(),
        commas in any::<bool>(),
        colons in any::<bool>(),
    ) {
        prop_assert_eq!(
            simd_lex(&input, commas, colons),
            scalar_lex(&input, commas, colons)
        );
    }

    #[test]
    fn peek_is_transparent(input in arb_jsonish()) {
        let simd = Simd::detect();
        let mut plain = StructuralIterator::new(&input, simd);
        let mut peeky = StructuralIterator::new(&input, simd);
        loop {
            let expected = plain.next();
            prop_assert_eq!(peeky.peek(), expected);
            prop_assert_eq!(peeky.next(), expected);
            if expected.is_none() {
                break;
            }
        }
    }

    /// Skipping a subtree must land on the bracket a scalar depth counter
    /// finds, for arbitrary valid JSON built by the json crate.
    #[test]
    fn skip_agrees_with_scalar_depth(seed in any::<u64>(), n in 1usize..40) {
        // Deterministic nested-array/object soup.
        let mut text = String::from("[");
        let mut x = seed | 1;
        let mut depth = 1;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match x >> 60 {
                0..=3 if depth < 12 => { text.push('['); depth += 1; }
                4..=5 if depth > 1 => { text.push_str("0],"); depth -= 1; }
                6..=9 => text.push_str("\"s[]{}\","),
                _ => text.push_str("7,"),
            }
        }
        while depth > 0 { text.push_str("0]"); depth -= 1; }
        let text = text.replace(",]", "]").replace(",,", ",");
        if rsq_json::parse(text.as_bytes()).is_err() {
            // The soup generator occasionally emits invalid JSON; only
            // valid documents are interesting here.
            return Ok(());
        }
        let bytes = text.as_bytes();

        let mut it = StructuralIterator::new(bytes, Simd::detect());
        let first = it.next().unwrap();
        prop_assert_eq!(first.position(), 0);
        let close = it.skip_past_close(rsq_classify::BracketType::Bracket).unwrap();
        prop_assert_eq!(close, bytes.len() - 1);
        prop_assert_eq!(it.next(), None);
    }
}
