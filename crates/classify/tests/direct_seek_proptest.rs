//! Differential property test for the fast-path member seek (DESIGN.md
//! §15): [`StructuralIterator::seek_direct_member`] must agree with a
//! trivial recursive-descent oracle on generated documents, on every
//! supported backend, with and without a pre-warmed candidate memo.
//!
//! The generator is adversarial where the memmem-led candidate search is
//! weakest: `"target"` lookalikes inside string values, escaped-quote
//! prefixes, trailing backslashes, structural bytes inside strings,
//! genuine `"target"` members nested below the current container (never
//! direct), and variable-length padding that sweeps the needle across
//! 64-byte block boundaries. None of these may ever be *accepted*; they
//! may only bump the `declined` counter, which itself must be identical
//! across backends (the decline decisions are structural, not vectorised).
//!
//! Labels never contain escaped quotes: a label whose raw bytes *end*
//! with `\"target` is ambiguous under the paper's memmem candidate
//! convention (the escaped quote reads as a needle-opening quote), and
//! both routes resolve it the same way — that corner belongs to the
//! `fast_path_diff` fuzz lane, not to this oracle.

use proptest::prelude::*;
use rsq_classify::{BracketType, CandidateMemo, DirectSeek, Structural, StructuralIterator};
use rsq_memmem::Finder;
use rsq_simd::{BackendKind, Simd};

const NEEDLE: &[u8] = b"\"target\"";

/// Every backend this CPU can run, portable fallback first.
fn backends() -> Vec<Simd> {
    let mut out = vec![Simd::with_kind(BackendKind::Swar)];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push(Simd::with_kind(BackendKind::Avx2));
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
        {
            out.push(Simd::with_kind(BackendKind::Avx512));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Scalar oracle: a recursive-descent scan of the (valid) generated
// document that finds the first direct member named `target`.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Oracle {
    /// First direct `"target"` member has a composite value opening here.
    Composite(usize),
    /// First direct `"target"` member has an atomic value starting here
    /// (only reachable when the caller accepts atomics).
    Atomic(usize),
    /// No acceptable direct member; the root closes at this position.
    Boundary(usize),
}

fn skip_ws(doc: &[u8], mut i: usize) -> usize {
    while i < doc.len() && matches!(doc[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

/// `i` sits on the opening quote; returns the raw (still-escaped) string
/// contents and the index just past the closing quote.
fn scan_string(doc: &[u8], i: usize) -> (&[u8], usize) {
    let start = i + 1;
    let mut j = start;
    loop {
        match doc[j] {
            b'\\' => j += 2,
            b'"' => return (&doc[start..j], j + 1),
            _ => j += 1,
        }
    }
}

/// Index just past the value starting at `i`.
fn skip_value(doc: &[u8], i: usize) -> usize {
    match doc[i] {
        b'"' => scan_string(doc, i).1,
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut j = i;
            loop {
                match doc[j] {
                    b'"' => {
                        j = scan_string(doc, j).1;
                        continue;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        _ => {
            let mut j = i;
            while j < doc.len() && !matches!(doc[j], b',' | b'}' | b']' | b' ' | b'\n') {
                j += 1;
            }
            j
        }
    }
}

fn oracle(doc: &[u8], accept_atomic: bool) -> Oracle {
    let mut i = skip_ws(doc, 0);
    assert_eq!(doc[i], b'{', "generator always emits a root object");
    i = skip_ws(doc, i + 1);
    if doc[i] == b'}' {
        return Oracle::Boundary(i);
    }
    loop {
        assert_eq!(doc[i], b'"', "member must start with a label");
        let (label, after) = scan_string(doc, i);
        let is_target = label == b"target";
        i = skip_ws(doc, after);
        assert_eq!(doc[i], b':');
        let v = skip_ws(doc, i + 1);
        match doc[v] {
            b'{' | b'[' => {
                if is_target {
                    return Oracle::Composite(v);
                }
            }
            _ => {
                if is_target && accept_atomic {
                    return Oracle::Atomic(v);
                }
            }
        }
        i = skip_ws(doc, skip_value(doc, v));
        match doc[i] {
            b',' => i = skip_ws(doc, i + 1),
            b'}' => return Oracle::Boundary(i),
            other => panic!("malformed generated document at {i}: {}", other as char),
        }
    }
}

// ---------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------

/// Labels deliberately free of escaped quotes (see module docs); `tar`,
/// `target2`, and `ta\rget` are near-misses the memmem search must not
/// even surface as candidates.
const DECOY_LABELS: &[&str] = &["a", "b", "dd", "x y", "tar", "target2", "ta\\rget"];

fn arb_adversarial_string() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(r#""plain value""#.to_string()),
        // Escaped-quote prefix: the raw bytes `"target"` appear, with the
        // needle's closing quote doubling as the string's terminator — a
        // candidate that must fail the colon check.
        Just(r#""x\"target""#.to_string()),
        Just(r#""\"target\" in quotes""#.to_string()),
        // JSON-shaped text inside a string: label-with-colon lookalike.
        Just(r#""{\"target\": 1}, \"y\": 2""#.to_string()),
        // Structural noise the depth scan must ignore.
        Just(r#""}}}{{{,,::[[]]""#.to_string()),
        Just(r#""trailing backslash\\""#.to_string()),
        // Padding sweeps later members across 64-byte block boundaries.
        (0usize..150).prop_map(|n| format!("\"{}\"", "q".repeat(n))),
    ]
}

fn arb_atomic() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("1".to_string()),
        Just("-3.5e2".to_string()),
        Just("true".to_string()),
        Just("null".to_string()),
        arb_adversarial_string(),
    ]
}

/// Composite values, several of which bury a genuine `"target"` member
/// one level down — nested occurrences must be declined, never accepted.
fn arb_composite() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("{}".to_string()),
        Just("[]".to_string()),
        Just(r#"{"target": {"n": 1}}"#.to_string()),
        Just(r#"{"deep": {"target": [1, 2]}}"#.to_string()),
        Just(r#"[{"target": 7}, "x\"target", 3]"#.to_string()),
        (arb_atomic(), arb_atomic()).prop_map(|(a, b)| format!(r#"{{"k": {a}, "target": {b}}}"#)),
        proptest::collection::vec(arb_atomic(), 0..3).prop_map(|xs| format!("[{}]", xs.join(", "))),
    ]
}

fn arb_member() -> impl Strategy<Value = String> {
    (
        0u32..10,
        0usize..DECOY_LABELS.len(),
        prop_oneof![arb_atomic(), arb_composite()],
        0usize..3,
    )
        .prop_map(|(roll, decoy, value, gap)| {
            // ~30% of members are genuine `"target"` members.
            let label = if roll < 3 {
                "target"
            } else {
                DECOY_LABELS[decoy]
            };
            format!("\"{label}\":{}{value}", &"  "[..gap.min(2)])
        })
}

fn arb_doc() -> impl Strategy<Value = String> {
    (proptest::collection::vec(arb_member(), 0..6), 0usize..3)
        .prop_map(|(members, sep)| format!("{{{}}}", members.join([", ", ",", ",\n "][sep])))
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The seek agrees with the oracle on every backend, leaves the
    /// promised event pending, and declines deterministically — with a
    /// fresh memo and with one pre-warmed by an unrelated earlier search.
    #[test]
    fn direct_seek_agrees_with_oracle(doc in arb_doc(), accept_atomic in any::<bool>()) {
        let bytes = doc.as_bytes();
        let expect = oracle(bytes, accept_atomic);
        let mut declines: Vec<u64> = Vec::new();
        for simd in backends() {
            let finder = Finder::with_simd(NEEDLE, simd);
            for prewarm in [false, true] {
                let mut memo = CandidateMemo::default();
                if prewarm {
                    memo.find_from(&finder, bytes, 0);
                }
                let mut it = StructuralIterator::new(bytes, simd);
                let root = it.next();
                prop_assert!(
                    matches!(root, Some(Structural::Opening(BracketType::Brace, _))),
                    "root object must open: {:?}", root
                );
                let mut declined = 0u64;
                let got =
                    it.seek_direct_member(&finder, NEEDLE, &mut memo, accept_atomic, &mut declined);
                match expect {
                    Oracle::Composite(pos) => {
                        prop_assert_eq!(got, DirectSeek::Composite { pos });
                        let next = it.next().expect("value opening pending after Composite");
                        prop_assert!(matches!(next, Structural::Opening(_, _)));
                        prop_assert_eq!(next.position(), pos);
                    }
                    Oracle::Atomic(pos) => {
                        prop_assert_eq!(got, DirectSeek::Atomic { pos });
                    }
                    Oracle::Boundary(close) => {
                        prop_assert_eq!(got, DirectSeek::Boundary);
                        let next = it.next().expect("closing brace pending after Boundary");
                        prop_assert!(matches!(next, Structural::Closing(BracketType::Brace, _)));
                        prop_assert_eq!(next.position(), close);
                    }
                }
                declines.push(declined);
            }
        }
        prop_assert!(
            declines.windows(2).all(|w| w[0] == w[1]),
            "declined counts diverge across backends/memo states: {:?}", declines
        );
    }
}

/// Deterministic sweep: the needle crosses every 64-byte block alignment
/// (including straddling the boundary itself) and is found at the exact
/// value position each time, on every backend.
#[test]
fn straddle_sweep_finds_target_at_every_alignment() {
    for pad in 0..=192 {
        let doc = format!(
            "{{\"p\": \"{}\", \"target\": {{\"v\": 1}}, \"z\": 0}}",
            "q".repeat(pad)
        );
        let bytes = doc.as_bytes();
        let expect = oracle(bytes, false);
        for simd in backends() {
            let finder = Finder::with_simd(NEEDLE, simd);
            let mut memo = CandidateMemo::default();
            let mut declined = 0;
            let mut it = StructuralIterator::new(bytes, simd);
            it.next();
            let got = it.seek_direct_member(&finder, NEEDLE, &mut memo, false, &mut declined);
            let Oracle::Composite(pos) = expect else {
                panic!("sweep document always has a composite target");
            };
            assert_eq!(
                got,
                DirectSeek::Composite { pos },
                "pad={pad} backend={:?}",
                simd.kind()
            );
            assert_eq!(declined, 0, "pad={pad}");
        }
    }
}

/// An atomic direct member is skipped when the caller does not accept
/// atomics, and the seek continues to a later composite duplicate.
#[test]
fn atomic_member_is_skipped_then_composite_duplicate_found() {
    let doc = br#"{"target": 1, "x": {"target": 2}, "target": {"k": 3}}"#;
    for simd in backends() {
        let finder = Finder::with_simd(NEEDLE, simd);
        let mut memo = CandidateMemo::default();
        let mut declined = 0;
        let mut it = StructuralIterator::new(doc, simd);
        it.next();
        let got = it.seek_direct_member(&finder, NEEDLE, &mut memo, false, &mut declined);
        assert_eq!(got, oracle_as_seek(oracle(doc, false)));
        // The atomic first member and the nested duplicate were declined.
        assert_eq!(declined, 2, "backend={:?}", simd.kind());
    }
}

fn oracle_as_seek(o: Oracle) -> DirectSeek {
    match o {
        Oracle::Composite(pos) => DirectSeek::Composite { pos },
        Oracle::Atomic(pos) => DirectSeek::Atomic { pos },
        Oracle::Boundary(_) => DirectSeek::Boundary,
    }
}
