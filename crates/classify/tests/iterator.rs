//! Integration tests for the structural iterator: toggling, skipping,
//! label backtracking, and block-boundary behaviour.

use rsq_classify::{BracketType, Structural, StructuralIterator};
use rsq_simd::Simd;

fn iter(input: &[u8]) -> StructuralIterator<'_> {
    StructuralIterator::new(input, Simd::detect())
}

/// Collects (char, position) pairs from the iterator.
fn drain(it: &mut StructuralIterator<'_>) -> Vec<(char, usize)> {
    let mut out = Vec::new();
    while let Some(s) = it.next() {
        let c = match s {
            Structural::Opening(b, _) => b.opening() as char,
            Structural::Closing(b, _) => b.closing() as char,
            Structural::Colon(_) => ':',
            Structural::Comma(_) => ',',
        };
        out.push((c, s.position()));
    }
    out
}

#[test]
fn default_mode_yields_only_brackets() {
    let input = br#"{"a": [1, {"b": 2}], "c": 3}"#;
    let got = drain(&mut iter(input));
    let chars: String = got.iter().map(|(c, _)| *c).collect();
    assert_eq!(chars, "{[{}]}");
}

#[test]
fn structural_chars_inside_strings_are_ignored() {
    let input = br#"{"s": "a{b}[c],:\" d", "t": []}"#;
    let got = drain(&mut iter(input));
    let chars: String = got.iter().map(|(c, _)| *c).collect();
    assert_eq!(chars, "{[]}");
}

#[test]
fn toggled_commas_and_colons_appear() {
    let input = br#"{"a": 1, "b": [2, 3]}"#;
    let mut it = iter(input);
    it.set_toggles(true, true);
    let got = drain(&mut it);
    let chars: String = got.iter().map(|(c, _)| *c).collect();
    assert_eq!(chars, "{:,:[,]}");
}

#[test]
fn toggle_mid_stream_reclassifies_current_block() {
    let input = br#"{"a": 1, "b": 2}"#;
    let mut it = iter(input);
    assert!(matches!(
        it.next(),
        Some(Structural::Opening(BracketType::Brace, 0))
    ));
    // Nothing but the closing brace is classified yet.
    it.set_toggles(false, true);
    let got = drain(&mut it);
    let chars: String = got.iter().map(|(c, _)| *c).collect();
    assert_eq!(chars, "::}");
}

#[test]
fn toggle_off_hides_remaining_symbols() {
    let input = br#"[1, 2, 3, 4]"#;
    let mut it = iter(input);
    it.set_toggles(true, false);
    assert!(matches!(it.next(), Some(Structural::Opening(..))));
    assert!(matches!(it.next(), Some(Structural::Comma(2))));
    it.set_toggles(false, false);
    let got = drain(&mut it);
    let chars: String = got.iter().map(|(c, _)| *c).collect();
    assert_eq!(chars, "]");
}

#[test]
fn peek_does_not_consume() {
    let input = br#"[[]]"#;
    let mut it = iter(input);
    assert_eq!(it.peek(), it.peek());
    let first = it.next().unwrap();
    assert_eq!(first.position(), 0);
    assert_eq!(it.peek().unwrap().position(), 1);
    assert_eq!(it.next().unwrap().position(), 1);
}

#[test]
fn label_before_openings() {
    let input = br#"{"alpha": {"beta": [1]}, "g": [{}]}"#;
    let mut it = iter(input);
    let mut labels = Vec::new();
    while let Some(s) = it.next() {
        if s.is_opening() {
            labels.push(it.label_before(s.position()).map(<[u8]>::to_vec));
        }
    }
    assert_eq!(
        labels,
        vec![
            None,                    // root {
            Some(b"alpha".to_vec()), // {"beta"...
            Some(b"beta".to_vec()),  // [1]
            Some(b"g".to_vec()),     // [{}]
            None,                    // {} inside array
        ]
    );
}

#[test]
fn label_before_handles_whitespace_and_escapes() {
    let input = b"{ \"a\\\"b\"  :   { } }";
    let mut it = iter(input);
    it.next(); // root
    let inner = it.next().unwrap();
    assert_eq!(it.label_before(inner.position()), Some(&b"a\\\"b"[..]));
}

#[test]
fn label_before_array_entry_is_none() {
    let input = br#"[ {"x": 1}, {"y": 2} ]"#;
    let mut it = iter(input);
    it.next(); // [
    let first = it.next().unwrap();
    assert_eq!(it.label_before(first.position()), None);
    it.skip_past_close(BracketType::Brace);
    let second = it.next().unwrap();
    assert!(second.is_opening());
    assert_eq!(it.label_before(second.position()), None);
}

#[test]
fn skip_past_close_consumes_subtree() {
    let input = br#"{"a": {"deep": [{}, {}]}, "b": []}"#;
    let mut it = iter(input);
    it.next(); // root {
    let a = it.next().unwrap(); // { of a
    assert_eq!(it.label_before(a.position()), Some(&b"a"[..]));
    let close = it.skip_past_close(BracketType::Brace).unwrap();
    assert_eq!(input[close], b'}');
    // Next event: the [ of b.
    let b = it.next().unwrap();
    assert!(matches!(b, Structural::Opening(BracketType::Bracket, _)));
    assert_eq!(it.label_before(b.position()), Some(&b"b"[..]));
}

#[test]
fn fast_forward_leaves_close_pending() {
    let input = br#"{"a": 1, "b": {"c": 2}, "d": 3}"#;
    let mut it = iter(input);
    it.next(); // root {
    let end = it.fast_forward_to_close(BracketType::Brace).unwrap();
    assert_eq!(input[end], b'}');
    assert_eq!(end, input.len() - 1);
    // The closing brace is still delivered.
    let last = it.next().unwrap();
    assert_eq!(last, Structural::Closing(BracketType::Brace, end));
    assert_eq!(it.next(), None);
}

#[test]
fn skip_tracks_only_requested_bracket_kind() {
    // Nested arrays inside the object must not confuse brace counting.
    let input = br#"{"a": [ { "x": [1, 2] } ], "b": 1}end"#;
    let mut it = iter(input);
    it.next(); // root {
    let close = it.skip_past_close(BracketType::Brace).unwrap();
    assert_eq!(input[close], b'}');
    assert_eq!(close, input.len() - 4);
    assert_eq!(it.next(), None);
}

#[test]
fn skip_ignores_brackets_in_strings() {
    let input = br#"{"s": "}}}}", "t": {"u": "{{{"}}"#;
    let mut it = iter(input);
    it.next(); // root
    let close = it.skip_past_close(BracketType::Brace).unwrap();
    assert_eq!(close, input.len() - 1);
}

#[test]
fn skip_across_many_blocks() {
    // A subtree much larger than one 64-byte block.
    let mut inner = String::from("[");
    for i in 0..200 {
        if i > 0 {
            inner.push(',');
        }
        inner.push_str(&format!("{{\"k{i}\": [{i}, {i}]}}"));
    }
    inner.push(']');
    let input = format!("{{\"big\": {inner}, \"next\": {{}}}}");
    let bytes = input.as_bytes();
    let mut it = iter(bytes);
    it.next(); // root {
    it.next(); // [ of big
    let close = it.skip_past_close(BracketType::Bracket).unwrap();
    assert_eq!(bytes[close], b']');
    let next = it.next().unwrap();
    assert!(matches!(next, Structural::Opening(BracketType::Brace, _)));
    assert_eq!(it.label_before(next.position()), Some(&b"next"[..]));
}

#[test]
fn skip_on_malformed_input_returns_none() {
    let input = br#"{"a": [1, 2"#;
    let mut it = iter(input);
    it.next();
    it.next();
    assert_eq!(it.skip_past_close(BracketType::Bracket), None);
    assert_eq!(it.next(), None);
}

#[test]
fn block_boundary_structurals() {
    // Put structural characters exactly at positions 63, 64, 127, 128.
    let mut input = vec![b' '; 200];
    input[0] = b'[';
    input[63] = b'[';
    input[64] = b']';
    input[127] = b'[';
    input[128] = b']';
    input[199] = b']';
    let got = drain(&mut iter(&input));
    assert_eq!(
        got,
        vec![
            ('[', 0),
            ('[', 63),
            (']', 64),
            ('[', 127),
            (']', 128),
            (']', 199)
        ]
    );
}

#[test]
fn resume_starts_mid_document() {
    use rsq_classify::ResumeState;
    let input = br#"{"skip": [1,2,3], "from": {"x": [42]}}"#;
    // Start at the { of "from"'s value (position 26).
    let pos = 26;
    assert_eq!(input[pos], b'{');
    let it0 = StructuralIterator::resume(input, Simd::detect(), ResumeState::default(), pos);
    let mut it = it0;
    let first = it.next().unwrap();
    assert_eq!(first, Structural::Opening(BracketType::Brace, pos));
    let chars: String = std::iter::once(first)
        .chain(std::iter::from_fn(|| it.next()))
        .map(|s| input[s.position()] as char)
        .collect();
    assert_eq!(chars, "{[]}}");
}

#[test]
fn empty_and_tiny_inputs() {
    assert_eq!(iter(b"").next(), None);
    assert_eq!(iter(b"42").next(), None);
    assert_eq!(iter(b"\"string\"").next(), None);
    let got = drain(&mut iter(b"{}"));
    assert_eq!(got, vec![('{', 0), ('}', 1)]);
}

#[test]
fn resume_state_round_trips_through_iterator() {
    let mut input = br#"{"a": "#.to_vec();
    input.extend(std::iter::repeat_n(b' ', 100));
    input.extend_from_slice(br#"[1], "b": {}}"#);
    let mut it = iter(&input);
    it.next(); // {
    it.next(); // [
    let rs = it.resume_state();
    // A fresh iterator resumed from this state sees the same continuation.
    let mut it2 = StructuralIterator::resume(&input, Simd::detect(), rs, it.position());
    assert_eq!(it.next(), it2.next());
    assert_eq!(it.next(), it2.next());
}
