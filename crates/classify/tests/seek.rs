//! Direct tests of the within-element label-seek classifier (§4.5
//! extension): candidates, boundaries, string lookalikes, straddles.

use rsq_classify::{BracketType, LabelSeek, Structural, StructuralIterator};
use rsq_simd::Simd;

fn iter(input: &[u8]) -> StructuralIterator<'_> {
    StructuralIterator::new(input, Simd::detect())
}

#[test]
fn finds_composite_member_at_depth() {
    let input = br#"{"x": {"y": 1}, "target": {"z": 2}}"#;
    let mut it = iter(input);
    it.next(); // consume root {
    match it.seek_label(b"target", 0) {
        LabelSeek::Candidate { depth_delta } => {
            // x's subtree was absorbed; the candidate's parent is the root
            // element itself, so no net depth change.
            assert_eq!(depth_delta, 0);
        }
        other => panic!("expected candidate, got {other:?}"),
    }
    // The next event is the value's opening brace.
    let next = it.next().unwrap();
    assert!(matches!(next, Structural::Opening(BracketType::Brace, _)));
    assert_eq!(it.label_before(next.position()), Some(&b"target"[..]));
}

#[test]
fn finds_nested_candidate_with_positive_delta() {
    let input = br#"{"a": {"b": {"target": [1]}}}"#;
    let mut it = iter(input);
    it.next(); // root {
    match it.seek_label(b"target", 0) {
        LabelSeek::Candidate { depth_delta } => assert_eq!(depth_delta, 2),
        other => panic!("{other:?}"),
    }
    let next = it.next().unwrap();
    assert!(matches!(next, Structural::Opening(BracketType::Bracket, _)));
}

#[test]
fn boundary_when_label_absent() {
    let input = br#"{"a": {"b": 1}, "c": [2, 3]} tail"#;
    let mut it = iter(input);
    it.next(); // root {
    assert_eq!(it.seek_label(b"nope", 0), LabelSeek::Boundary);
    // The pending event is the root's closing brace.
    let next = it.next().unwrap();
    assert_eq!(next, Structural::Closing(BracketType::Brace, 27));
}

#[test]
fn boundary_respects_levels() {
    // Starting two levels deep, allow ascending one level.
    let input = br#"{"o": {"i": {"x": 1}, "y": 2}, "target": {}}"#;
    let mut it = iter(input);
    it.next(); // root {
    it.next(); // o's {
    it.next(); // i's {
               // From inside i, allow climbing out of i (one level) but not out of o.
    match it.seek_label(b"target", 1) {
        LabelSeek::Boundary => {}
        other => panic!("{other:?}"),
    }
    // Pending closing is o's }, not i's } (i's was absorbed).
    let next = it.next().unwrap();
    assert_eq!(next, Structural::Closing(BracketType::Brace, 28));
}

#[test]
fn atomic_valued_candidates_are_skipped() {
    let input = br#"{"target": 1, "target": "s", "target": {"hit": 2}}"#;
    let mut it = iter(input);
    it.next();
    match it.seek_label(b"target", 0) {
        LabelSeek::Candidate { depth_delta } => assert_eq!(depth_delta, 0),
        other => panic!("{other:?}"),
    }
    let next = it.next().unwrap();
    assert_eq!(it.label_before(next.position()), Some(&b"target"[..]));
    assert_eq!(next.position(), 39);
}

#[test]
fn lookalikes_inside_strings_are_rejected() {
    let input = br#"{"s": "fake \"target\": {1}", "target": {"k": 1}}"#;
    let mut it = iter(input);
    it.next();
    match it.seek_label(b"target", 0) {
        LabelSeek::Candidate { depth_delta } => assert_eq!(depth_delta, 0),
        other => panic!("{other:?}"),
    }
    let next = it.next().unwrap();
    assert_eq!(input[next.position()], b'{');
    assert!(
        next.position() > 30,
        "must be the real target, not the fake"
    );
}

#[test]
fn string_value_of_label_is_not_a_member() {
    // "target" as a VALUE (no colon after) must not be a candidate.
    let input = br#"{"a": "target", "target": [0]}"#;
    let mut it = iter(input);
    it.next();
    assert!(matches!(
        it.seek_label(b"target", 0),
        LabelSeek::Candidate { .. }
    ));
    let next = it.next().unwrap();
    assert!(matches!(next, Structural::Opening(BracketType::Bracket, _)));
}

#[test]
fn needle_straddling_block_boundary() {
    // Place the label so that `"target"` spans the 64-byte boundary.
    for pad in 50..70 {
        let mut doc = String::from("{");
        doc.push_str(&format!("\"p\": \"{}\",", "x".repeat(pad)));
        doc.push_str("\"target\": {\"k\": 1}}");
        let bytes = doc.as_bytes();
        let mut it = iter(bytes);
        it.next();
        match it.seek_label(b"target", 0) {
            LabelSeek::Candidate { depth_delta } => assert_eq!(depth_delta, 0, "pad {pad}"),
            other => panic!("pad {pad}: {other:?}"),
        }
        let next = it.next().unwrap();
        assert_eq!(bytes[next.position()], b'{', "pad {pad}");
    }
}

#[test]
fn end_on_truncated_input() {
    let input = br#"{"a": {"b": "#;
    let mut it = iter(input);
    it.next();
    assert_eq!(it.seek_label(b"nope", 0), LabelSeek::End);
}

#[test]
fn seek_across_many_blocks() {
    let mut doc = String::from("{\"pad\": [");
    for i in 0..200 {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&format!("{{\"k{i}\": [{i}]}}"));
    }
    doc.push_str("], \"target\": {\"deep\": true}}");
    let bytes = doc.as_bytes();
    let mut it = iter(bytes);
    it.next();
    match it.seek_label(b"target", 0) {
        LabelSeek::Candidate { depth_delta } => assert_eq!(depth_delta, 0),
        other => panic!("{other:?}"),
    }
    let next = it.next().unwrap();
    assert_eq!(it.label_before(next.position()), Some(&b"target"[..]));
}

#[test]
fn candidate_labels_inside_absorbed_subtrees_are_found() {
    // The candidate may itself be nested inside subtrees the seek walks
    // through — it must still be found with the right depth delta.
    let input = br#"[[{"target": {"v": 1}}]]"#;
    let mut it = iter(input);
    it.next(); // outer [
    match it.seek_label(b"target", 0) {
        LabelSeek::Candidate { depth_delta } => assert_eq!(depth_delta, 2),
        other => panic!("{other:?}"),
    }
}
