//! Skipping to a label *within an element* (§4.5's proposed classifier
//! extension, §5.6's "improvement opportunity" for C2ʳ-style queries).
//!
//! When the automaton sits in a *waiting* state that cannot accept in one
//! step (single label transition, looping fallback), the main loop would
//! visit every opening character, backtrack for its label, and compare —
//! only to stay in the same state almost every time. This classifier
//! instead fast-forwards: SIMD substring search locates candidate
//! occurrences of `"label"` while a depth scan (both bracket pairs at
//! once) watches for the boundary where the depth-stack would pop and the
//! state would change.
//!
//! Candidates are validated exactly like the global skip-to-label (§3.3):
//! the closing quote must lie outside a string (free here — the quote
//! masks are already computed) and a colon must follow; only candidates
//! whose member value is *composite* are reported, because in an internal
//! state an atomic value can never match.

use crate::depth::{low_bits, scan_block};
use crate::iterator::{GapScan, StructuralIterator};
use rsq_memmem::Finder;
use rsq_simd::BLOCK_SIZE;

/// Outcome of [`StructuralIterator::seek_label`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelSeek {
    /// A member with the sought label and a composite value was found.
    /// The iterator will yield the value's opening character next;
    /// `depth_delta` is the net container-depth change absorbed by the
    /// seek (the candidate's parent object sits that many levels away
    /// from where the seek started).
    Candidate {
        /// Net depth change relative to where the seek started.
        depth_delta: i32,
    },
    /// The depth dropped below the allowed window: the closing character
    /// crossing the boundary is left pending and will be yielded next.
    /// The absorbed depth change is exactly `-levels`.
    Boundary,
    /// The input ended (malformed document).
    End,
}

/// Memoized `memmem` frontier for one needle over one input.
///
/// [`StructuralIterator::seek_direct_member`] runs once per container,
/// and containers that do *not* hold the sought label would each pay a
/// substring search all the way to the next occurrence elsewhere in the
/// document — megabytes away, or clean through EOF for a rare label —
/// only for the result to be discarded at the container boundary and
/// re-derived by the next sibling's seek, turning a linear walk
/// quadratic. Since seeks only ever move forward, the first occurrence
/// at-or-after an already-searched position stays valid: the memo
/// remembers it (or the proven absence of one) and answers later
/// lookups from positions it covers without touching the haystack.
#[derive(Clone, Copy, Debug, Default)]
pub struct CandidateMemo {
    /// `(covered_from, next)`: the first occurrence at or after
    /// `covered_from` is `next` (`None` = no occurrence through EOF).
    /// `None` until the first search.
    state: Option<(usize, Option<usize>)>,
}

impl CandidateMemo {
    /// The first occurrence of `finder`'s needle at or after `pos`,
    /// searching only when the memo does not already cover `pos`.
    pub fn find_from(&mut self, finder: &Finder, input: &[u8], pos: usize) -> Option<usize> {
        if let Some((covered_from, next)) = self.state {
            if pos >= covered_from {
                match next {
                    None => return None,
                    Some(c) if c >= pos => return Some(c),
                    Some(_) => {}
                }
            }
        }
        let found = finder.find_from(input, pos);
        self.state = Some((pos, found));
        found
    }
}

/// Outcome of [`StructuralIterator::seek_direct_member`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectSeek {
    /// A *direct* member named `"label"` with a composite value was
    /// found; the iterator will yield the value's opening character
    /// next.
    Composite {
        /// Position of the value's opening `{` / `[`.
        pos: usize,
    },
    /// A direct member with an atomic value was found (only reported
    /// when `accept_atomic` is set); the iterator is positioned at the
    /// value's first byte.
    Atomic {
        /// Position of the atomic value's first byte.
        pos: usize,
    },
    /// The current container closed before another direct member named
    /// `"label"`: the closing character is left pending and will be
    /// yielded by the next `next` call.
    Boundary,
    /// The input ended (malformed document).
    End,
}

impl<'a> StructuralIterator<'a> {
    /// Fast-forwards to the next *direct* member of the current container
    /// named by `needle` (a `"label"` byte string searched by `finder`),
    /// or to the container's closing character — whichever comes first.
    ///
    /// This is the fast-path variant of [`seek_label`](Self::seek_label)
    /// (DESIGN.md §15): the depth scan runs with the boundary one level
    /// up (`levels = 0`), and candidates found *nested* below the current
    /// container are declined in-scan without validation, so the caller
    /// only ever sees members whose automaton transition it precomputed.
    ///
    /// The current container must be an **object** (the caller skips
    /// array containers whole — a label step cannot match inside one),
    /// which lets the depth scan track the brace pair alone, exactly
    /// like [`skip_past_close`](Self::skip_past_close) tracks a single
    /// pair: every labelled member sits directly inside some object, so
    /// a candidate nested anywhere below this container is separated
    /// from it by at least one brace, and the container's own closing
    /// brace is the first position where the brace depth drops to zero.
    /// Candidate validation is identical to the head start's: the closing
    /// quote must lie outside a string (an escaped-quote lookalike reads
    /// as inside), a colon must follow, and the member value decides the
    /// outcome — composite values are always reported, atomic values only
    /// when `accept_atomic` is set (the caller's state accepts), and
    /// malformed constructs (`}`/`]`/`,`/`:` after the colon) are
    /// declined. Every declined candidate bumps `declined`.
    ///
    /// `finder` must search for exactly the bytes of `needle`; the two
    /// are passed separately so the caller can build the finder once per
    /// run instead of once per seek. `memo` must likewise persist across
    /// the seeks of one run (one per needle) — it is what keeps repeated
    /// seeks over label-free sibling containers linear.
    pub fn seek_direct_member(
        &mut self,
        finder: &Finder,
        needle: &[u8],
        memo: &mut CandidateMemo,
        accept_atomic: bool,
        declined: &mut u64,
    ) -> DirectSeek {
        self.clear_peeked();
        let input = self.input();
        let simd = self.simd();
        debug_assert!(
            needle.len() >= 2 && needle[0] == b'"' && needle[needle.len() - 1] == b'"',
            "needle must be a quoted label"
        );

        // `sim` is the simulated *brace* depth with the boundary at
        // zero: the current object is level 1; a candidate is a direct
        // member exactly when `sim == 1` at its position.
        let mut sim = 1usize;
        let mut cand = memo.find_from(finder, input, self.position());
        // A candidate whose depth scan is complete but whose closing
        // quote lies in a block not yet quote-classified.
        let mut deferred: Option<usize> = None;

        loop {
            let Some((start, within)) = self.seek_current_block() else {
                return DirectSeek::End;
            };
            let block_end = start + BLOCK_SIZE;

            if let Some(c) = deferred {
                // The needle spans into this block; the bytes between the
                // candidate and its closing quote are the needle text
                // itself (no structural characters), so no depth scanning
                // is owed for the skipped region and `sim` is still the
                // candidate's depth.
                let closing_quote = c + needle.len() - 1;
                if closing_quote >= block_end {
                    if !self.consume_rest_of_block() {
                        return DirectSeek::End;
                    }
                    continue;
                }
                deferred = None;
                match self.direct_validate(c, needle, within, start, sim, accept_atomic) {
                    Some(outcome) => return outcome,
                    None => {
                        *declined = declined.saturating_add(1);
                        self.reposition_within_current(closing_quote, true);
                        cand = memo.find_from(finder, input, c + 1);
                        continue;
                    }
                }
            }

            let from_bit = self.position().saturating_sub(start).min(64) as u32;
            let keep = !low_bits(from_bit);
            let (opens, closes) = {
                let (o, c) = simd.eq_mask2(self.seek_block_bytes(start), b'{', b'}');
                (o & !within, c & !within)
            };

            match cand {
                Some(c) if c < block_end => {
                    debug_assert!(c >= self.position(), "candidate behind the scan");
                    // Scan depth only up to the candidate.
                    let cand_bit = (c - start) as u32;
                    let below = low_bits(cand_bit) & keep;
                    if let Some(rel) = scan_block(opens & below, closes & below, &mut sim) {
                        // Boundary crossing before the candidate.
                        self.reposition_within_current(start + rel as usize, false);
                        return DirectSeek::Boundary;
                    }
                    self.reposition_within_current(c, true);
                    if sim != 1 {
                        // Nested occurrence: not a direct member, decline
                        // without validating.
                        *declined = declined.saturating_add(1);
                        cand = memo.find_from(finder, input, c + 1);
                        continue;
                    }
                    let closing_quote = c + needle.len() - 1;
                    if closing_quote >= block_end {
                        // Needle straddles the block boundary: defer the
                        // validation until its block is classified.
                        deferred = Some(c);
                        if !self.consume_rest_of_block() {
                            return DirectSeek::End;
                        }
                        continue;
                    }
                    match self.direct_validate(c, needle, within, start, sim, accept_atomic) {
                        Some(outcome) => return outcome,
                        None => {
                            *declined = declined.saturating_add(1);
                            cand = memo.find_from(finder, input, c + 1);
                            continue;
                        }
                    }
                }
                _ => {
                    // No candidate in this block: full-depth scan of the
                    // remainder, then a tight block loop across the gap
                    // to the candidate (or the boundary, or EOF).
                    if let Some(rel) = scan_block(opens & keep, closes & keep, &mut sim) {
                        self.reposition_within_current(start + rel as usize, false);
                        return DirectSeek::Boundary;
                    }
                    match self.seek_gap_scan(cand.unwrap_or(usize::MAX), &mut sim) {
                        GapScan::Boundary => return DirectSeek::Boundary,
                        GapScan::Reached => {}
                        GapScan::End => return DirectSeek::End,
                    }
                }
            }
        }
    }

    /// Validates the direct-member candidate at `c` whose closing quote
    /// lies in the current block (`start`/`within`). Returns the outcome
    /// for a valid member, or `None` to decline and continue seeking.
    fn direct_validate(
        &mut self,
        c: usize,
        needle: &[u8],
        within: u64,
        start: usize,
        sim: usize,
        accept_atomic: bool,
    ) -> Option<DirectSeek> {
        let input = self.input();
        // A deferred candidate's directness is checked here (its depth
        // could not change while the needle text was being skipped).
        if sim != 1 {
            return None;
        }
        // A genuine label's closing quote lies outside a string; a
        // lookalike with escaped quotes reads as inside.
        let closing_quote = c + needle.len() - 1;
        debug_assert!((start..start + BLOCK_SIZE).contains(&closing_quote));
        if within >> (closing_quote - start) & 1 == 1 {
            return None;
        }
        let colon = first_nonws(input, c + needle.len())?;
        if input[colon] != b':' {
            return None;
        }
        let v = first_nonws(input, colon + 1)?;
        match input[v] {
            b'{' | b'[' => {
                // Position the iterator so the value's opening is the next
                // event. The gap [c, v) holds only the label string,
                // whitespace, and the colon — no structural characters
                // survive the masks there.
                if !self.advance_to(v) {
                    return None;
                }
                Some(DirectSeek::Composite { pos: v })
            }
            b'}' | b']' | b',' | b':' => None, // malformed construct
            _ if accept_atomic => {
                // Atomic value: the bytes in [c, v) are non-structural, and
                // the value itself contains structural characters only
                // inside strings, so positioning at `v` keeps the depth
                // scan consistent for the caller's follow-up fast-forward.
                if !self.advance_to(v) {
                    return None;
                }
                Some(DirectSeek::Atomic { pos: v })
            }
            _ => None, // atomic value cannot match in an internal state
        }
    }

    /// Fast-forwards to the next member named `label` (with a composite
    /// value) within the current element and its subtree, or to the
    /// closing character that would drop the depth more than `levels`
    /// levels below the current one — whichever comes first.
    ///
    /// Callers must ensure the automaton state cannot change on any event
    /// the seek absorbs: in the engine this means a *waiting, internal*
    /// state (fallback loops; no transition accepts in one step), with
    /// the boundary set to the topmost depth-stack frame.
    pub fn seek_label(&mut self, label: &[u8], levels: u32) -> LabelSeek {
        self.clear_peeked();
        let input = self.input();
        let simd = self.simd();
        let mut needle = Vec::with_capacity(label.len() + 2);
        needle.push(b'"');
        needle.extend_from_slice(label);
        needle.push(b'"');
        let finder = Finder::with_simd(&needle, simd);

        // `sim` is the simulated depth with the boundary at zero: it
        // starts at `levels + 1`; the closing that would take it to 0 is
        // the boundary crossing and is left pending.
        let mut sim = levels as usize + 1;
        let mut cand = finder.find_from(input, self.position());
        // A candidate whose depth scan is complete but whose closing quote
        // lies in a block not yet quote-classified.
        let mut deferred: Option<usize> = None;

        loop {
            let Some((start, within)) = self.seek_current_block() else {
                return LabelSeek::End;
            };
            let block_end = start + BLOCK_SIZE;

            if let Some(c) = deferred {
                // The needle spans into this block; the bytes between the
                // candidate and its closing quote are the needle text
                // itself, which contains no structural characters, so no
                // depth scanning is owed for the skipped region.
                let closing_quote = c + needle.len() - 1;
                if closing_quote >= block_end {
                    if !self.consume_rest_of_block() {
                        return LabelSeek::End;
                    }
                    continue;
                }
                deferred = None;
                match self.seek_validate(c, &needle, within, start, sim, levels) {
                    Some(outcome) => return outcome,
                    None => {
                        self.reposition_within_current(closing_quote, true);
                        cand = finder.find_from(input, c + 1);
                        continue;
                    }
                }
            }

            let from_bit = self.position().saturating_sub(start).min(64) as u32;
            let keep = !low_bits(from_bit);
            let (opens, closes) = {
                let bytes = self.seek_block_bytes(start);
                let (ob, cb) = simd.eq_mask2(bytes, b'{', b'[');
                let (oe, ce) = simd.eq_mask2(bytes, b'}', b']');
                ((ob | cb) & !within, (oe | ce) & !within)
            };

            match cand {
                Some(c) if c < block_end => {
                    debug_assert!(c >= self.position(), "candidate behind the scan");
                    // Scan depth only up to the candidate.
                    let cand_bit = (c - start) as u32;
                    let below = low_bits(cand_bit) & keep;
                    if let Some(rel) = scan_block(opens & below, closes & below, &mut sim) {
                        // Boundary crossing before the candidate.
                        self.reposition_within_current(start + rel as usize, false);
                        return LabelSeek::Boundary;
                    }
                    self.reposition_within_current(c, true);
                    let closing_quote = c + needle.len() - 1;
                    if closing_quote >= block_end {
                        // Needle straddles the block boundary: defer the
                        // validation until its block is classified.
                        deferred = Some(c);
                        if !self.consume_rest_of_block() {
                            return LabelSeek::End;
                        }
                        continue;
                    }
                    match self.seek_validate(c, &needle, within, start, sim, levels) {
                        Some(outcome) => return outcome,
                        None => {
                            cand = finder.find_from(input, c + 1);
                            continue;
                        }
                    }
                }
                _ => {
                    // No candidate in this block: full-depth scan.
                    if let Some(rel) = scan_block(opens & keep, closes & keep, &mut sim) {
                        self.reposition_within_current(start + rel as usize, false);
                        return LabelSeek::Boundary;
                    }
                    if !self.seek_advance_block() {
                        return LabelSeek::End;
                    }
                }
            }
        }
    }

    /// Validates the candidate at `c` whose closing quote lies in the
    /// current block (`start`/`within`). Returns the outcome for a valid
    /// composite-valued member, or `None` to continue seeking.
    fn seek_validate(
        &mut self,
        c: usize,
        needle: &[u8],
        within: u64,
        start: usize,
        sim: usize,
        levels: u32,
    ) -> Option<LabelSeek> {
        let input = self.input();
        // A genuine label's closing quote lies outside a string; a
        // lookalike with escaped quotes reads as inside.
        let closing_quote = c + needle.len() - 1;
        debug_assert!((start..start + BLOCK_SIZE).contains(&closing_quote));
        if within >> (closing_quote - start) & 1 == 1 {
            return None;
        }
        let colon = first_nonws(input, c + needle.len())?;
        if input[colon] != b':' {
            return None;
        }
        let v = first_nonws(input, colon + 1)?;
        if !matches!(input[v], b'{' | b'[') {
            // Atomic value: cannot match in an internal state.
            return None;
        }
        // Position the iterator so the value's opening is the next event.
        // The gap [c, v) holds only the label string, whitespace, and the
        // colon — no structural characters survive the masks there.
        if !self.advance_to(v) {
            return None;
        }
        Some(LabelSeek::Candidate {
            depth_delta: sim as i32 - (levels as i32 + 1),
        })
    }
}

fn first_nonws(input: &[u8], pos: usize) -> Option<usize> {
    input[pos.min(input.len())..]
        .iter()
        .position(|&b| !matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        .map(|off| pos + off)
}
