//! Skipping to a label *within an element* (§4.5's proposed classifier
//! extension, §5.6's "improvement opportunity" for C2ʳ-style queries).
//!
//! When the automaton sits in a *waiting* state that cannot accept in one
//! step (single label transition, looping fallback), the main loop would
//! visit every opening character, backtrack for its label, and compare —
//! only to stay in the same state almost every time. This classifier
//! instead fast-forwards: SIMD substring search locates candidate
//! occurrences of `"label"` while a depth scan (both bracket pairs at
//! once) watches for the boundary where the depth-stack would pop and the
//! state would change.
//!
//! Candidates are validated exactly like the global skip-to-label (§3.3):
//! the closing quote must lie outside a string (free here — the quote
//! masks are already computed) and a colon must follow; only candidates
//! whose member value is *composite* are reported, because in an internal
//! state an atomic value can never match.

use crate::depth::{low_bits, scan_block};
use crate::iterator::StructuralIterator;
use rsq_memmem::Finder;
use rsq_simd::BLOCK_SIZE;

/// Outcome of [`StructuralIterator::seek_label`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelSeek {
    /// A member with the sought label and a composite value was found.
    /// The iterator will yield the value's opening character next;
    /// `depth_delta` is the net container-depth change absorbed by the
    /// seek (the candidate's parent object sits that many levels away
    /// from where the seek started).
    Candidate {
        /// Net depth change relative to where the seek started.
        depth_delta: i32,
    },
    /// The depth dropped below the allowed window: the closing character
    /// crossing the boundary is left pending and will be yielded next.
    /// The absorbed depth change is exactly `-levels`.
    Boundary,
    /// The input ended (malformed document).
    End,
}

impl<'a> StructuralIterator<'a> {
    /// Fast-forwards to the next member named `label` (with a composite
    /// value) within the current element and its subtree, or to the
    /// closing character that would drop the depth more than `levels`
    /// levels below the current one — whichever comes first.
    ///
    /// Callers must ensure the automaton state cannot change on any event
    /// the seek absorbs: in the engine this means a *waiting, internal*
    /// state (fallback loops; no transition accepts in one step), with
    /// the boundary set to the topmost depth-stack frame.
    pub fn seek_label(&mut self, label: &[u8], levels: u32) -> LabelSeek {
        self.clear_peeked();
        let input = self.input();
        let simd = self.simd();
        let mut needle = Vec::with_capacity(label.len() + 2);
        needle.push(b'"');
        needle.extend_from_slice(label);
        needle.push(b'"');
        let finder = Finder::with_simd(&needle, simd);

        // `sim` is the simulated depth with the boundary at zero: it
        // starts at `levels + 1`; the closing that would take it to 0 is
        // the boundary crossing and is left pending.
        let mut sim = levels as usize + 1;
        let mut cand = finder.find_from(input, self.position());
        // A candidate whose depth scan is complete but whose closing quote
        // lies in a block not yet quote-classified.
        let mut deferred: Option<usize> = None;

        loop {
            let Some((start, within)) = self.seek_current_block() else {
                return LabelSeek::End;
            };
            let block_end = start + BLOCK_SIZE;

            if let Some(c) = deferred {
                // The needle spans into this block; the bytes between the
                // candidate and its closing quote are the needle text
                // itself, which contains no structural characters, so no
                // depth scanning is owed for the skipped region.
                let closing_quote = c + needle.len() - 1;
                if closing_quote >= block_end {
                    if !self.consume_rest_of_block() {
                        return LabelSeek::End;
                    }
                    continue;
                }
                deferred = None;
                match self.seek_validate(c, &needle, within, start, sim, levels) {
                    Some(outcome) => return outcome,
                    None => {
                        self.reposition_within_current(closing_quote, true);
                        cand = finder.find_from(input, c + 1);
                        continue;
                    }
                }
            }

            let from_bit = self.position().saturating_sub(start).min(64) as u32;
            let keep = !low_bits(from_bit);
            let (opens, closes) = {
                let bytes = self.seek_block_bytes(start);
                let (ob, cb) = simd.eq_mask2(bytes, b'{', b'[');
                let (oe, ce) = simd.eq_mask2(bytes, b'}', b']');
                ((ob | cb) & !within, (oe | ce) & !within)
            };

            match cand {
                Some(c) if c < block_end => {
                    debug_assert!(c >= self.position(), "candidate behind the scan");
                    // Scan depth only up to the candidate.
                    let cand_bit = (c - start) as u32;
                    let below = low_bits(cand_bit) & keep;
                    if let Some(rel) = scan_block(opens & below, closes & below, &mut sim) {
                        // Boundary crossing before the candidate.
                        self.reposition_within_current(start + rel as usize, false);
                        return LabelSeek::Boundary;
                    }
                    self.reposition_within_current(c, true);
                    let closing_quote = c + needle.len() - 1;
                    if closing_quote >= block_end {
                        // Needle straddles the block boundary: defer the
                        // validation until its block is classified.
                        deferred = Some(c);
                        if !self.consume_rest_of_block() {
                            return LabelSeek::End;
                        }
                        continue;
                    }
                    match self.seek_validate(c, &needle, within, start, sim, levels) {
                        Some(outcome) => return outcome,
                        None => {
                            cand = finder.find_from(input, c + 1);
                            continue;
                        }
                    }
                }
                _ => {
                    // No candidate in this block: full-depth scan.
                    if let Some(rel) = scan_block(opens & keep, closes & keep, &mut sim) {
                        self.reposition_within_current(start + rel as usize, false);
                        return LabelSeek::Boundary;
                    }
                    if !self.seek_advance_block() {
                        return LabelSeek::End;
                    }
                }
            }
        }
    }

    /// Validates the candidate at `c` whose closing quote lies in the
    /// current block (`start`/`within`). Returns the outcome for a valid
    /// composite-valued member, or `None` to continue seeking.
    fn seek_validate(
        &mut self,
        c: usize,
        needle: &[u8],
        within: u64,
        start: usize,
        sim: usize,
        levels: u32,
    ) -> Option<LabelSeek> {
        let input = self.input();
        // A genuine label's closing quote lies outside a string; a
        // lookalike with escaped quotes reads as inside.
        let closing_quote = c + needle.len() - 1;
        debug_assert!((start..start + BLOCK_SIZE).contains(&closing_quote));
        if within >> (closing_quote - start) & 1 == 1 {
            return None;
        }
        let colon = first_nonws(input, c + needle.len())?;
        if input[colon] != b':' {
            return None;
        }
        let v = first_nonws(input, colon + 1)?;
        if !matches!(input[v], b'{' | b'[') {
            // Atomic value: cannot match in an internal state.
            return None;
        }
        // Position the iterator so the value's opening is the next event.
        // The gap [c, v) holds only the label string, whitespace, and the
        // colon — no structural characters survive the masks there.
        if !self.advance_to(v) {
            return None;
        }
        Some(LabelSeek::Candidate {
            depth_delta: sim as i32 - (levels as i32 + 1),
        })
    }
}

fn first_nonws(input: &[u8], pos: usize) -> Option<usize> {
    input[pos.min(input.len())..]
        .iter()
        .position(|&b| !matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        .map(|off| pos + off)
}
