//! Streaming structural validation.
//!
//! The engine's classifiers (§4) assume well-formed input; on garbage they
//! merely guarantee absence of panics, not meaningful results. For inputs
//! from untrusted sources the engine offers a *strict* mode, and for the
//! chunked-reader path it enforces a nesting-depth limit while bytes
//! arrive. Both are powered by [`StructuralValidator`]: an incremental,
//! SIMD-backed checker that consumes arbitrary-sized chunks, carries the
//! quote-classifier state across block boundaries (the same stop/resume
//! handoff as [`ResumeState`](crate::ResumeState), §4.5), and tracks one
//! bracket-type bit per nesting level.
//!
//! The validator checks *structure*, not full JSON grammar:
//!
//! * brackets outside strings balance and types match (`[` closes with
//!   `]`, `{` with `}`);
//! * strings terminate (escape-aware, via the quote classifier);
//! * nothing but whitespace follows a bracket-closed root value;
//! * nesting depth stays within a configurable limit.
//!
//! Token-level mistakes (`{:1}`, `[,]`, misplaced literals) pass — the
//! engine's event loop tolerates them by construction, so rejecting them
//! is a parser's job, not this validator's. Depth accounting always runs;
//! malformation *reporting* is opt-in (`strict`), so the lenient reader
//! path can enforce the depth limit alone.

use crate::quotes::QuoteState;
use rsq_simd::{BitIter, Block, ByteClassifier, ByteSet, Simd, BLOCK_SIZE};
use std::fmt;

/// What a [`StructuralValidator`] found wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidationErrorKind {
    /// A closing bracket with no container open.
    UnexpectedCloser,
    /// A closing bracket of the wrong type for the innermost container.
    MismatchedCloser,
    /// A non-whitespace byte after the root container closed.
    TrailingContent,
    /// The input ended inside a string.
    UnclosedString,
    /// The input ended with containers still open.
    UnclosedBrackets {
        /// How many containers were open at end of input.
        open: u32,
    },
    /// Nesting exceeded the configured depth limit.
    DepthLimitExceeded {
        /// The configured limit.
        limit: u32,
    },
}

/// A structural defect, located at the byte offset that revealed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValidationError {
    /// Byte offset of the offending character (end of input for
    /// `Unclosed*` kinds).
    pub pos: usize,
    /// The defect.
    pub kind: ValidationErrorKind,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ValidationErrorKind::UnexpectedCloser => {
                write!(f, "unexpected closing bracket at byte {}", self.pos)
            }
            ValidationErrorKind::MismatchedCloser => {
                write!(f, "mismatched closing bracket at byte {}", self.pos)
            }
            ValidationErrorKind::TrailingContent => {
                write!(
                    f,
                    "trailing content after document root at byte {}",
                    self.pos
                )
            }
            ValidationErrorKind::UnclosedString => {
                write!(f, "unterminated string at end of input (byte {})", self.pos)
            }
            ValidationErrorKind::UnclosedBrackets { open } => {
                write!(
                    f,
                    "{open} unclosed bracket(s) at end of input (byte {})",
                    self.pos
                )
            }
            ValidationErrorKind::DepthLimitExceeded { limit } => {
                write!(
                    f,
                    "nesting depth exceeds limit {limit} at byte {}",
                    self.pos
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Incremental structural validator over arbitrary-sized input chunks.
///
/// Feed bytes with [`feed`](Self::feed) (any chunk sizes, including one
/// byte at a time), then call [`finish`](Self::finish) once at end of
/// input. Both fail fast: after an error is detected, further feeding
/// returns the same error immediately.
///
/// # Examples
///
/// ```
/// use rsq_classify::{StructuralValidator, ValidationErrorKind};
/// use rsq_simd::Simd;
///
/// let simd = Simd::detect();
/// let mut ok = StructuralValidator::new(simd);
/// ok.feed(br#"{"a": [1, "]"]}"#).unwrap();
/// ok.finish().unwrap();
///
/// let mut bad = StructuralValidator::new(simd);
/// bad.feed(br#"{"a": [1, 2}"#).unwrap();
/// let err = bad.finish().unwrap_err();
/// assert_eq!(err.kind, ValidationErrorKind::MismatchedCloser);
/// assert_eq!(err.pos, 11);
/// ```
#[derive(Clone, Debug)]
pub struct StructuralValidator {
    simd: Simd,
    whitespace: ByteClassifier,
    quote_state: QuoteState,
    /// One bit per open container: 1 = array (`[`), 0 = object (`{`).
    stack: Vec<u64>,
    depth: u32,
    max_depth: Option<u32>,
    strict: bool,
    /// Absolute offset of the first byte of `staging`.
    consumed: usize,
    staging: Block,
    staged: usize,
    root_closed: bool,
    error: Option<ValidationError>,
}

impl StructuralValidator {
    /// A validator reporting every structural defect (strict), with no
    /// depth limit.
    #[must_use]
    pub fn new(simd: Simd) -> Self {
        StructuralValidator {
            simd,
            whitespace: ByteClassifier::new(&ByteSet::from_bytes(b" \t\n\r")),
            quote_state: QuoteState::default(),
            stack: Vec::new(),
            depth: 0,
            max_depth: None,
            strict: true,
            consumed: 0,
            staging: [0; BLOCK_SIZE],
            staged: 0,
            root_closed: false,
            error: None,
        }
    }

    /// Caps nesting depth; exceeding it is reported even when malformation
    /// reporting is off.
    #[must_use]
    pub fn with_max_depth(mut self, limit: u32) -> Self {
        self.max_depth = Some(limit);
        self
    }

    /// Enables or disables malformation reporting. With `false`, only
    /// [`DepthLimitExceeded`](ValidationErrorKind::DepthLimitExceeded) is
    /// ever reported; depth bookkeeping continues best-effort through
    /// malformed structure (extra closers are ignored).
    #[must_use]
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Consumes the next chunk of input.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect detected so far (possibly from
    /// an earlier chunk; detection is at block granularity, so an error may
    /// also surface one call late).
    pub fn feed(&mut self, mut bytes: &[u8]) -> Result<(), ValidationError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        // Top up the staging block first. If the chunk doesn't fill it,
        // the input is exhausted and the bytes stay staged.
        if self.staged > 0 {
            let take = bytes.len().min(BLOCK_SIZE - self.staged);
            self.staging[self.staged..self.staged + take].copy_from_slice(&bytes[..take]);
            self.staged += take;
            bytes = &bytes[take..];
            if self.staged < BLOCK_SIZE {
                return Ok(());
            }
            let block = self.staging;
            self.process_block(&block, BLOCK_SIZE);
            self.staged = 0;
            if let Some(err) = self.error {
                return Err(err);
            }
        }
        // Whole blocks straight from the input.
        let mut chunks = bytes.chunks_exact(BLOCK_SIZE);
        for chunk in chunks.by_ref() {
            // PANIC-OK: chunks_exact yields exactly BLOCK_SIZE-byte chunks
            let block: &Block = chunk.try_into().expect("exact chunk");
            self.process_block(block, BLOCK_SIZE);
            if let Some(err) = self.error {
                return Err(err);
            }
        }
        // Stage the remainder.
        let rest = chunks.remainder();
        self.staging[..rest.len()].copy_from_slice(rest);
        self.staged = rest.len();
        Ok(())
    }

    /// Signals end of input and reports the verdict.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect of the whole input.
    pub fn finish(&mut self) -> Result<(), ValidationError> {
        if self.error.is_none() && self.staged > 0 {
            let mut block = self.staging;
            let len = self.staged;
            // Zero the tail: stale bytes past `len` would otherwise leak
            // into the quote classifier's carried state.
            block[len..].fill(0);
            self.process_block(&block, len);
            self.consumed += len;
            self.staged = 0;
        }
        if let Some(err) = self.error {
            return Err(err);
        }
        if self.strict {
            if self.quote_state.in_string {
                return Err(self.set_error(self.consumed, ValidationErrorKind::UnclosedString));
            }
            if self.depth > 0 {
                return Err(self.set_error(
                    self.consumed,
                    ValidationErrorKind::UnclosedBrackets { open: self.depth },
                ));
            }
        }
        Ok(())
    }

    /// Nesting depth at the current frontier.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    fn set_error(&mut self, pos: usize, kind: ValidationErrorKind) -> ValidationError {
        let err = ValidationError { pos, kind };
        self.error = Some(err);
        err
    }

    fn process_block(&mut self, block: &Block, len: usize) {
        let valid = if len == BLOCK_SIZE {
            !0u64
        } else {
            (1u64 << len) - 1
        };
        let within = self.simd.classify_quotes(block, &mut self.quote_state);
        let outside = !within & valid;
        let (open_brace, close_brace) = self.simd.eq_mask2(block, b'{', b'}');
        let (open_bracket, close_bracket) = self.simd.eq_mask2(block, b'[', b']');
        let opens = (open_brace | open_bracket) & outside;
        let closes = (close_brace | close_bracket) & outside;
        let array_bits = open_bracket | close_bracket;

        // `trailing_from` is the bit after which non-whitespace bytes are
        // trailing content (the root closed there), if any.
        let mut trailing_from: Option<u32> = if self.root_closed { Some(0) } else { None };

        for bit in BitIter::new(opens | closes) {
            let pos = self.consumed + bit as usize;
            let is_array = array_bits >> bit & 1 == 1;
            if opens >> bit & 1 == 1 {
                if let Some(limit) = self.max_depth {
                    if self.depth >= limit {
                        self.set_error(pos, ValidationErrorKind::DepthLimitExceeded { limit });
                        return;
                    }
                }
                let (word, level_bit) = (self.depth as usize / 64, self.depth % 64);
                if word == self.stack.len() {
                    self.stack.push(0);
                }
                if is_array {
                    self.stack[word] |= 1 << level_bit;
                } else {
                    self.stack[word] &= !(1 << level_bit);
                }
                self.depth += 1;
            } else if self.depth == 0 {
                if self.strict {
                    self.set_error(pos, ValidationErrorKind::UnexpectedCloser);
                    return;
                }
                // Lenient: ignore the extra closer.
            } else {
                self.depth -= 1;
                let (word, level_bit) = (self.depth as usize / 64, self.depth % 64);
                let opened_array = self.stack[word] >> level_bit & 1 == 1;
                if self.strict && opened_array != is_array {
                    self.set_error(pos, ValidationErrorKind::MismatchedCloser);
                    return;
                }
                if self.depth == 0 && !self.root_closed {
                    self.root_closed = true;
                    trailing_from = Some(bit + 1);
                }
            }
        }

        if self.strict {
            if let Some(from) = trailing_from {
                // Any non-whitespace byte after the root closed is trailing
                // content — including string bytes, so use `valid`, not
                // `outside`.
                let after = if from >= 64 { 0 } else { !0u64 << from };
                let nonws = !self.whitespace.classify_block(self.simd, block) & valid;
                let trailing = nonws & after;
                if trailing != 0 {
                    let pos = self.consumed + trailing.trailing_zeros() as usize;
                    self.set_error(pos, ValidationErrorKind::TrailingContent);
                    return;
                }
            }
        }

        if len == BLOCK_SIZE {
            self.consumed += BLOCK_SIZE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simd() -> Simd {
        Simd::detect()
    }

    fn validate(input: &[u8]) -> Result<(), ValidationError> {
        let mut v = StructuralValidator::new(simd());
        v.feed(input)?;
        v.finish()
    }

    /// Every chunking of the input must yield the identical verdict.
    fn validate_chunked(input: &[u8], chunk: usize) -> Result<(), ValidationError> {
        let mut v = StructuralValidator::new(simd());
        for piece in input.chunks(chunk.max(1)) {
            v.feed(piece)?;
        }
        v.finish()
    }

    #[test]
    fn accepts_well_formed() {
        for doc in [
            br#"{"a": [1, 2, {"b": "]}"}]}"#.as_slice(),
            b"[]",
            b"{}",
            br#"  {"x": "\"{["}  "#,
            b"123",
            br#""just a string""#,
            b"",
            b"   ",
        ] {
            assert_eq!(validate(doc), Ok(()), "{:?}", String::from_utf8_lossy(doc));
        }
    }

    #[test]
    fn rejects_structural_garbage() {
        let cases: &[(&[u8], ValidationErrorKind)] = &[
            (b"}}}}", ValidationErrorKind::UnexpectedCloser),
            (b"]]]]{{{{", ValidationErrorKind::UnexpectedCloser),
            (b"{{{{", ValidationErrorKind::UnclosedBrackets { open: 4 }),
            (b"[[[[", ValidationErrorKind::UnclosedBrackets { open: 4 }),
            (b"{\"a\"", ValidationErrorKind::UnclosedBrackets { open: 1 }),
            (b"\"unterminated", ValidationErrorKind::UnclosedString),
            (b"{\"a\": [1, 2}", ValidationErrorKind::MismatchedCloser),
            (b"[{\"x\": ]1}", ValidationErrorKind::MismatchedCloser),
            (b"{} {}", ValidationErrorKind::TrailingContent),
            (b"{}x", ValidationErrorKind::TrailingContent),
            (b"[] \"s\"", ValidationErrorKind::TrailingContent),
        ];
        for &(doc, want) in cases {
            let got = validate(doc).unwrap_err();
            assert_eq!(got.kind, want, "{:?}", String::from_utf8_lossy(doc));
        }
    }

    #[test]
    fn brackets_inside_strings_are_ignored() {
        assert_eq!(validate(br#"{"s": "}}}]]]["}"#), Ok(()));
        assert_eq!(validate(br#"["a\"]", "]"]"#), Ok(()));
    }

    #[test]
    fn chunking_is_invisible() {
        let mut doc = br#"{"pad": ""#.to_vec();
        doc.extend(std::iter::repeat_n(b'x', 200));
        doc.extend_from_slice(br#"", "deep": [[[{"a": 1}]]]}"#);
        let whole = validate(&doc);
        for chunk in [1, 2, 3, 7, 63, 64, 65, 256] {
            assert_eq!(validate_chunked(&doc, chunk), whole, "chunk {chunk}");
        }
        let mut bad = doc.clone();
        let len = bad.len();
        bad[len - 1] = b')'; // drop the final closer
        let whole = validate(&bad);
        assert!(whole.is_err());
        for chunk in [1, 5, 64, 100] {
            assert_eq!(validate_chunked(&bad, chunk), whole, "chunk {chunk}");
        }
    }

    #[test]
    fn depth_limit_trips_exactly() {
        let doc = b"[[[[[[[[]]]]]]]]"; // depth 8
        let v = |limit| {
            let mut v = StructuralValidator::new(simd()).with_max_depth(limit);
            v.feed(doc).and_then(|()| v.finish())
        };
        assert_eq!(v(8), Ok(()));
        let err = v(7).unwrap_err();
        assert_eq!(
            err.kind,
            ValidationErrorKind::DepthLimitExceeded { limit: 7 }
        );
        assert_eq!(err.pos, 7);
    }

    #[test]
    fn lenient_mode_reports_only_depth() {
        let mut v = StructuralValidator::new(simd())
            .strict(false)
            .with_max_depth(4);
        v.feed(b"}}}} [1, 2").unwrap();
        v.finish().unwrap();

        let mut v = StructuralValidator::new(simd())
            .strict(false)
            .with_max_depth(4);
        let err = v
            .feed(b"]]] [[[[[ 1")
            .and_then(|()| v.finish())
            .unwrap_err();
        assert_eq!(
            err.kind,
            ValidationErrorKind::DepthLimitExceeded { limit: 4 }
        );
    }

    #[test]
    fn deep_document_fails_fast_without_memory_blowup() {
        // One million openers, fed in chunks: the validator must stop at
        // the limit, long before buffering the rest.
        let chunk = vec![b'['; 4096];
        let mut v = StructuralValidator::new(simd()).with_max_depth(1024);
        let mut result = Ok(());
        for _ in 0..250 {
            result = v.feed(&chunk);
            if result.is_err() {
                break;
            }
        }
        let err = result.unwrap_err();
        assert_eq!(
            err.kind,
            ValidationErrorKind::DepthLimitExceeded { limit: 1024 }
        );
        assert_eq!(err.pos, 1024);
    }

    #[test]
    fn error_positions_are_absolute() {
        let mut doc = vec![b'['; 1];
        doc.extend(std::iter::repeat_n(b' ', 100));
        doc.push(b'}');
        let err = validate(&doc).unwrap_err();
        assert_eq!(err.kind, ValidationErrorKind::MismatchedCloser);
        assert_eq!(err.pos, 101);
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let err = validate(br#""ends with escape \""#).unwrap_err();
        assert_eq!(err.kind, ValidationErrorKind::UnclosedString);
    }
}
