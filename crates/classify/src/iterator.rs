//! The structural iterator (§4.3): the engine's window onto the stream.
//!
//! Classifies the input block by block through the quote and structural
//! classifiers and yields [`Structural`] events. Supports:
//!
//! * `next` / `peek` — advance to / look at the next enabled structural
//!   character;
//! * `label_before` — backtrack from a structural character to the member
//!   label preceding it (§3.4);
//! * `set_toggles` — enable/disable commas and colons on the fly,
//!   reclassifying the current block (§4.1, §4.3);
//! * `skip_past_close` / `fast_forward_to_close` — hand control to the
//!   depth classifier to fast-forward over the remainder of the current
//!   element (§4.4, §4.5), then resume structural classification.

use crate::depth::{low_bits, scan_block};
use crate::pipeline::ResumeState;
use crate::quotes::QuoteState;
use crate::structural::StructuralTables;
use rsq_obs::ClassifierCounters;
use rsq_simd::{Block, Simd, Superblock, BLOCK_SIZE, SUPERBLOCK_BLOCKS, SUPERBLOCK_SIZE};

/// The two kinds of JSON containers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BracketType {
    /// `{` … `}` — an object.
    Brace,
    /// `[` … `]` — an array.
    Bracket,
}

impl BracketType {
    /// The opening character.
    #[must_use]
    pub fn opening(self) -> u8 {
        match self {
            BracketType::Brace => b'{',
            BracketType::Bracket => b'[',
        }
    }

    /// The closing character.
    #[must_use]
    pub fn closing(self) -> u8 {
        match self {
            BracketType::Brace => b'}',
            BracketType::Bracket => b']',
        }
    }
}

/// A structural event, carrying its absolute byte position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Structural {
    /// `{` or `[`.
    Opening(BracketType, usize),
    /// `}` or `]`.
    Closing(BracketType, usize),
    /// `:` (only when colons are toggled on).
    Colon(usize),
    /// `,` (only when commas are toggled on).
    Comma(usize),
}

impl Structural {
    /// The absolute byte position of the character.
    #[must_use]
    pub fn position(self) -> usize {
        match self {
            Structural::Opening(_, p)
            | Structural::Closing(_, p)
            | Structural::Colon(p)
            | Structural::Comma(p) => p,
        }
    }

    /// Returns `true` for `{` and `[`.
    #[must_use]
    pub fn is_opening(self) -> bool {
        matches!(self, Structural::Opening(..))
    }
}

/// Outcome of [`StructuralIterator::seek_gap_scan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum GapScan {
    /// The brace depth dropped to zero; the closing brace is left
    /// pending and will be yielded by the next `next` call.
    Boundary,
    /// The block containing `until` is loaded and unconsumed.
    Reached,
    /// The input ended.
    End,
}

/// A quote-and-structurally classified block in flight.
#[derive(Clone, Copy, Debug)]
struct CurrentBlock {
    start: usize,
    within_quotes: u64,
    /// Quote state at the start of this block (for stop/resume handoff).
    state_before: QuoteState,
    /// Structural bits not yet consumed.
    mask: u64,
}

/// Walks the input in 64-byte blocks, running the quote classifier over
/// each exactly once. This is the shared lower layer of the
/// multi-classifier pipeline (§4.5): both the structural iterator and the
/// depth fast-forward consume blocks from the same cursor, so the quote
/// classification is never repeated or skipped.
///
/// Internally the cursor quote-classifies four blocks at a time through
/// the superblock kernel, amortizing the backend dispatch cost.
#[derive(Clone, Debug)]
struct BlockCursor<'a> {
    input: &'a [u8],
    simd: Simd,
    /// Offset of the next block to classify (multiple of [`BLOCK_SIZE`]).
    next_block: usize,
    /// Quote state at `next_block`.
    quote_state: QuoteState,
    /// Classified blocks not yet handed out: (start, within-quotes
    /// mask, quote state before the block). Block bytes are viewed
    /// directly in the input — no copies — except for the zero-padded
    /// final partial block, stored in `tail`.
    buf: [(usize, u64, QuoteState); SUPERBLOCK_BLOCKS],
    buf_len: usize,
    buf_pos: usize,
    /// Zero-padded copy of the final partial block, if synthesized.
    tail: Block,
    /// Start offset of `tail`, or `usize::MAX` when unset.
    tail_start: usize,
}

impl<'a> BlockCursor<'a> {
    fn new(input: &'a [u8], simd: Simd) -> Self {
        Self::from_resume(input, simd, ResumeState::default())
    }

    fn from_resume(input: &'a [u8], simd: Simd, resume: ResumeState) -> Self {
        BlockCursor {
            input,
            simd,
            next_block: resume.block_start,
            quote_state: resume.quote_state,
            buf: [(0, 0, QuoteState::default()); SUPERBLOCK_BLOCKS],
            buf_len: 0,
            buf_pos: 0,
            tail: [0; BLOCK_SIZE],
            tail_start: usize::MAX,
        }
    }

    /// Classifies the next block's quotes and returns `(start,
    /// within-quotes mask, state before)`, or `None` at EOF.
    fn next(&mut self) -> Option<(usize, u64, QuoteState)> {
        if self.buf_pos == self.buf_len {
            self.refill();
            if self.buf_len == 0 {
                return None;
            }
        }
        let entry = self.buf[self.buf_pos];
        self.buf_pos += 1;
        Some(entry)
    }

    /// The classification frontier: the next block `next` would return and
    /// the quote state entering it.
    fn frontier(&self) -> ResumeState {
        if self.buf_pos < self.buf_len {
            let (start, _, state_before) = self.buf[self.buf_pos];
            ResumeState {
                block_start: start,
                quote_state: state_before,
            }
        } else {
            ResumeState {
                block_start: self.next_block,
                quote_state: self.quote_state,
            }
        }
    }

    /// Start offset of the next block `next` would return, or `None` at
    /// EOF. Refills the buffer if needed.
    fn peek_start(&mut self) -> Option<usize> {
        if self.buf_pos == self.buf_len {
            self.refill();
            if self.buf_len == 0 {
                return None;
            }
        }
        Some(self.buf[self.buf_pos].0)
    }

    fn refill(&mut self) {
        self.buf_pos = 0;
        self.buf_len = 0;
        let start = self.next_block;
        if start >= self.input.len() {
            return;
        }
        if start + SUPERBLOCK_SIZE <= self.input.len() {
            let chunk: &Superblock = self.input[start..start + SUPERBLOCK_SIZE]
                .try_into()
                // PANIC-OK: the slice is exactly SUPERBLOCK_SIZE bytes, so try_into cannot fail
                .expect("superblock sized");
            let mut state_before = self.quote_state;
            let (within, after) = self.simd.classify_quotes4(chunk, &mut self.quote_state);
            for i in 0..SUPERBLOCK_BLOCKS {
                self.buf[i] = (start + i * BLOCK_SIZE, within[i], state_before);
                state_before = after[i];
            }
            self.buf_len = SUPERBLOCK_BLOCKS;
            self.next_block = start + SUPERBLOCK_SIZE;
        } else {
            // Tail: one zero-padded block at a time.
            let end = (start + BLOCK_SIZE).min(self.input.len());
            if end < start + BLOCK_SIZE {
                self.tail = [0u8; BLOCK_SIZE];
                self.tail[..end - start].copy_from_slice(&self.input[start..end]);
                self.tail_start = start;
            }
            let state_before = self.quote_state;
            let mut state = self.quote_state;
            let within = self.simd.classify_quotes(self.bytes_at(start), &mut state);
            self.quote_state = state;
            self.buf[0] = (start, within, state_before);
            self.buf_len = 1;
            self.next_block = start + BLOCK_SIZE;
        }
    }

    /// A zero-copy view of the block starting at `start`; partial final
    /// blocks resolve to the zero-padded `tail` copy.
    #[inline]
    fn bytes_at(&self, start: usize) -> &Block {
        if start + BLOCK_SIZE <= self.input.len() {
            self.input[start..start + BLOCK_SIZE]
                .try_into()
                // PANIC-OK: the slice is exactly BLOCK_SIZE bytes, so try_into cannot fail
                .expect("full block in bounds")
        } else {
            debug_assert_eq!(self.tail_start, start, "tail block not synthesized");
            &self.tail
        }
    }
}

/// The structural iterator over a JSON byte stream.
///
/// # Examples
///
/// ```
/// use rsq_classify::{Structural, StructuralIterator, BracketType};
/// use rsq_simd::Simd;
///
/// let input = br#"{"a": [1]}"#;
/// let mut iter = StructuralIterator::new(input, Simd::detect());
/// // By default only brackets/braces are classified (leaf skipping).
/// assert_eq!(iter.next(), Some(Structural::Opening(BracketType::Brace, 0)));
/// assert_eq!(iter.next(), Some(Structural::Opening(BracketType::Bracket, 6)));
/// assert_eq!(iter.label_before(6), Some(&b"a"[..]));
/// assert_eq!(iter.next(), Some(Structural::Closing(BracketType::Bracket, 8)));
/// assert_eq!(iter.next(), Some(Structural::Closing(BracketType::Brace, 9)));
/// assert_eq!(iter.next(), None);
/// ```
#[derive(Clone, Debug)]
pub struct StructuralIterator<'a> {
    cursor: BlockCursor<'a>,
    tables: StructuralTables,
    current: Option<CurrentBlock>,
    peeked: Option<Option<Structural>>,
    /// Positions `< consumed_upto` have been yielded by `next` (or skipped).
    consumed_upto: usize,
    /// Blocks pulled from the cursor, attributed to the classifier that
    /// pulled them, plus toggle flips. One saturating add per 64-byte
    /// block — always on (Tier A observability).
    counters: ClassifierCounters,
}

impl<'a> StructuralIterator<'a> {
    /// Creates an iterator at the start of `input` with commas and colons
    /// disabled.
    #[must_use]
    pub fn new(input: &'a [u8], simd: Simd) -> Self {
        StructuralIterator {
            cursor: BlockCursor::new(input, simd),
            tables: StructuralTables::new(),
            current: None,
            peeked: None,
            consumed_upto: 0,
            counters: ClassifierCounters::default(),
        }
    }

    /// Creates an iterator that starts yielding events at `start_pos`,
    /// resuming quote classification from `resume` (a classification
    /// origin at or before `start_pos` with a known quote state — blocks
    /// are counted from that origin, which need not be 64-byte aligned).
    ///
    /// This is the resume half of the multi-classifier pipeline (§4.5),
    /// used by skip-to-label to start the engine in the middle of the
    /// document with correct in-string information.
    ///
    /// # Panics
    ///
    /// Panics if `resume.block_start` lies after `start_pos`.
    #[must_use]
    pub fn resume(input: &'a [u8], simd: Simd, resume: ResumeState, start_pos: usize) -> Self {
        assert!(resume.block_start <= start_pos, "resume point after start");
        let mut cursor = BlockCursor::from_resume(input, simd, resume);
        // Advance the quote classifier over blocks wholly before start_pos.
        // These blocks get quote classification only (no structural
        // tables), so they count as quote-classifier work.
        let mut catch_up_blocks = 0u64;
        while cursor
            .peek_start()
            .is_some_and(|s| s + BLOCK_SIZE <= start_pos)
        {
            let _ = cursor.next();
            catch_up_blocks = catch_up_blocks.saturating_add(1);
        }
        StructuralIterator {
            cursor,
            tables: StructuralTables::new(),
            current: None,
            peeked: None,
            consumed_upto: start_pos,
            counters: ClassifierCounters {
                blocks_quote: catch_up_blocks,
                ..ClassifierCounters::default()
            },
        }
    }

    /// The underlying input.
    #[must_use]
    pub fn input(&self) -> &'a [u8] {
        self.cursor.input
    }

    /// The position after the last consumed character.
    #[must_use]
    pub fn position(&self) -> usize {
        self.consumed_upto
    }

    /// Block and toggle counters accumulated so far (Tier A
    /// observability): each 64-byte block the iterator classified,
    /// attributed to the classifier — structural, depth, seek, or
    /// quote-only — that consumed it.
    #[must_use]
    pub fn counters(&self) -> ClassifierCounters {
        self.counters
    }

    /// A [`ResumeState`] describing the current classification frontier,
    /// for handing off to another classifier or a [`crate::QuoteScanner`].
    #[must_use]
    pub fn resume_state(&self) -> ResumeState {
        match &self.current {
            Some(c) => ResumeState {
                block_start: c.start,
                quote_state: c.state_before,
            },
            None => self.cursor.frontier(),
        }
    }

    /// Yields the next enabled structural character.
    #[allow(clippy::should_implement_trait)] // not an Iterator: lending-style cursor with peek
    pub fn next(&mut self) -> Option<Structural> {
        let item = match self.peeked.take() {
            Some(p) => p,
            None => self.advance(),
        };
        if let Some(s) = item {
            self.consumed_upto = s.position() + 1;
        }
        item
    }

    /// Looks at the next structural character without consuming it.
    pub fn peek(&mut self) -> Option<Structural> {
        if self.peeked.is_none() {
            let item = self.advance();
            self.peeked = Some(item);
        }
        // PANIC-OK: peeked was filled on the line above
        self.peeked.expect("just filled")
    }

    fn advance(&mut self) -> Option<Structural> {
        loop {
            if let Some(cur) = &mut self.current {
                if cur.mask != 0 {
                    let rel = cur.mask.trailing_zeros();
                    cur.mask &= cur.mask - 1;
                    let pos = cur.start + rel as usize;
                    let byte = self.cursor.input[pos];
                    return Some(to_structural(byte, pos));
                }
            }
            let (start, within_quotes, state_before) = self.cursor.next()?;
            self.counters.blocks_structural = self.counters.blocks_structural.saturating_add(1);
            let mut mask =
                self.tables
                    .classify(self.cursor.simd, self.cursor.bytes_at(start), within_quotes);
            // Drop bits before a mid-block start position (resume case).
            if self.consumed_upto > start {
                mask &= !low_bits((self.consumed_upto - start) as u32);
            }
            self.current = Some(CurrentBlock {
                start,
                within_quotes,
                state_before,
                mask,
            });
        }
    }

    /// Enables or disables comma and colon classification, reclassifying
    /// the not-yet-consumed remainder of the current block.
    ///
    /// Discards an outstanding peek: callers must toggle before peeking
    /// (the engine's main loop does — toggles happen directly after a
    /// `next` that returned an opening or closing character).
    pub fn set_toggles(&mut self, commas: bool, colons: bool) {
        debug_assert!(
            self.peeked.is_none(),
            "toggling with an outstanding peek loses events in skipped blocks"
        );
        let changed = self.tables.set_commas(commas) | self.tables.set_colons(colons);
        if !changed {
            return;
        }
        self.counters.toggle_flips = self.counters.toggle_flips.saturating_add(1);
        self.peeked = None;
        if let Some(cur) = self.current {
            let mut mask = self.tables.classify(
                self.cursor.simd,
                self.cursor.bytes_at(cur.start),
                cur.within_quotes,
            );
            if self.consumed_upto > cur.start {
                mask &= !low_bits((self.consumed_upto - cur.start) as u32);
            }
            self.current = Some(CurrentBlock { mask, ..cur });
        }
    }

    /// Whether commas are currently classified.
    #[must_use]
    pub fn commas_enabled(&self) -> bool {
        self.tables.commas_enabled()
    }

    /// Whether colons are currently classified.
    #[must_use]
    pub fn colons_enabled(&self) -> bool {
        self.tables.colons_enabled()
    }

    /// Fast-forwards past the closing character matching an already-consumed
    /// opening character of type `bracket` (*skipping children*, §3.3): the
    /// closing character itself is consumed and not yielded.
    ///
    /// Returns the position of the closing character, or `None` if the
    /// document ends first (malformed input).
    pub fn skip_past_close(&mut self, bracket: BracketType) -> Option<usize> {
        self.depth_skip(bracket, true)
    }

    /// Fast-forwards to the closing character that ends the *current*
    /// element (*skipping siblings*, §3.3). The closing character is left
    /// pending and will be yielded by the next `next` call.
    ///
    /// Returns the position of the closing character, or `None` if the
    /// document ends first (malformed input).
    pub fn fast_forward_to_close(&mut self, bracket: BracketType) -> Option<usize> {
        self.depth_skip(bracket, false)
    }

    fn depth_skip(&mut self, bracket: BracketType, consume_close: bool) -> Option<usize> {
        self.peeked = None;
        let open = bracket.opening();
        let close = bracket.closing();
        let simd = self.cursor.simd;
        let mut depth = 1usize;

        // Phase 1: the unconsumed remainder of the current block.
        if let Some(cur) = self.current {
            let rel_from = cur.start.max(self.consumed_upto) - cur.start;
            let keep = !low_bits(rel_from as u32);
            let (opens, closes) = simd.eq_mask2(self.cursor.bytes_at(cur.start), open, close);
            let opens = opens & !cur.within_quotes & keep;
            let closes = closes & !cur.within_quotes & keep;
            if let Some(rel) = scan_block(opens, closes, &mut depth) {
                return Some(self.finish_skip(cur, rel, consume_close));
            }
        }

        // The rest of the current block lies inside the skipped region;
        // drop its pending structural bits before moving on.
        if let Some(cur) = &mut self.current {
            cur.mask = 0;
        }

        // Phase 2: subsequent blocks via the shared cursor (the structural
        // classifier is stopped; the depth classifier drives the quote
        // classifier forward).
        while let Some((start, within_quotes, state_before)) = self.cursor.next() {
            self.counters.blocks_depth = self.counters.blocks_depth.saturating_add(1);
            let (opens, closes) = simd.eq_mask2(self.cursor.bytes_at(start), open, close);
            let opens = opens & !within_quotes;
            let closes = closes & !within_quotes;
            let cur = CurrentBlock {
                start,
                within_quotes,
                state_before,
                mask: 0,
            };
            self.current = Some(cur);
            if let Some(rel) = scan_block(opens, closes, &mut depth) {
                return Some(self.finish_skip(cur, rel, consume_close));
            }
        }
        self.consumed_upto = self.cursor.input.len();
        None
    }

    /// Resumes structural classification after a successful depth skip that
    /// located the target closing character at bit `rel` of block `cur`.
    fn finish_skip(&mut self, cur: CurrentBlock, rel: u32, consume_close: bool) -> usize {
        let pos = cur.start + rel as usize;
        self.consumed_upto = if consume_close { pos + 1 } else { pos };
        let mask = self.tables.classify(
            self.cursor.simd,
            self.cursor.bytes_at(cur.start),
            cur.within_quotes,
        ) & !low_bits(rel + u32::from(consume_close));
        self.current = Some(CurrentBlock { mask, ..cur });
        pos
    }

    /// Clears any outstanding peek (internal helper for classifiers that
    /// take over the stream).
    pub(crate) fn clear_peeked(&mut self) {
        self.peeked = None;
    }

    /// Tight brace-depth scan over whole blocks — the seek classifier's
    /// gap loop, mirroring `depth_skip`'s phase 2. Advances block by
    /// block counting `{`/`}` outside strings, until the depth drops to
    /// zero (closing brace left pending), the block containing `until`
    /// is loaded (left unconsumed for the caller's partial scan), or the
    /// input ends. The caller must have fully scanned the current block
    /// already.
    pub(crate) fn seek_gap_scan(&mut self, until: usize, sim: &mut usize) -> GapScan {
        let simd = self.cursor.simd;
        loop {
            let Some((start, within_quotes, state_before)) = self.cursor.next() else {
                if let Some(cur) = &mut self.current {
                    cur.mask = 0;
                }
                self.consumed_upto = self.cursor.input.len();
                return GapScan::End;
            };
            self.counters.blocks_seek = self.counters.blocks_seek.saturating_add(1);
            self.current = Some(CurrentBlock {
                start,
                within_quotes,
                state_before,
                mask: 0,
            });
            if self.consumed_upto < start {
                self.consumed_upto = start;
            }
            if until < start + BLOCK_SIZE {
                return GapScan::Reached;
            }
            let (opens, closes) = simd.eq_mask2(self.cursor.bytes_at(start), b'{', b'}');
            if let Some(rel) = scan_block(opens & !within_quotes, closes & !within_quotes, sim) {
                self.reposition_within_current(start + rel as usize, false);
                return GapScan::Boundary;
            }
        }
    }

    /// The SIMD backend handle.
    pub(crate) fn simd(&self) -> Simd {
        self.cursor.simd
    }

    /// Ensures a current block covering `position()` is loaded and returns
    /// its `(start, within_quotes)`, advancing over exhausted blocks.
    pub(crate) fn seek_current_block(&mut self) -> Option<(usize, u64)> {
        loop {
            if let Some(cur) = &self.current {
                if self.consumed_upto < cur.start + BLOCK_SIZE {
                    return Some((cur.start, cur.within_quotes));
                }
            }
            if !self.seek_advance_block() {
                return None;
            }
        }
    }

    /// Loads the next block as the current one with an empty structural
    /// mask (its events are being absorbed by a seek).
    pub(crate) fn seek_advance_block(&mut self) -> bool {
        match self.cursor.next() {
            Some((start, within_quotes, state_before)) => {
                self.counters.blocks_seek = self.counters.blocks_seek.saturating_add(1);
                self.current = Some(CurrentBlock {
                    start,
                    within_quotes,
                    state_before,
                    mask: 0,
                });
                if self.consumed_upto < start {
                    self.consumed_upto = start;
                }
                true
            }
            None => {
                if let Some(cur) = &mut self.current {
                    cur.mask = 0;
                }
                self.consumed_upto = self.cursor.input.len();
                false
            }
        }
    }

    /// Raw bytes of the block starting at `start` (which must be the
    /// current block or a fully in-bounds block).
    pub(crate) fn seek_block_bytes(&self, start: usize) -> &Block {
        self.cursor.bytes_at(start)
    }

    /// Restores structural classification of the current block from `pos`
    /// (exclusive when `consume` is set), leaving earlier bits consumed.
    pub(crate) fn reposition_within_current(&mut self, pos: usize, consume: bool) {
        let Some(cur) = self.current else { return };
        debug_assert!(pos >= cur.start && pos < cur.start + BLOCK_SIZE);
        self.consumed_upto = pos + usize::from(consume);
        let rel = (pos - cur.start) as u32;
        let mask = self.tables.classify(
            self.cursor.simd,
            self.cursor.bytes_at(cur.start),
            cur.within_quotes,
        ) & !low_bits(rel + u32::from(consume));
        self.current = Some(CurrentBlock { mask, ..cur });
    }

    /// Marks the remainder of the current block consumed (used by seeks
    /// absorbing regions known to hold no structural characters). Returns
    /// `false` at EOF.
    pub(crate) fn consume_rest_of_block(&mut self) -> bool {
        if let Some(cur) = &mut self.current {
            cur.mask = 0;
            self.consumed_upto = self.consumed_upto.max(cur.start + BLOCK_SIZE);
            true
        } else {
            self.seek_advance_block()
        }
    }

    /// Fast-forwards so that the next yielded event is at or after
    /// `target`, which must not precede the current position. Returns
    /// `false` at EOF.
    pub(crate) fn advance_to(&mut self, target: usize) -> bool {
        loop {
            if let Some(cur) = self.current {
                if target < cur.start + BLOCK_SIZE {
                    self.reposition_within_current(target, false);
                    return true;
                }
            }
            if !self.seek_advance_block() {
                return false;
            }
        }
    }

    /// Backtracks from the structural character at `pos` to the member
    /// label preceding it (§3.4).
    ///
    /// Returns the raw label bytes (escapes undecoded, quotes stripped), or
    /// `None` when there is no label — the element is an array entry or the
    /// document root — in which case the engine uses the artificial label
    /// (the automaton's fallback transition).
    #[must_use]
    pub fn label_before(&self, pos: usize) -> Option<&'a [u8]> {
        let input = self.cursor.input;
        let mut j = last_nonws_before(input, pos)?;
        if input[j] == b':' {
            j = last_nonws_before(input, j)?;
        }
        if input[j] != b'"' {
            return None;
        }
        let close = j;
        // Scan backwards for the nearest unescaped quote — the label's
        // opening quote. A quote is unescaped iff preceded by an even
        // number of backslashes.
        let mut q = close;
        loop {
            q = input[..q].iter().rposition(|&b| b == b'"')?;
            let backslashes = input[..q].iter().rev().take_while(|&&b| b == b'\\').count();
            if backslashes % 2 == 0 {
                return Some(&input[q + 1..close]);
            }
        }
    }
}

/// Index of the last non-whitespace byte strictly before `pos`.
fn last_nonws_before(input: &[u8], pos: usize) -> Option<usize> {
    input[..pos]
        .iter()
        .rposition(|&b| !matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
}

#[inline]
fn to_structural(byte: u8, pos: usize) -> Structural {
    match byte {
        b'{' => Structural::Opening(BracketType::Brace, pos),
        b'[' => Structural::Opening(BracketType::Bracket, pos),
        b'}' => Structural::Closing(BracketType::Brace, pos),
        b']' => Structural::Closing(BracketType::Bracket, pos),
        b':' => Structural::Colon(pos),
        b',' => Structural::Comma(pos),
        // PANIC-OK: the classifier only emits the six structural bytes; anything else is a solver bug worth a loud, contained crash
        other => unreachable!("classifier yielded non-structural byte {other:#04x}"),
    }
}
