//! Multi-classifier pipeline handoff (§4.5).
//!
//! Every classifier in the pipeline sits on top of the quote classifier,
//! whose state must be threaded through whenever one classifier stops and
//! another resumes. [`ResumeState`] is that handoff token: a block
//! boundary plus the quote state at it. Rust's ownership makes the
//! handoff zero-copy and statically ensures a single writer — the point
//! the paper makes about implementing the pipeline in Rust.
//!
//! [`QuoteScanner`] is the cheapest member of the pipeline: it runs *only*
//! the quote classifier, answering "is this position inside a string?" for
//! monotonically increasing positions. The engine's skip-to-label uses it
//! to validate `memmem` candidates without paying for full structural
//! classification.

use crate::quotes::QuoteState;
use rsq_simd::{Simd, Superblock, BLOCK_SIZE, SUPERBLOCK_SIZE};

/// A point in the input where classification can be resumed: a 64-byte
/// block boundary and the quote state entering it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumeState {
    /// Block-aligned offset of the first unclassified block.
    pub block_start: usize,
    /// Quote classifier state at `block_start`.
    pub quote_state: QuoteState,
}

impl Default for ResumeState {
    /// The start of the document.
    fn default() -> Self {
        ResumeState {
            block_start: 0,
            quote_state: QuoteState::default(),
        }
    }
}

/// A forward-only scanner answering in-string queries at increasing
/// positions.
///
/// # Examples
///
/// ```
/// use rsq_classify::QuoteScanner;
/// use rsq_simd::Simd;
///
/// let input = br#"{"key": "a {fake} brace"}"#;
/// let mut scanner = QuoteScanner::new(input, Simd::detect());
/// assert!(!scanner.in_string_at(0));  // '{'
/// assert!(scanner.in_string_at(2));   // 'k'
/// assert!(scanner.in_string_at(12));  // '{' inside the string
/// assert!(!scanner.in_string_at(24)); // closing '}'
/// ```
#[derive(Clone, Debug)]
pub struct QuoteScanner<'a> {
    input: &'a [u8],
    simd: Simd,
    /// Start of the current (not yet committed) block.
    block_start: usize,
    /// Quote state entering `block_start`.
    state_before: QuoteState,
    /// Blocks quote-classified so far, recomputations of the uncommitted
    /// trailing block included (Tier A observability).
    blocks: u64,
}

impl<'a> QuoteScanner<'a> {
    /// Creates a scanner at the start of the input.
    #[must_use]
    pub fn new(input: &'a [u8], simd: Simd) -> Self {
        QuoteScanner {
            input,
            simd,
            block_start: 0,
            state_before: QuoteState::default(),
            blocks: 0,
        }
    }

    /// Returns `true` if byte `pos` lies inside a string (opening quote
    /// inclusive, closing quote exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of bounds or *before* the scanner's current
    /// block — the scanner only moves forward.
    #[must_use]
    pub fn in_string_at(&mut self, pos: usize) -> bool {
        assert!(pos < self.input.len(), "position out of bounds");
        assert!(pos >= self.block_start, "scanner cannot move backwards");
        // Commit whole blocks before the one containing `pos`, superblock
        // kernel first, block by block for the remainder.
        let pos_block = pos - pos % BLOCK_SIZE;
        while self.block_start + SUPERBLOCK_SIZE <= pos_block
            && self.block_start + SUPERBLOCK_SIZE <= self.input.len()
        {
            let chunk: &Superblock = self.input
                [self.block_start..self.block_start + SUPERBLOCK_SIZE]
                .try_into()
                // PANIC-OK: the slice is exactly SUPERBLOCK_SIZE bytes, so try_into cannot fail
                .expect("superblock sized");
            let _ = self.simd.classify_quotes4(chunk, &mut self.state_before);
            self.block_start += SUPERBLOCK_SIZE;
            self.blocks = self
                .blocks
                .saturating_add((SUPERBLOCK_SIZE / BLOCK_SIZE) as u64);
        }
        while self.block_start + BLOCK_SIZE <= pos {
            let block = self.load(self.block_start);
            let _ = self.simd.classify_quotes(&block, &mut self.state_before);
            self.block_start += BLOCK_SIZE;
            self.blocks = self.blocks.saturating_add(1);
        }
        // Classify the containing block without committing its state, so
        // later queries within the same block recompute consistently.
        let block = self.load(self.block_start);
        let mut state = self.state_before;
        let within = self.simd.classify_quotes(&block, &mut state);
        self.blocks = self.blocks.saturating_add(1);
        within >> (pos - self.block_start) & 1 == 1
    }

    /// Number of 64-byte blocks quote-classified so far. Repeated queries
    /// within one uncommitted trailing block re-classify it and count each
    /// time — the counter measures work performed, not bytes covered.
    #[must_use]
    pub fn blocks_classified(&self) -> u64 {
        self.blocks
    }

    /// The scanner's frontier as a [`ResumeState`].
    #[must_use]
    pub fn resume_state(&self) -> ResumeState {
        ResumeState {
            block_start: self.block_start,
            quote_state: self.state_before,
        }
    }

    /// Fast-forwards the scanner to a later frontier (obtained from a
    /// structural iterator that already classified the region in between).
    /// A frontier at or before the current one is ignored.
    pub fn catch_up(&mut self, resume: ResumeState) {
        if resume.block_start > self.block_start {
            self.block_start = resume.block_start;
            self.state_before = resume.quote_state;
        }
    }

    fn load(&self, start: usize) -> [u8; BLOCK_SIZE] {
        let mut block = [0u8; BLOCK_SIZE];
        let end = (start + BLOCK_SIZE).min(self.input.len());
        block[..end - start].copy_from_slice(&self.input[start..end]);
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_in_string(input: &[u8]) -> Vec<bool> {
        let mut out = Vec::with_capacity(input.len());
        let mut inside = false;
        let mut escaped = false;
        for &b in input {
            if inside {
                if escaped {
                    escaped = false;
                    out.push(true);
                } else if b == b'\\' {
                    escaped = true;
                    out.push(true);
                } else if b == b'"' {
                    inside = false;
                    out.push(false);
                } else {
                    out.push(true);
                }
            } else if b == b'"' {
                inside = true;
                out.push(true);
            } else {
                out.push(false);
            }
        }
        out
    }

    #[test]
    fn matches_scalar_reference_across_blocks() {
        let mut input = br#"{"a": "x", "long": ""#.to_vec();
        input.extend(std::iter::repeat_n(b'y', 100));
        input.extend_from_slice(br#"", "z": [1, "q\"w"]}"#);
        let expected = scalar_in_string(&input);
        let mut scanner = QuoteScanner::new(&input, Simd::detect());
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(scanner.in_string_at(i), want, "pos {i}");
        }
    }

    #[test]
    fn sparse_queries_skip_blocks() {
        let mut input = vec![b' '; 300];
        input[0] = b'{';
        input[150] = b'"';
        input[200] = b'"';
        input[299] = b'}';
        let mut scanner = QuoteScanner::new(&input, Simd::detect());
        assert!(!scanner.in_string_at(10));
        assert!(scanner.in_string_at(160));
        assert!(!scanner.in_string_at(250));
        assert!(!scanner.in_string_at(299));
    }

    #[test]
    fn catch_up_moves_forward_only() {
        let input = vec![b'x'; 256];
        let mut scanner = QuoteScanner::new(&input, Simd::detect());
        let early = scanner.resume_state();
        let _ = scanner.in_string_at(130);
        let mid = scanner.resume_state();
        assert_eq!(mid.block_start, 128);
        scanner.catch_up(early); // ignored
        assert_eq!(scanner.resume_state().block_start, 128);
        scanner.catch_up(ResumeState {
            block_start: 192,
            quote_state: QuoteState::default(),
        });
        assert_eq!(scanner.resume_state().block_start, 192);
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn backwards_query_panics() {
        let input = vec![b'x'; 256];
        let mut scanner = QuoteScanner::new(&input, Simd::detect());
        let _ = scanner.in_string_at(200);
        let _ = scanner.in_string_at(10);
    }
}
