//! The structural classifier (§4.1, §4.3): locates `{ } [ ] : ,` outside
//! strings, with commas and colons toggleable on the fly.
//!
//! Uses the exact non-overlapping nibble lookup tables from the paper.
//! Because commas and colons do not share their upper nibble with any other
//! accepted symbol, each can be disabled independently by XOR-ing the upper
//! table with a precomputed mask, zeroing its group id (the lower table
//! contains only non-zero ids, so a zeroed entry can never compare equal).

use rsq_simd::{Block, Simd, TablePair};

/// The paper's upper-nibble table: group 1 = braces/brackets (uppers 5, 7),
/// group 2 = comma (upper 2), group 3 = colon (upper 3).
const UTAB: [u8; 16] = [
    0xFE, 0xFE, 0x02, 0x03, 0xFE, 0x01, 0xFE, 0x01, //
    0xFE, 0xFE, 0xFE, 0xFE, 0xFE, 0xFE, 0xFE, 0xFE,
];

/// The paper's lower-nibble table: `:` = 0x?A → 3, `[`/`{` = 0x?B → 1,
/// `,` = 0x?C → 2, `]`/`}` = 0x?D → 1.
const LTAB: [u8; 16] = [
    0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, //
    0xFF, 0xFF, 0x03, 0x01, 0x02, 0x01, 0xFF, 0xFF,
];

/// XOR mask that toggles the comma group (upper nibble 2) on or off.
const TOGGLE_COMMA: [u8; 16] = [
    0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, //
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
];

/// XOR mask that toggles the colon group (upper nibble 3) on or off.
const TOGGLE_COLON: [u8; 16] = [
    0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x00, //
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
];

/// The structural classifier's current table configuration.
///
/// Fresh classifiers start with commas and colons disabled — the default
/// iteration mode of the engine, which amounts to *skipping leaves* (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StructuralTables {
    tables: TablePair,
    commas: bool,
    colons: bool,
}

impl Default for StructuralTables {
    fn default() -> Self {
        Self::new()
    }
}

impl StructuralTables {
    /// Tables with commas and colons disabled (brackets and braces only).
    #[must_use]
    pub fn new() -> Self {
        let mut utab = UTAB;
        // Start disabled: XOR the toggle masks once.
        for (u, t) in utab.iter_mut().zip(TOGGLE_COMMA) {
            *u ^= t;
        }
        for (u, t) in utab.iter_mut().zip(TOGGLE_COLON) {
            *u ^= t;
        }
        StructuralTables {
            tables: TablePair { ltab: LTAB, utab },
            commas: false,
            colons: false,
        }
    }

    /// Whether commas are currently classified.
    #[must_use]
    pub fn commas_enabled(&self) -> bool {
        self.commas
    }

    /// Whether colons are currently classified.
    #[must_use]
    pub fn colons_enabled(&self) -> bool {
        self.colons
    }

    /// Enables or disables comma classification. Returns `true` if the
    /// setting changed (the current block must then be reclassified).
    pub fn set_commas(&mut self, enabled: bool) -> bool {
        if self.commas == enabled {
            return false;
        }
        for (u, t) in self.tables.utab.iter_mut().zip(TOGGLE_COMMA) {
            *u ^= t;
        }
        self.commas = enabled;
        true
    }

    /// Enables or disables colon classification. Returns `true` if the
    /// setting changed.
    pub fn set_colons(&mut self, enabled: bool) -> bool {
        if self.colons == enabled {
            return false;
        }
        for (u, t) in self.tables.utab.iter_mut().zip(TOGGLE_COLON) {
            *u ^= t;
        }
        self.colons = enabled;
        true
    }

    /// Classifies a block: the bitmask of enabled structural characters
    /// outside strings.
    #[inline]
    #[must_use]
    pub fn classify(&self, simd: Simd, block: &Block, within_quotes: u64) -> u64 {
        simd.lookup_eq_mask(block, &self.tables) & !within_quotes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsq_simd::BLOCK_SIZE;

    fn block_of(text: &[u8]) -> Block {
        let mut b = [b' '; BLOCK_SIZE];
        b[..text.len()].copy_from_slice(text);
        b
    }

    fn positions(mask: u64) -> Vec<usize> {
        (0..64).filter(|i| mask >> i & 1 == 1).collect()
    }

    #[test]
    fn default_tracks_only_brackets() {
        let simd = Simd::detect();
        let t = StructuralTables::new();
        let block = block_of(b"{\"a\": [1, 2]}x");
        // quotes mask: "a" spans 1..=2 (opening quote inside, closing out)
        let mask = t.classify(simd, &block, 0b110);
        assert_eq!(positions(mask), vec![0, 6, 11, 12]);
    }

    #[test]
    fn toggling_commas_and_colons() {
        let simd = Simd::detect();
        let mut t = StructuralTables::new();
        let block = block_of(b"{a: [1, 2]}");
        assert_eq!(positions(t.classify(simd, &block, 0)), vec![0, 4, 9, 10]);

        assert!(t.set_commas(true));
        assert!(!t.set_commas(true), "no change reported when already on");
        assert_eq!(positions(t.classify(simd, &block, 0)), vec![0, 4, 6, 9, 10]);

        assert!(t.set_colons(true));
        assert_eq!(
            positions(t.classify(simd, &block, 0)),
            vec![0, 2, 4, 6, 9, 10]
        );

        assert!(t.set_commas(false));
        assert_eq!(positions(t.classify(simd, &block, 0)), vec![0, 2, 4, 9, 10]);

        assert!(t.set_colons(false));
        assert_eq!(positions(t.classify(simd, &block, 0)), vec![0, 4, 9, 10]);
        assert!(!t.commas_enabled() && !t.colons_enabled());
    }

    #[test]
    fn quoted_characters_are_ignored() {
        let simd = Simd::detect();
        let mut t = StructuralTables::new();
        t.set_commas(true);
        t.set_colons(true);
        // Simulate the quote classifier having marked a string region.
        let block = block_of(b"\"{,:]\" : 1");
        let within = 0b011111; // positions 0..=4 inside the string
        assert_eq!(positions(t.classify(simd, &block, within)), vec![7]);
    }

    #[test]
    fn all_256_bytes_classify_like_membership() {
        let simd = Simd::detect();
        for (commas, colons) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut t = StructuralTables::new();
            t.set_commas(commas);
            t.set_colons(colons);
            for blk in 0..4u16 {
                let mut block = [0u8; BLOCK_SIZE];
                for (i, b) in block.iter_mut().enumerate() {
                    *b = (blk * 64 + i as u16) as u8;
                }
                let mask = t.classify(simd, &block, 0);
                for (i, &b) in block.iter().enumerate() {
                    let expected = matches!(b, b'{' | b'}' | b'[' | b']')
                        || (b == b',' && commas)
                        || (b == b':' && colons);
                    assert_eq!(
                        mask >> i & 1 == 1,
                        expected,
                        "byte {b:#04x} commas={commas} colons={colons}"
                    );
                }
            }
        }
    }
}
