//! Vectorised classification pipeline for streamed JSON (§4 of
//! *Supporting Descendants in SIMD-Accelerated JSONPath*, ASPLOS 2023).
//!
//! The pipeline turns a raw JSON byte stream into the sparse sequence of
//! events the query engine actually cares about:
//!
//! * the [quote classifier](quotes) marks characters inside strings,
//!   handling escapes with add-carry propagation and prefix-XOR (§4.2);
//! * the [structural classifier](StructuralTables) locates `{ } [ ] : ,`
//!   outside strings with the paper's nibble-lookup tables, and can toggle
//!   commas and colons on and off by XOR-ing the upper lookup table (§4.1);
//! * the [depth classifier](StructuralIterator::skip_past_close) tracks
//!   only one bracket pair and fast-forwards to the end of the current
//!   element, skipping whole blocks whenever a block holds fewer closers
//!   than the current relative depth (§4.4);
//! * the [`StructuralIterator`] stitches these into the `next`/`peek`/
//!   `label_before`/`toggle`/`skip` interface consumed by the engine's
//!   main algorithm (§3.4), and [`ResumeState`]/[`QuoteScanner`] provide
//!   the stop/resume handoff of the multi-classifier pipeline (§4.5).
//!
//! See the [`StructuralIterator`] example for typical usage.

#![warn(missing_docs)]

mod depth;
mod iterator;
mod pipeline;
pub mod quotes;
mod seek;
mod structural;
mod validate;

pub use iterator::{BracketType, Structural, StructuralIterator};
pub use pipeline::{QuoteScanner, ResumeState};
// The per-classifier block counters live in `rsq-obs` (the dependency-free
// observability layer); re-exported so classifier consumers need not name
// that crate.
pub use quotes::{classify_quotes, QuoteClassification, QuoteState};
pub use rsq_obs::ClassifierCounters;
pub use seek::{CandidateMemo, DirectSeek, LabelSeek};
pub use structural::StructuralTables;
pub use validate::{StructuralValidator, ValidationError, ValidationErrorKind};
