//! The quote classifier (§4.2): marks positions inside JSON strings.
//!
//! Per 64-byte block, backslash and quote characters are located with
//! equality masks; *add-carry propagation* finds the characters escaped by
//! odd-length backslash runs (the simdjson algorithm); and the prefix XOR
//! of the unescaped-quote mask marks everything between quotes. Two bits
//! of state carry across block boundaries: whether the block ended inside
//! an odd backslash run and whether it ended inside a string.
//!
//! The mask-level implementation (and its batched superblock kernel) lives
//! in [`rsq_simd`]; this module re-exports the state type and provides the
//! single-block convenience form used by the classifiers in this crate.

use rsq_simd::{Block, Simd};

pub use rsq_simd::QuoteState;

/// Quote classification of one block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuoteClassification {
    /// Bit *i* set ⇔ byte *i* is inside a string: from the opening quote
    /// (inclusive) to the matching closing quote (exclusive).
    pub within_quotes: u64,
}

/// Classifies one block, advancing `state` to the end of the block.
#[inline]
#[must_use]
pub fn classify_quotes(simd: Simd, block: &Block, state: &mut QuoteState) -> QuoteClassification {
    QuoteClassification {
        within_quotes: simd.classify_quotes(block, state),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsq_simd::{BLOCK_SIZE, SUPERBLOCK_SIZE};

    /// Scalar reference: byte `i` is escaped iff it is directly preceded by
    /// an odd-length maximal backslash run.
    fn scalar_escaped(input: &[u8]) -> Vec<bool> {
        let mut escaped = vec![false; input.len()];
        let mut i = 0;
        while i < input.len() {
            if input[i] == b'\\' && !escaped[i] {
                let mut run = 0;
                while i + run < input.len() && input[i + run] == b'\\' {
                    run += 1;
                }
                for j in 0..run {
                    if j % 2 == 1 {
                        if let Some(e) = escaped.get_mut(i + j) {
                            *e = true;
                        }
                    }
                }
                if run % 2 == 1 {
                    if let Some(e) = escaped.get_mut(i + run) {
                        *e = true;
                    }
                }
                i += run;
            } else {
                i += 1;
            }
        }
        escaped
    }

    /// Scalar reference for the within-string mask.
    fn scalar_within(input: &[u8]) -> Vec<bool> {
        let escaped = scalar_escaped(input);
        let mut within = vec![false; input.len()];
        let mut inside = false;
        for (i, &b) in input.iter().enumerate() {
            if b == b'"' && !escaped[i] {
                inside = !inside;
                within[i] = inside; // opening quote inside, closing outside
            } else {
                within[i] = inside;
            }
        }
        within
    }

    fn run_block_classifier(input: &[u8]) -> Vec<bool> {
        let simd = Simd::detect();
        let mut state = QuoteState::default();
        let mut out = Vec::with_capacity(input.len());
        for chunk in input.chunks(BLOCK_SIZE) {
            let mut block = [0u8; BLOCK_SIZE];
            block[..chunk.len()].copy_from_slice(chunk);
            let q = classify_quotes(simd, &block, &mut state);
            for i in 0..chunk.len() {
                out.push(q.within_quotes >> i & 1 == 1);
            }
        }
        out
    }

    fn run_superblock_classifier(input: &[u8]) -> Vec<bool> {
        let simd = Simd::detect();
        let mut state = QuoteState::default();
        let mut out = Vec::with_capacity(input.len());
        for chunk in input.chunks(SUPERBLOCK_SIZE) {
            let mut sb = [0u8; SUPERBLOCK_SIZE];
            sb[..chunk.len()].copy_from_slice(chunk);
            let (within, after) = simd.classify_quotes4(&sb, &mut state);
            for (i, w) in within.iter().enumerate() {
                for bit in 0..BLOCK_SIZE {
                    let pos = i * BLOCK_SIZE + bit;
                    if pos < chunk.len() {
                        out.push(w >> bit & 1 == 1);
                    }
                }
                let _ = after[i];
            }
        }
        out
    }

    fn check(input: &[u8]) {
        let expected = scalar_within(input);
        assert_eq!(
            run_block_classifier(input),
            expected,
            "block classifier on {:?}",
            String::from_utf8_lossy(input)
        );
        assert_eq!(
            run_superblock_classifier(input),
            expected,
            "superblock kernel on {:?}",
            String::from_utf8_lossy(input)
        );
    }

    #[test]
    fn simple_strings() {
        check(br#"{"a": "hello", "b": [1, "x"]}"#);
    }

    #[test]
    fn escaped_quotes_stay_inside() {
        check(br#""x\"y""#);
        check(br#""a\\" : "b""#);
        check(br#"{"a":"{\"b\":2022}"}"#); // the paper's §2 example
    }

    #[test]
    fn long_backslash_runs() {
        for n in 0..10 {
            let mut v = b"\"".to_vec();
            v.extend(std::iter::repeat_n(b'\\', n));
            v.extend_from_slice(b"\" {}");
            check(&v);
        }
    }

    #[test]
    fn state_carries_across_block_boundary() {
        let mut input = vec![b' '; 60];
        input.extend_from_slice(br#""a string that crosses the block boundary" : 1"#);
        check(&input);
    }

    #[test]
    fn state_carries_across_superblock_boundary() {
        let mut input = vec![b' '; 250];
        input.extend_from_slice(br#""str", ["#);
        input.extend(std::iter::repeat_n(b'x', 300));
        input.extend_from_slice(br#" "tail\"" ]"#);
        check(&input);
    }

    #[test]
    fn backslash_run_across_block_boundary() {
        for pad in 55..70 {
            for run in 1..6 {
                let mut input = vec![b'x'; pad];
                input.push(b'"');
                input.extend(std::iter::repeat_n(b'\\', run));
                input.extend_from_slice(b"\"q\" [,]");
                check(&input);
            }
        }
    }

    #[test]
    fn structural_lookalikes_inside_strings() {
        check(br#"{"s": "a,b:c{d}[e] \" \\ end", "t": 2}"#);
    }

    #[test]
    fn block_of_only_backslashes() {
        let mut input = b"\"".to_vec();
        input.extend(std::iter::repeat_n(b'\\', 130));
        input.extend_from_slice(b"\\\"\" 1");
        check(&input);
    }

    #[test]
    fn superblock_after_states_match_block_states() {
        let simd = Simd::detect();
        let mut input = br#"{"a": ""#.to_vec();
        input.extend(std::iter::repeat_n(b'y', 400));
        input.extend_from_slice(br#"", "b\\": 2}"#);
        input.resize(512, b' ');
        let sb0: &rsq_simd::Superblock = input[..256].try_into().unwrap();
        let sb1: &rsq_simd::Superblock = input[256..512].try_into().unwrap();

        let mut state_batched = QuoteState::default();
        let (_, after0) = simd.classify_quotes4(sb0, &mut state_batched);
        let (_, after1) = simd.classify_quotes4(sb1, &mut state_batched);

        let mut state_single = QuoteState::default();
        let mut afters = Vec::new();
        for chunk in input.chunks(BLOCK_SIZE) {
            let block: &rsq_simd::Block = chunk.try_into().unwrap();
            let _ = classify_quotes(simd, block, &mut state_single);
            afters.push(state_single);
        }
        assert_eq!(&afters[..4], &after0);
        assert_eq!(&afters[4..8], &after1);
    }
}
