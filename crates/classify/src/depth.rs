//! The depth classifier (§4.4): block-level primitives for fast-forwarding
//! to the closing character that ends the current element.
//!
//! Only two characters are tracked (`{`/`}` or `[`/`]`), located with two
//! equality masks. Relative depth is maintained with population counts, and
//! the block-level heuristic from the paper skips a whole block whenever it
//! contains fewer closing characters than the current relative depth —
//! nowhere inside it can the depth reach zero.

use rsq_simd::BitIter;

/// A mask of the `n` lowest bits (saturating at all-ones for `n >= 64`).
#[inline]
pub(crate) fn low_bits(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Scans one block's opening/closing masks for the position where the
/// relative depth drops to zero.
///
/// `depth` is the relative depth entering the block (must be `>= 1`); it is
/// updated to the depth at the end of the block (when `None` is returned)
/// or left at zero with the in-block bit position returned.
#[inline]
pub(crate) fn scan_block(opens: u64, closes: u64, depth: &mut usize) -> Option<u32> {
    debug_assert!(*depth >= 1);
    // Block-level heuristic: fewer closers than the current depth means the
    // depth stays positive throughout the block.
    let close_count = closes.count_ones() as usize;
    if close_count < *depth {
        *depth += opens.count_ones() as usize;
        *depth -= close_count;
        return None;
    }
    let mut prev = 0u32;
    for c in BitIter::new(closes) {
        let opens_between = opens & low_bits(c) & !low_bits(prev);
        *depth += opens_between.count_ones() as usize;
        *depth -= 1;
        if *depth == 0 {
            return Some(c);
        }
        prev = c + 1;
    }
    *depth += (opens & !low_bits(prev)).count_ones() as usize;
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masks(text: &[u8], open: u8, close: u8) -> (u64, u64) {
        let mut o = 0u64;
        let mut c = 0u64;
        for (i, &b) in text.iter().enumerate() {
            if b == open {
                o |= 1 << i;
            }
            if b == close {
                c |= 1 << i;
            }
        }
        (o, c)
    }

    #[test]
    fn finds_matching_close_in_block() {
        let (o, c) = masks(b"{a}{b{c}}", b'{', b'}');
        let mut depth = 1; // we are inside a `{` that opened before this text? no:
                           // text starts right after an opening brace; depth 1 means the first
                           // unmatched '}' closes it. "{a}" opens+closes (net 0), so the first
                           // unmatched close is... let's trace: '{'0 d=2, '}'2 d=1, '{'3 d=2,
                           // '{'5 d=3, '}'7 d=2, '}'8 d=1 — never 0.
        assert_eq!(scan_block(o, c, &mut depth), None);
        assert_eq!(depth, 1);

        let (o, c) = masks(b"{a}}rest", b'{', b'}');
        let mut depth = 1;
        assert_eq!(scan_block(o, c, &mut depth), Some(3));
        assert_eq!(depth, 0);
    }

    #[test]
    fn close_at_position_zero() {
        let (o, c) = masks(b"}x", b'{', b'}');
        let mut depth = 1;
        assert_eq!(scan_block(o, c, &mut depth), Some(0));
    }

    #[test]
    fn heuristic_skips_block_and_updates_depth() {
        // depth 5, only 2 closers: the heuristic path must fire.
        let (o, c) = masks(b"{{}}{", b'{', b'}');
        let mut depth = 5;
        assert_eq!(scan_block(o, c, &mut depth), None);
        assert_eq!(depth, 5 + 3 - 2);
    }

    #[test]
    fn deep_descent_within_block() {
        let (o, c) = masks(b"{{{{}}}}}", b'{', b'}');
        let mut depth = 1;
        assert_eq!(scan_block(o, c, &mut depth), Some(8));
    }

    #[test]
    fn low_bits_boundaries() {
        assert_eq!(low_bits(0), 0);
        assert_eq!(low_bits(1), 1);
        assert_eq!(low_bits(63), u64::MAX >> 1);
        assert_eq!(low_bits(64), u64::MAX);
        assert_eq!(low_bits(100), u64::MAX);
    }

    /// Differential check against a scalar depth counter over random
    /// bracket soups.
    #[test]
    fn agrees_with_scalar_scan() {
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for start_depth in 1..6usize {
            for _ in 0..200 {
                let bytes: Vec<u8> = (0..64)
                    .map(|_| match next() % 4 {
                        0 => b'{',
                        1 => b'}',
                        _ => b'x',
                    })
                    .collect();
                let (o, c) = masks(&bytes, b'{', b'}');

                // Scalar reference.
                let mut sd = start_depth;
                let mut expected = None;
                let mut end_depth = start_depth;
                for (i, &b) in bytes.iter().enumerate() {
                    if b == b'{' {
                        sd += 1;
                    } else if b == b'}' {
                        sd -= 1;
                        if sd == 0 {
                            expected = Some(i as u32);
                            break;
                        }
                    }
                    end_depth = sd;
                }
                let _ = end_depth;

                let mut depth = start_depth;
                let got = scan_block(o, c, &mut depth);
                assert_eq!(got, expected);
                if expected.is_none() {
                    assert_eq!(depth, sd, "end depth mismatch");
                }
            }
        }
    }
}
