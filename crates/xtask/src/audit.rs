//! The `cargo xtask audit` static-analysis pass.
//!
//! Repo-specific soundness lints over the lexed token stream of every
//! workspace source file (see DESIGN.md §9):
//!
//! * **`undocumented-unsafe`** — every `unsafe` block needs a `// SAFETY:`
//!   comment on it or within the three preceding lines; every `unsafe fn`
//!   (or `unsafe impl`/`unsafe trait`) needs a `# Safety` doc section or a
//!   `SAFETY:` comment in the doc/attribute run directly above it.
//! * **`unsafe-outside-allowlist`** — `unsafe` may appear only in the
//!   audited kernel crates (`crates/simd`, `crates/stackvec`,
//!   `crates/mmap`). The rest of
//!   the workspace is also covered by `unsafe_code = "forbid"`; the audit
//!   additionally catches attempts to carve out exceptions with
//!   `#[allow(unsafe_code)]`, which the compiler would accept.
//! * **`target-feature-gating`** — a call to a `#[target_feature]`
//!   function is sound only when the caller is compiled with at least the
//!   same feature set, or when the call sits inside an `unsafe` block
//!   whose `SAFETY:` comment names the feature or the runtime detection
//!   that justifies it. This is the one UB class `cargo test` on a capable
//!   machine can never observe, which is why it gets a dedicated lint.
//! * **`pointer-arith-invariant`** — raw-pointer arithmetic
//!   (`.add`/`.sub`/`.offset`, `from_raw_parts*`) in the kernel crates
//!   must carry an adjacent `SAFETY:` comment or sit in a function that
//!   states its bounds as a `debug_assert!`.
//! * **`lint-config`** — kernel crate manifests must keep
//!   `unsafe_op_in_unsafe_fn = "deny"`; every other workspace crate must
//!   inherit the workspace `[lints]` table (which forbids `unsafe_code`).
//!
//! The lints are deliberately conservative pattern analyses, not a type
//! system: they can be fooled by sufficiently obfuscated code, but they
//! make the *default* path — plainly written kernels — carry their proof
//! obligations next to the code.

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// Path prefixes (workspace-relative, `/`-separated) where `unsafe` is
/// permitted. Everything else must be `unsafe`-free.
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/simd/",
    "crates/stackvec/",
    "crates/mmap/",
    "crates/perf/",
];

/// How many lines above an `unsafe` site a `SAFETY:` comment may sit.
const SAFETY_COMMENT_REACH: u32 = 3;

/// One audit finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Lint name, e.g. `undocumented-unsafe`.
    pub lint: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[audit::{}]: {}\n  --> {}:{}",
            self.lint, self.message, self.file, self.line
        )
    }
}

/// A `#[target_feature]` function definition found anywhere in the
/// workspace.
#[derive(Clone, Debug)]
struct FeatureFn {
    /// Defining file (workspace-relative).
    file: String,
    /// Required CPU features, sorted and deduplicated.
    features: Vec<String>,
}

/// Lexical scope kinds the checks care about.
#[derive(Clone, Debug)]
pub(crate) enum ScopeKind {
    /// A function body, with the CPU features its item is compiled for.
    Fn { features: Vec<String> },
    /// An `unsafe { … }` block; `line` locates its `SAFETY:` comment.
    UnsafeBlock { line: u32 },
    /// Any other brace scope (match arms, struct literals, modules, …).
    Other,
}

/// A brace-delimited scope as a token-index range (`start` is the `{`,
/// `end` the matching `}` or one past the last token when unterminated).
#[derive(Clone, Debug)]
pub(crate) struct Scope {
    pub(crate) kind: ScopeKind,
    pub(crate) start: usize,
    pub(crate) end: usize,
}

/// A parsed source file queued for the cross-file passes.
struct FileUnit {
    path: String,
    lexed: Lexed,
    scopes: Vec<Scope>,
}

/// Runs the token-level lints over a set of in-memory files; pure so tests
/// can feed synthetic sources. `files` maps workspace-relative paths to
/// file contents. (The manifest-level `lint-config` check lives in
/// [`audit_workspace`], which has disk access.)
#[must_use]
pub fn audit_sources(files: &[(String, String)]) -> Vec<Diagnostic> {
    let units: Vec<FileUnit> = files
        .iter()
        .map(|(path, content)| {
            let lexed = lex(content);
            let tf = collect_target_feature_fns(&lexed);
            let scopes = build_scopes(&lexed, &tf);
            FileUnit {
                path: path.clone(),
                lexed,
                scopes,
            }
        })
        .collect();

    // Cross-file tables: every #[target_feature] fn by name, and every
    // plain fn definition (so a safe fn sharing a kernel's name — e.g.
    // the scalar `swar::eq_mask` next to the AVX kernels — resolves to
    // its own safe definition instead of the union of feature sets).
    let mut feature_fns: HashMap<String, Vec<FeatureFn>> = HashMap::new();
    let mut plain_fns: HashMap<String, Vec<String>> = HashMap::new();
    for unit in &units {
        let featured = collect_target_feature_fns(&unit.lexed);
        for (name_idx, features) in &featured {
            let name = unit.lexed.tokens[*name_idx].text.clone();
            feature_fns.entry(name).or_default().push(FeatureFn {
                file: unit.path.clone(),
                features: features.clone(),
            });
        }
        let featured_idx: Vec<usize> = featured.iter().map(|(i, _)| *i).collect();
        let toks = &unit.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.is_ident("fn") && !featured_idx.contains(&(i + 1)) {
                if let Some(name) = toks.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        plain_fns
                            .entry(name.text.clone())
                            .or_default()
                            .push(unit.path.clone());
                    }
                }
            }
        }
    }

    let mut diags = Vec::new();
    for unit in &units {
        check_unsafe_allowlist(unit, &mut diags);
        check_undocumented_unsafe(unit, &mut diags);
        check_feature_gating(unit, &feature_fns, &plain_fns, &mut diags);
        if in_allowlist(&unit.path) {
            check_pointer_arith(unit, &mut diags);
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

/// Runs the full audit over a workspace root on disk, including the
/// `lint-config` manifest checks. Returns diagnostics plus the number of
/// source files scanned.
///
/// # Errors
///
/// Returns an error when the workspace tree cannot be read.
pub fn audit_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    // The tree walk is shared with `cargo xtask analyze` (see
    // `analyze::source::walk_workspace`): both gates see exactly the
    // same file set. `fuzz/` is outside the workspace (see the root
    // manifest's `exclude`) and is skipped by the walker.
    let all = crate::analyze::source::walk_workspace(root)?;
    let mut files = Vec::new();
    let mut manifests = Vec::new();
    for (path, content) in all {
        if path.ends_with(".rs") {
            files.push((path, content));
        } else if path.ends_with("Cargo.toml") {
            manifests.push((path, content));
        }
    }
    let count = files.len();
    let mut diags = audit_sources(&files);
    check_lint_config(&manifests, &mut diags);
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok((diags, count))
}

fn in_allowlist(path: &str) -> bool {
    UNSAFE_ALLOWLIST.iter().any(|p| path.starts_with(p))
}

// ---------------------------------------------------------------------------
// Structure recovery: #[target_feature] definitions and brace scopes.
// ---------------------------------------------------------------------------

/// Finds every `#[target_feature(enable = "…")] fn name` and returns the
/// name's token index plus the sorted feature list. Multiple attributes
/// and comma-separated feature strings (`enable = "avx2,pclmulqdq"`) both
/// accumulate.
pub(crate) fn collect_target_feature_fns(lexed: &Lexed) -> Vec<(usize, Vec<String>)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut pending: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('#') && toks.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            // Scan the whole attribute, harvesting feature strings if it is
            // a `target_feature` attribute.
            let mut depth = 0i32;
            let mut is_tf = false;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    TokKind::Ident if toks[j].text == "target_feature" => is_tf = true,
                    TokKind::Literal if is_tf => {
                        pending.extend(parse_feature_literal(&toks[j].text));
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        } else if t.is_ident("fn") {
            if !pending.is_empty() {
                if let Some(name) = toks.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        pending.sort();
                        pending.dedup();
                        out.push((i + 1, std::mem::take(&mut pending)));
                    }
                }
            }
            pending.clear();
            i += 1;
        } else if is_item_qualifier(t) {
            // pub / unsafe / const / extern "C" / (crate) between the
            // attribute and the `fn` keep the pending features alive.
            i += 1;
        } else {
            pending.clear();
            i += 1;
        }
    }
    out
}

fn is_item_qualifier(t: &Tok) -> bool {
    t.is_ident("pub")
        || t.is_ident("unsafe")
        || t.is_ident("const")
        || t.is_ident("extern")
        || t.is_ident("crate")
        || t.is_ident("in")
        || t.is_punct('(')
        || t.is_punct(')')
        || t.kind == TokKind::Literal
}

/// Splits the source text of an `enable = "…"` literal into feature names.
fn parse_feature_literal(text: &str) -> Vec<String> {
    text.trim_matches('"')
        .split(',')
        .map(str::trim)
        .filter(|f| !f.is_empty() && f.chars().all(|c| c.is_ascii_alphanumeric() || c == '.'))
        .map(str::to_owned)
        .collect()
}

/// One pass over the token stream recovering the brace-scope tree as a
/// flat list. `tf` maps fn-name token indices to their feature sets.
pub(crate) fn build_scopes(lexed: &Lexed, tf: &[(usize, Vec<String>)]) -> Vec<Scope> {
    let features_of: HashMap<usize, &Vec<String>> = tf.iter().map(|(idx, f)| (*idx, f)).collect();
    let toks = &lexed.tokens;
    let mut stack: Vec<(ScopeKind, usize)> = Vec::new();
    let mut scopes = Vec::new();
    let mut pending: Option<ScopeKind> = None;
    // Parenthesis/bracket nesting, so the `;` inside `[u64; N]` or a
    // default argument does not look like the end of a declaration.
    let mut group_depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Ident if t.text == "fn" => {
                let features = features_of
                    .get(&(i + 1))
                    .map(|f| (*f).clone())
                    .unwrap_or_default();
                pending = Some(ScopeKind::Fn { features });
            }
            // `unsafe {` opens a block scope; `unsafe fn` is instead
            // handled when the `fn` token arrives.
            TokKind::Ident
                if t.text == "unsafe" && toks.get(i + 1).is_some_and(|n| n.is_punct('{')) =>
            {
                pending = Some(ScopeKind::UnsafeBlock { line: t.line });
            }
            TokKind::Punct('(') | TokKind::Punct('[') => group_depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => group_depth -= 1,
            TokKind::Punct('{') => {
                stack.push((pending.take().unwrap_or(ScopeKind::Other), i));
            }
            TokKind::Punct('}') => {
                if let Some((kind, start)) = stack.pop() {
                    scopes.push(Scope {
                        kind,
                        start,
                        end: i,
                    });
                }
            }
            // A trait method signature (`fn f(…);`) never gets a body —
            // but only a top-level `;` ends the declaration.
            TokKind::Punct(';') if group_depth == 0 => pending = None,
            _ => {}
        }
    }
    while let Some((kind, start)) = stack.pop() {
        scopes.push(Scope {
            kind,
            start,
            end: toks.len(),
        });
    }
    scopes
}

/// The innermost scope of the wanted kind strictly containing token `i`.
pub(crate) fn innermost<F>(scopes: &[Scope], i: usize, want: F) -> Option<&Scope>
where
    F: Fn(&ScopeKind) -> bool,
{
    scopes
        .iter()
        .filter(|s| s.start < i && i < s.end && want(&s.kind))
        .max_by_key(|s| s.start)
}

// ---------------------------------------------------------------------------
// Comment proximity helpers.
// ---------------------------------------------------------------------------

/// Is there a comment containing `needle` whose last line lands within
/// `reach` lines above `line` (or on `line` itself)?
fn comment_near(comments: &[Comment], line: u32, reach: u32, needle: &str) -> bool {
    comments
        .iter()
        .any(|c| c.end_line <= line + 1 && c.end_line + reach >= line && c.text.contains(needle))
}

/// Returns the nearest `SAFETY:` comment at or above `line`, if any.
fn safety_comment_near(comments: &[Comment], line: u32, reach: u32) -> Option<&Comment> {
    comments
        .iter()
        .filter(|c| {
            c.end_line <= line + 1 && c.end_line + reach >= line && c.text.contains("SAFETY:")
        })
        .max_by_key(|c| c.end_line)
}

/// First token index on each line (used to delimit doc/attribute runs).
fn first_token_on_lines(lexed: &Lexed) -> HashMap<u32, usize> {
    let mut map: HashMap<u32, usize> = HashMap::new();
    for (i, t) in lexed.tokens.iter().enumerate() {
        map.entry(t.line).or_insert(i);
    }
    map
}

/// Checks the doc/attribute run directly above `line` for a comment
/// containing any of `needles`. The run may consist of comments and
/// attribute lines; a blank line or unrelated code ends it — matching how
/// rustdoc attaches docs to items.
fn doc_run_contains(lexed: &Lexed, line: u32, needles: &[&str]) -> bool {
    let first_tok_on = first_token_on_lines(lexed);
    let mut l = line;
    while l > 1 {
        l -= 1;
        if let Some(c) = lexed
            .comments
            .iter()
            .find(|c| c.start_line <= l && c.end_line >= l)
        {
            // A `# Safety` section only counts inside real doc comments
            // (rustdoc renders those); a plain `// SAFETY:` comment counts
            // anywhere in the run.
            let satisfied = needles.iter().any(|n| c.text.contains(n))
                && (c.is_doc || c.text.contains("SAFETY:"));
            if satisfied {
                return true;
            }
            l = c.start_line; // jump to the top of a multi-line comment
            continue;
        }
        if let Some(&idx) = first_tok_on.get(&l) {
            // An attribute line is part of the run; anything else ends it.
            if lexed.tokens[idx].is_punct('#') {
                continue;
            }
            return false;
        }
        // Blank line ends the run.
        return false;
    }
    false
}

// ---------------------------------------------------------------------------
// The lints.
// ---------------------------------------------------------------------------

fn check_unsafe_allowlist(unit: &FileUnit, diags: &mut Vec<Diagnostic>) {
    if in_allowlist(&unit.path) {
        return;
    }
    for t in &unit.lexed.tokens {
        if t.is_ident("unsafe") {
            diags.push(Diagnostic {
                lint: "unsafe-outside-allowlist",
                file: unit.path.clone(),
                line: t.line,
                message: format!(
                    "`unsafe` outside the kernel allowlist ({}); move the code into an audited kernel crate or find a safe formulation",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
        }
    }
}

fn check_undocumented_unsafe(unit: &FileUnit, diags: &mut Vec<Diagnostic>) {
    let toks = &unit.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let next = toks.get(i + 1);
        let is_item = next.is_some_and(|n| {
            n.is_ident("fn") || n.is_ident("impl") || n.is_ident("trait") || n.is_ident("extern")
        });
        if is_item {
            // `unsafe fn`/`unsafe impl` — the contract belongs in the docs.
            let decl_line = first_line_of_decl(&unit.lexed, i);
            if !doc_run_contains(&unit.lexed, decl_line, &["# Safety", "SAFETY:"]) {
                diags.push(Diagnostic {
                    lint: "undocumented-unsafe",
                    file: unit.path.clone(),
                    line: t.line,
                    message: format!(
                        "`unsafe {}` without a `# Safety` doc section describing its contract",
                        next.map_or("item", |n| n.text.as_str())
                    ),
                });
            }
        } else if !comment_near(
            &unit.lexed.comments,
            t.line,
            SAFETY_COMMENT_REACH,
            "SAFETY:",
        ) {
            diags.push(Diagnostic {
                lint: "undocumented-unsafe",
                file: unit.path.clone(),
                line: t.line,
                message:
                    "`unsafe` block without a `// SAFETY:` comment justifying why its obligations hold"
                        .to_owned(),
            });
        }
    }
}

/// The first line of the declaration an `unsafe` keyword belongs to: walks
/// back over qualifiers (`pub`, `pub(crate)`, `const`) so the doc-run
/// search starts above `pub unsafe fn`, not between `pub` and `unsafe`.
fn first_line_of_decl(lexed: &Lexed, unsafe_idx: usize) -> u32 {
    let toks = &lexed.tokens;
    let mut i = unsafe_idx;
    while i > 0 && is_item_qualifier(&toks[i - 1]) && !toks[i - 1].is_ident("unsafe") {
        i -= 1;
    }
    toks[i].line
}

fn check_feature_gating(
    unit: &FileUnit,
    feature_fns: &HashMap<String, Vec<FeatureFn>>,
    plain_fns: &HashMap<String, Vec<String>>,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &unit.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(defs) = feature_fns.get(&t.text) else {
            continue;
        };
        // A call site looks like `name(`; skip the definition itself.
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct('.')) {
            // The definition, or a method call — kernel fns are free
            // functions, so `x.eq_mask(…)` resolves to a safe method.
            continue;
        }
        let Some(required) =
            resolve_required_features(defs, plain_fns.get(&t.text), unit, module_hint(toks, i))
        else {
            continue; // resolves to a safe fn of the same name
        };
        let caller_features = innermost(&unit.scopes, i, |k| matches!(k, ScopeKind::Fn { .. }))
            .map(|s| match &s.kind {
                ScopeKind::Fn { features } => features.clone(),
                _ => unreachable!("filtered to Fn scopes"),
            })
            .unwrap_or_default();
        if required.iter().all(|f| caller_features.contains(f)) {
            continue;
        }
        // Not statically gated: require an unsafe block whose SAFETY
        // comment names the feature or the runtime detection.
        let justified = innermost(&unit.scopes, i, |k| {
            matches!(k, ScopeKind::UnsafeBlock { .. })
        })
        .and_then(|s| match s.kind {
            ScopeKind::UnsafeBlock { line } => {
                safety_comment_near(&unit.lexed.comments, line, SAFETY_COMMENT_REACH)
            }
            _ => unreachable!("filtered to UnsafeBlock scopes"),
        })
        .is_some_and(|c| safety_justifies_features(&c.text, &required));
        if !justified {
            diags.push(Diagnostic {
                lint: "target-feature-gating",
                file: unit.path.clone(),
                line: t.line,
                message: format!(
                    "call to `#[target_feature({})]` fn `{}` from a context without those features; wrap it in an `unsafe` block whose SAFETY comment cites the runtime detection",
                    required.join(","),
                    t.text
                ),
            });
        }
    }
}

/// Does a SAFETY comment plausibly justify calling code that needs
/// `features`? It must mention runtime detection (`detect`/`dispatch`) or
/// name one of the required features explicitly.
fn safety_justifies_features(text: &str, features: &[String]) -> bool {
    let lower = text.to_ascii_lowercase();
    lower.contains("detect")
        || lower.contains("dispatch")
        || features
            .iter()
            .any(|f| lower.contains(&f.to_ascii_lowercase()))
}

/// The module path segment qualifying a call, e.g. `avx2` in
/// `avx2::eq_mask_ptr(…)` or `crate::avx2::…`.
fn module_hint(toks: &[Tok], call_idx: usize) -> Option<&str> {
    if call_idx >= 3
        && toks[call_idx - 1].is_punct(':')
        && toks[call_idx - 2].is_punct(':')
        && toks[call_idx - 3].kind == TokKind::Ident
    {
        Some(toks[call_idx - 3].text.as_str())
    } else {
        None
    }
}

/// Resolves which definition a call refers to: a module-path hint matching
/// the defining file's stem wins, then same-file definitions, otherwise
/// the union of all featured definitions' features (conservative). Returns
/// `None` when the call resolves to a safe (non-`target_feature`) fn of
/// the same name — from `safe_defs`, the files defining one.
fn resolve_required_features(
    defs: &[FeatureFn],
    safe_defs: Option<&Vec<String>>,
    unit: &FileUnit,
    hint: Option<&str>,
) -> Option<Vec<String>> {
    let pick = |candidates: Vec<&FeatureFn>| -> Option<Vec<String>> {
        let mut features: Vec<String> = candidates
            .iter()
            .flat_map(|d| d.features.iter().cloned())
            .collect();
        features.sort();
        features.dedup();
        Some(features)
    };
    let file_matches_hint = |file: &str, hint: &str| {
        Path::new(file)
            .file_stem()
            .is_some_and(|s| s.to_string_lossy() == hint)
    };
    if let Some(hint) = hint {
        let hinted: Vec<&FeatureFn> = defs
            .iter()
            .filter(|d| file_matches_hint(&d.file, hint))
            .collect();
        if !hinted.is_empty() {
            return pick(hinted);
        }
        if safe_defs.is_some_and(|files| files.iter().any(|f| file_matches_hint(f, hint))) {
            return None;
        }
    } else {
        let local: Vec<&FeatureFn> = defs.iter().filter(|d| d.file == unit.path).collect();
        if !local.is_empty() {
            return pick(local);
        }
        if safe_defs.is_some_and(|files| files.contains(&unit.path)) {
            return None;
        }
    }
    pick(defs.iter().collect())
}

/// Raw-pointer arithmetic and slice-from-raw sites that must carry either
/// an adjacent SAFETY comment or a `debug_assert!` bound in their function.
fn check_pointer_arith(unit: &FileUnit, diags: &mut Vec<Diagnostic>) {
    const METHODS: &[&str] = &[
        "add",
        "sub",
        "offset",
        "byte_add",
        "byte_sub",
        "byte_offset",
    ];
    const FREE_FNS: &[&str] = &["from_raw_parts", "from_raw_parts_mut"];
    let toks = &unit.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let site = if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && METHODS.contains(&n.text.as_str()))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            Some((&toks[i + 1].text, toks[i + 1].line, i + 1))
        } else if t.kind == TokKind::Ident
            && FREE_FNS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            Some((&t.text, t.line, i))
        } else {
            None
        };
        let Some((name, line, idx)) = site else {
            continue;
        };
        if comment_near(&unit.lexed.comments, line, SAFETY_COMMENT_REACH, "SAFETY:") {
            continue;
        }
        let fn_scope = innermost(&unit.scopes, idx, |k| matches!(k, ScopeKind::Fn { .. }));
        let has_debug_assert = fn_scope.is_some_and(|s| {
            toks[s.start..s.end]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text.starts_with("debug_assert"))
        });
        if !has_debug_assert {
            diags.push(Diagnostic {
                lint: "pointer-arith-invariant",
                file: unit.path.clone(),
                line,
                message: format!(
                    "`{name}` without a nearby `// SAFETY:` comment or a `debug_assert!` stating the bound it relies on"
                ),
            });
        }
    }
}

/// Manifest-level policy: kernel crates keep `unsafe_op_in_unsafe_fn`
/// denied; all other workspace packages inherit the workspace `[lints]`
/// table.
pub(crate) fn check_lint_config(manifests: &[(String, String)], diags: &mut Vec<Diagnostic>) {
    for (path, content) in manifests {
        if !content.contains("[package]") {
            continue; // a virtual manifest
        }
        let is_kernel = UNSAFE_ALLOWLIST.iter().any(|p| {
            path.starts_with(p) || path.trim_end_matches("Cargo.toml") == p.trim_end_matches('/')
        });
        if is_kernel {
            if !content.contains("unsafe_op_in_unsafe_fn") {
                diags.push(Diagnostic {
                    lint: "lint-config",
                    file: path.clone(),
                    line: 1,
                    message:
                        "kernel crate must set `unsafe_op_in_unsafe_fn = \"deny\"` in its [lints.rust] table"
                            .to_owned(),
                });
            }
        } else if !has_workspace_lints(content) {
            diags.push(Diagnostic {
                lint: "lint-config",
                file: path.clone(),
                line: 1,
                message:
                    "crate must inherit workspace lints: add `[lints]` with `workspace = true`"
                        .to_owned(),
            });
        }
    }
}

/// Does the manifest contain a `[lints]` table whose first key is
/// `workspace = true`?
fn has_workspace_lints(content: &str) -> bool {
    let mut in_lints = false;
    for line in content.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
        } else if in_lints && !line.is_empty() && !line.starts_with('#') {
            return line.replace(' ', "") == "workspace=true";
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_one(path: &str, src: &str) -> Vec<Diagnostic> {
        audit_sources(&[(path.to_owned(), src.to_owned())])
    }

    fn lints(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.lint).collect()
    }

    #[test]
    fn undocumented_unsafe_block_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let diags = audit_one("crates/simd/src/x.rs", src);
        assert_eq!(lints(&diags), ["undocumented-unsafe"]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn safety_comment_satisfies_unsafe_block() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(audit_one("crates/simd/src/x.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_too_far_away_does_not_count() {
        let src = "// SAFETY: stale comment far above.\n\n\n\n\nfn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let diags = audit_one("crates/simd/src/x.rs", src);
        assert_eq!(lints(&diags), ["undocumented-unsafe"]);
    }

    #[test]
    fn unsafe_fn_needs_safety_docs() {
        let bad = "pub unsafe fn f() {}\n";
        let good = "/// Does things.\n///\n/// # Safety\n///\n/// Caller must hold the lock.\npub unsafe fn f() {}\n";
        assert_eq!(
            lints(&audit_one("crates/simd/src/x.rs", bad)),
            ["undocumented-unsafe"]
        );
        assert!(audit_one("crates/simd/src/x.rs", good).is_empty());
    }

    #[test]
    fn unsafe_fn_docs_survive_attributes_between() {
        let src = "/// # Safety\n///\n/// `avx2` must be available.\n#[target_feature(enable = \"avx2\")]\n#[inline]\npub unsafe fn f() {}\n";
        assert!(audit_one("crates/simd/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_impl_needs_docs() {
        let src = "unsafe impl Send for Foo {}\n";
        assert_eq!(
            lints(&audit_one("crates/stackvec/src/x.rs", src)),
            ["undocumented-unsafe"]
        );
        let good = "// SAFETY: Foo owns its buffer exclusively.\nunsafe impl Send for Foo {}\n";
        assert!(audit_one("crates/stackvec/src/x.rs", good).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: documented but still not allowed here.\n    unsafe { *p }\n}\n";
        let diags = audit_one("crates/engine/src/x.rs", src);
        assert!(lints(&diags).contains(&"unsafe-outside-allowlist"));
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let src = "// this mentions unsafe code\nfn f() { let s = \"unsafe { }\"; let _ = s; }\n";
        assert!(audit_one("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn ungated_target_feature_call_is_flagged() {
        let src = r#"
/// # Safety
///
/// `avx2` must be available.
#[target_feature(enable = "avx2")]
pub unsafe fn kernel(x: u64) -> u64 { x }

pub fn caller(x: u64) -> u64 {
    // SAFETY: nothing about cpu features here.
    unsafe { kernel(x) }
}
"#;
        let diags = audit_one("crates/simd/src/x.rs", src);
        assert_eq!(lints(&diags), ["target-feature-gating"]);
    }

    #[test]
    fn detection_safety_comment_justifies_call() {
        let src = r#"
/// # Safety
///
/// `avx2` must be available.
#[target_feature(enable = "avx2")]
pub unsafe fn kernel(x: u64) -> u64 { x }

pub fn caller(x: u64) -> u64 {
    // SAFETY: constructor verified avx2 via runtime detection.
    unsafe { kernel(x) }
}
"#;
        assert!(audit_one("crates/simd/src/x.rs", src).is_empty());
    }

    #[test]
    fn same_feature_caller_needs_no_justification() {
        let src = r#"
/// # Safety
///
/// `avx2` must be available.
#[target_feature(enable = "avx2")]
pub unsafe fn kernel(x: u64) -> u64 { x }

/// # Safety
///
/// `avx2` and `pclmulqdq` must be available.
#[target_feature(enable = "avx2")]
#[target_feature(enable = "pclmulqdq")]
pub unsafe fn outer(x: u64) -> u64 {
    // SAFETY: outer already requires a superset of kernel's features.
    unsafe { kernel(x) }
}
"#;
        assert!(audit_one("crates/simd/src/x.rs", src).is_empty());
    }

    #[test]
    fn disjoint_features_do_not_satisfy_the_superset_rule() {
        // `outer` has avx2 but NOT pclmulqdq, and its SAFETY comment names
        // neither the missing feature nor the detection — flagged.
        let src = r#"
/// # Safety
///
/// `pclmulqdq` must be available.
#[target_feature(enable = "pclmulqdq")]
pub unsafe fn clmul(x: u64) -> u64 { x }

/// # Safety
///
/// `avx2` must be available.
#[target_feature(enable = "avx2")]
pub unsafe fn outer(x: u64) -> u64 {
    // SAFETY: sounds fine.
    unsafe { clmul(x) }
}
"#;
        let diags = audit_one("crates/simd/src/x.rs", src);
        assert_eq!(lints(&diags), ["target-feature-gating"]);
    }

    #[test]
    fn cross_file_call_resolves_via_module_hint() {
        let kernel = r#"
/// # Safety
///
/// `avx2` must be available.
#[target_feature(enable = "avx2")]
pub unsafe fn kernel(x: u64) -> u64 { x }
"#;
        let caller_bad = r#"
pub fn dispatch(x: u64) -> u64 {
    // SAFETY: no reason given.
    unsafe { avx2::kernel(x) }
}
"#;
        let caller_good = r#"
pub fn dispatch(x: u64) -> u64 {
    // SAFETY: `Simd::detect` confirmed avx2 support at construction.
    unsafe { avx2::kernel(x) }
}
"#;
        let diags = audit_sources(&[
            ("crates/simd/src/avx2.rs".to_owned(), kernel.to_owned()),
            ("crates/simd/src/lib.rs".to_owned(), caller_bad.to_owned()),
        ]);
        assert_eq!(lints(&diags), ["target-feature-gating"]);
        let diags = audit_sources(&[
            ("crates/simd/src/avx2.rs".to_owned(), kernel.to_owned()),
            ("crates/simd/src/lib.rs".to_owned(), caller_good.to_owned()),
        ]);
        assert!(diags.is_empty());
    }

    #[test]
    fn pointer_arith_needs_invariant() {
        let bad = "fn f(p: *const u8, n: usize) -> *const u8 {\n    p.add(n)\n}\n";
        let with_comment = "fn f(p: *const u8, n: usize) -> *const u8 {\n    // SAFETY: n <= len by construction.\n    p.add(n)\n}\n";
        let with_assert = "fn f(p: *const u8, n: usize, len: usize) -> *const u8 {\n    debug_assert!(n <= len);\n    p.add(n)\n}\n";
        assert_eq!(
            lints(&audit_one("crates/simd/src/x.rs", bad)),
            ["pointer-arith-invariant"]
        );
        assert!(audit_one("crates/simd/src/x.rs", with_comment).is_empty());
        assert!(audit_one("crates/simd/src/x.rs", with_assert).is_empty());
    }

    #[test]
    fn pointer_arith_outside_kernels_not_linted() {
        // `.sub(…)`-style safe method names in other crates do not trip the
        // kernel-only invariant lint.
        let src = "fn f(x: Wrapping<u8>) -> Wrapping<u8> { x.sub(Wrapping(1)) }\n";
        assert!(audit_one("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn lint_config_checks_manifests() {
        let mut diags = Vec::new();
        let manifests = vec![
            (
                "crates/engine/Cargo.toml".to_owned(),
                "[package]\nname = \"rsq-engine\"\n".to_owned(),
            ),
            (
                "crates/json/Cargo.toml".to_owned(),
                "[package]\nname = \"rsq-json\"\n\n[lints]\nworkspace = true\n".to_owned(),
            ),
            (
                "crates/simd/Cargo.toml".to_owned(),
                "[package]\nname = \"rsq-simd\"\n".to_owned(),
            ),
            (
                "crates/stackvec/Cargo.toml".to_owned(),
                "[package]\nname = \"rsq-stackvec\"\n\n[lints.rust]\nunsafe_op_in_unsafe_fn = \"deny\"\n".to_owned(),
            ),
        ];
        check_lint_config(&manifests, &mut diags);
        let files: Vec<&str> = diags.iter().map(|d| d.file.as_str()).collect();
        assert_eq!(
            files,
            ["crates/engine/Cargo.toml", "crates/simd/Cargo.toml"]
        );
        assert!(diags.iter().all(|d| d.lint == "lint-config"));
    }

    #[test]
    fn diagnostics_render_rustc_style() {
        let d = Diagnostic {
            lint: "undocumented-unsafe",
            file: "crates/simd/src/avx2.rs".to_owned(),
            line: 42,
            message: "example".to_owned(),
        };
        let text = d.to_string();
        assert!(text.contains("error[audit::undocumented-unsafe]"));
        assert!(text.contains("crates/simd/src/avx2.rs:42"));
    }
}
