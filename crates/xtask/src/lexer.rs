//! A minimal Rust lexer for the audit pass.
//!
//! The offline build environment has no `syn`, so the audit lints run on a
//! hand-rolled token stream instead of a real AST. The lexer understands
//! exactly as much Rust as it takes to make the lints sound on this
//! codebase: line/block comments (nested), string/char/byte/raw literals,
//! lifetimes vs char literals, identifiers, and single-character
//! punctuation. Everything inside comments and literals is *removed* from
//! the token stream, so lints never fire on the word `unsafe` in a doc
//! comment or a test fixture string.

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A lifetime (`'a`), kept distinct so it never looks like code.
    Lifetime,
    /// A string/char/byte/numeric literal. The source text (including
    /// quotes/prefixes) is preserved so attribute arguments like
    /// `enable = "avx2"` can be read back, but literals are never treated
    /// as identifiers, so lints cannot fire on their contents.
    Literal,
    /// A single punctuation character.
    Punct(char),
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Source text of the token (empty for punctuation).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Returns `true` for an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Returns `true` for this punctuation character.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with the line span it covers.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based first line.
    pub start_line: u32,
    /// 1-based last line (equal to `start_line` for `//` comments).
    pub end_line: u32,
    /// Full comment text including the delimiters.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/** … */`, `/*! … */`).
    pub is_doc: bool,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Unterminated literals or comments are tolerated
/// (the remainder of the file becomes one literal/comment): the audit must
/// never panic on weird-but-compiling source, and rustc would reject truly
/// broken files anyway.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = source[start..i].to_owned();
                let is_doc = text.starts_with("///") || text.starts_with("//!");
                // Consecutive plain `//` lines form one logical comment (a
                // multi-line `// SAFETY: ...` run reaches from its last
                // line, not its first). Doc comments stay per-line — the
                // doc-run search walks lines itself.
                match out.comments.last_mut() {
                    Some(prev) if !is_doc && !prev.is_doc && prev.end_line + 1 == line => {
                        prev.end_line = line;
                        prev.text.push('\n');
                        prev.text.push_str(&text);
                    }
                    _ => out.comments.push(Comment {
                        start_line: line,
                        end_line: line,
                        text,
                        is_doc,
                    }),
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = source[start..i.min(source.len())].to_owned();
                let is_doc = text.starts_with("/**") || text.starts_with("/*!");
                out.comments.push(Comment {
                    start_line,
                    end_line: line,
                    text,
                    is_doc,
                });
            }
            b'"' => {
                let tok_line = line;
                let start = i;
                i = skip_string(bytes, i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: source[start..i.min(source.len())].to_owned(),
                    line: tok_line,
                });
            }
            b'\'' => {
                let tok_line = line;
                // Distinguish a char literal from a lifetime: a char
                // literal is `'\…'` or `'X'`; anything else (`'ident`) is
                // a lifetime. `'\u{…}'` and multi-byte chars are handled
                // by scanning to the closing quote.
                let next = bytes.get(i + 1).copied();
                let is_char = match next {
                    Some(b'\\') => true,
                    Some(_) => {
                        // Find the byte after one UTF-8 character.
                        let rest = &source[i + 1..];
                        rest.chars()
                            .next()
                            .is_some_and(|c| rest[c.len_utf8()..].starts_with('\''))
                    }
                    None => false,
                };
                if is_char {
                    let start = i;
                    i += 1; // past opening quote
                    while i < bytes.len() && bytes[i] != b'\'' {
                        if bytes[i] == b'\\' {
                            i += 1;
                        }
                        if bytes.get(i) == Some(&b'\n') {
                            line += 1;
                        }
                        i = (i + 1).min(bytes.len());
                    }
                    i += 1; // past closing quote
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: source[start..i.min(source.len())].to_owned(),
                        line: tok_line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: source[start..i].to_owned(),
                        line: tok_line,
                    });
                }
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let ident = &source[start..i];
                // String-literal prefixes: r"", r#""#, b"", br"", c"", …
                if matches!(ident, "r" | "b" | "br" | "rb" | "c" | "cr")
                    && matches!(bytes.get(i), Some(&b'"') | Some(&b'#'))
                    && looks_like_raw_or_quoted(bytes, i)
                {
                    let tok_line = line;
                    i = if bytes[i] == b'"' && !ident.contains('r') {
                        skip_string(bytes, i, &mut line)
                    } else {
                        skip_raw_string(bytes, i, &mut line)
                    };
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: source[start..i.min(source.len())].to_owned(),
                        line: tok_line,
                    });
                } else {
                    out.tokens.push(Tok {
                        kind: TokKind::Ident,
                        text: ident.to_owned(),
                        line,
                    });
                }
            }
            _ if b.is_ascii_digit() => {
                let tok_line = line;
                let start = i;
                // Numeric literal: digits plus alphanumeric suffix chars
                // and underscores. A `.` is consumed only when followed by
                // a digit, so ranges (`0..64`) and method calls on
                // literals (`1.max(x)`) stay separate tokens.
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_ascii_alphanumeric()
                        || c == b'_'
                        || (c == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit))
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: source[start..i].to_owned(),
                    line: tok_line,
                });
            }
            _ => {
                if b.is_ascii() && !b.is_ascii_whitespace() {
                    out.tokens.push(Tok {
                        kind: TokKind::Punct(b as char),
                        text: String::new(),
                        line,
                    });
                }
                i += 1;
            }
        }
    }
    out
}

/// True when the bytes at `i` start a quoted or raw-quoted literal:
/// either `"` directly, or `#…#"` (raw-string hashes).
fn looks_like_raw_or_quoted(bytes: &[u8], mut i: usize) -> bool {
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    bytes.get(i) == Some(&b'"')
}

/// Skips a regular string starting at the opening `"`; returns the index
/// past the closing quote. Tracks newlines into `line`.
fn skip_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // A `\<newline>` continuation still ends a source line.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw (or byte-raw) string whose hashes start at `start`
/// (`start` points at the first `#` or the `"`); returns the index past
/// the closing delimiter.
fn skip_raw_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start;
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert!(
        bytes.get(i) == Some(&b'"'),
        "caller checked the opening quote"
    );
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("// unsafe in a comment\nfn main() {} /* unsafe */");
        assert!(l.tokens.iter().all(|t| !t.is_ident("unsafe")));
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn strings_are_opaque() {
        assert_eq!(idents(r#"let x = "unsafe fn { }"; y"#), ["let", "x", "y"]);
        assert_eq!(
            idents(r##"let x = r#"unsafe " quote"# ; y"##),
            ["let", "x", "y"]
        );
        assert_eq!(idents(r#"let x = b"unsafe"; y"#), ["let", "x", "y"]);
    }

    #[test]
    fn string_line_continuations_count_lines() {
        // `\<newline>` inside a string still advances the line counter,
        // so tokens after a multi-line usage string report true lines.
        let l = lex("let u = \"first \\\n  second\";\nlet after = 1;");
        let after = l.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let l = lex(r"fn f<'a>(x: &'a u8) { let c = 'x'; let d = '\n'; let q = '\''; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        // No stray identifiers leaked from inside the char literals.
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "x" || t.kind != TokKind::Lifetime));
    }

    #[test]
    fn lines_are_tracked_across_constructs() {
        let src = "fn a() {}\n/* multi\nline */\nfn b() {}\n\"str\nwith newline\"\nfn c() {}";
        let l = lex(src);
        let line_of = |name: &str| l.tokens.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 4);
        assert_eq!(line_of("c"), 7);
        assert_eq!(l.comments[0].start_line, 2);
        assert_eq!(l.comments[0].end_line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), ["fn", "f"]);
    }

    #[test]
    fn doc_comments_flagged() {
        let l = lex("/// docs\n//! inner\n// plain\n/** block doc */\nfn f() {}");
        let flags: Vec<bool> = l.comments.iter().map(|c| c.is_doc).collect();
        assert_eq!(flags, [true, true, false, true]);
    }

    #[test]
    fn consecutive_plain_comments_merge() {
        let l = lex("// SAFETY: the first line\n// and the continuation\nlet x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!((l.comments[0].start_line, l.comments[0].end_line), (1, 2));
        assert!(l.comments[0].text.contains("continuation"));
    }

    #[test]
    fn numeric_literals_do_not_eat_ranges() {
        let l = lex("for i in 0..64 { x[i] = 1.5e3; }");
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "both dots of `..` survive");
    }

    #[test]
    fn raw_identifier_hash_not_a_string() {
        // `#` followed by `[` is an attribute, not a raw string.
        let l = lex("#[target_feature(enable = \"avx2\")] unsafe fn x() {}");
        assert!(l.tokens.iter().any(|t| t.is_ident("target_feature")));
        assert!(l.tokens.iter().any(|t| t.is_ident("unsafe")));
    }
}
