//! The `cargo xtask bench-diff` regression gate.
//!
//! Compares two `experiments --json` reports (see `rsq-bench`) row by
//! row — rows are matched on `(experiment, name)` — and flags:
//!
//! * **throughput regressions**: `gbps` dropped by more than the
//!   threshold;
//! * **skip regressions**: the total skip count (leaf, child, sibling,
//!   and label, from the optional per-row `stats`) *decreased* by more
//!   than the threshold — the engine is fast-forwarding less;
//! * **work regressions**: total blocks classified *increased* by more
//!   than the threshold — the engine is touching more input;
//! * **skipped-byte regressions**: `bytes_skipped.total` (from the
//!   skip-ablation profile columns) *decreased* by more than the
//!   threshold — the fast-forwards are eliding less input;
//! * **latency regressions**: the per-document `latency.p99` *rose* by
//!   more than the threshold;
//! * **efficiency regressions**: hardware-counter `cycles_per_byte`
//!   (the kernel-efficiency experiment) *rose* by more than its own
//!   `--cpb-threshold` — the engine burns more CPU per input byte even
//!   if wall-clock throughput hides it behind frequency scaling;
//! * **route regressions**: a row the old report ran on a fast path
//!   (`stats.route` of `field_chain` or `selective`, DESIGN.md §15) fell
//!   back to `general` — or lost its `route` column — in the new report.
//!   Losing the memmem-led walker must not read as mere throughput noise.
//!
//! Throughput thresholds are **per-route**: fast-path rows run an order
//! of magnitude faster than classification-bound ones, so the same
//! absolute jitter is a much larger percentage — they get their own
//! (looser) `--fast-threshold`, while `general` rows keep `--threshold`.
//!
//! Rows present in the old report but missing from the new one are
//! reported too: a silently dropped experiment must not read as "no
//! regressions". Likewise a row that *had* a profiling column
//! (`bytes_skipped`, `latency`) in the old report but lost it in the new
//! one is a regression — dropped instrumentation must not read as
//! "nothing to compare". New rows absent from the old report are
//! informational.
//!
//! Skip/work/byte/latency checks only run when *both* rows carry the
//! column (modulo the missing-column check above); throughput checks
//! always run. The cycles-per-byte check also needs both sides, and a
//! *lost* `cycles_per_byte` column is deliberately NOT a regression:
//! counters are a host capability (perf-denied containers and VMs emit
//! no kernel-efficiency rows at all), so their absence means "this
//! machine can't measure", not "the engine got slower".
//!
//! Reports must carry `"schema_version": 4` (written by `experiments
//! --json` since the profiling layer landed); older reports are rejected
//! with an error asking for regeneration rather than silently compared
//! with missing columns.

use rsq_json::{ValueKind, ValueNode};
use rsq_obs::STATS_SCHEMA_VERSION;
use std::fmt;
use std::path::Path;

/// One benchmark row extracted from a report.
#[derive(Clone, Debug)]
pub struct Row {
    /// The `experiment` field.
    pub experiment: String,
    /// The `name` field.
    pub name: String,
    /// Throughput in GB/s.
    pub gbps: f64,
    /// Total skip events (from `stats.skips`), when the row carries stats.
    pub skips_total: Option<u64>,
    /// Total blocks classified (from `stats.blocks_classified.total`),
    /// when the row carries stats.
    pub blocks_total: Option<u64>,
    /// Total bytes elided by fast-forwards (from `bytes_skipped.total`),
    /// when the row carries the skip-ablation profile columns.
    pub bytes_skipped_total: Option<u64>,
    /// 99th-percentile per-document latency in nanoseconds (from
    /// `latency.p99`), when the row carries a latency histogram.
    pub latency_p99: Option<u64>,
    /// The evaluation route (from `stats.route`), when the row carries
    /// stats: `"field_chain"`, `"selective"`, or `"general"`.
    pub route: Option<String>,
    /// Multiplex-corrected CPU cycles per input byte, when the row was
    /// measured with hardware counters (the kernel-efficiency
    /// experiment).
    pub cycles_per_byte: Option<f64>,
}

/// Whether a reported route name is one of the memmem-led fast paths.
fn is_fast_route(route: &str) -> bool {
    route == "field_chain" || route == "selective"
}

/// One detected regression (or report-shape problem).
#[derive(Clone, Debug)]
pub struct Regression {
    /// `experiment/name` of the offending row.
    pub row: String,
    /// What regressed and by how much.
    pub detail: String,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.row, self.detail)
    }
}

/// The outcome of a report comparison.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Rows compared (present in both reports).
    pub compared: usize,
    /// Rows only in the new report (informational, not a failure).
    pub added: Vec<String>,
    /// Regressions found (non-empty fails the gate).
    pub regressions: Vec<Regression>,
}

/// Reads and flattens a report file into rows.
///
/// # Errors
///
/// Returns a message when the file is unreadable or not a report shape
/// this gate understands.
pub fn load_report(path: &Path) -> Result<Vec<Row>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = rsq_json::parse(&bytes)
        .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
    match number_member(&doc, "schema_version") {
        Some(v) if (v as u64) == STATS_SCHEMA_VERSION => {}
        Some(v) => {
            return Err(format!(
                "{}: report schema version {} is not the supported version \
                 {STATS_SCHEMA_VERSION}; regenerate it with `experiments --json`",
                path.display(),
                v as u64,
            ));
        }
        None => {
            return Err(format!(
                "{}: report has no `schema_version` (pre-profiling format); \
                 regenerate it with `experiments --json`",
                path.display(),
            ));
        }
    }
    let entries =
        member(&doc, "entries").ok_or_else(|| format!("{}: no `entries` array", path.display()))?;
    let ValueKind::Array(items) = &entries.kind else {
        return Err(format!("{}: `entries` is not an array", path.display()));
    };
    let mut rows = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let experiment = string_member(item, "experiment")
            .ok_or_else(|| format!("{}: entry {i} has no `experiment`", path.display()))?;
        let name = string_member(item, "name")
            .ok_or_else(|| format!("{}: entry {i} has no `name`", path.display()))?;
        let gbps = number_member(item, "gbps")
            .ok_or_else(|| format!("{}: entry {i} has no numeric `gbps`", path.display()))?;
        let stats = member(item, "stats");
        let skips_total = stats.and_then(|s| {
            let skips = member(s, "skips")?;
            let mut total = 0u64;
            for key in ["leaf", "child", "sibling", "label"] {
                total = total.saturating_add(number_member(skips, key)? as u64);
            }
            Some(total)
        });
        let blocks_total = stats
            .and_then(|s| member(s, "blocks_classified"))
            .and_then(|b| number_member(b, "total"))
            .map(|n| n as u64);
        let bytes_skipped_total = member(item, "bytes_skipped")
            .and_then(|b| number_member(b, "total"))
            .map(|n| n as u64);
        let latency_p99 = member(item, "latency")
            .and_then(|l| number_member(l, "p99"))
            .map(|n| n as u64);
        let route = stats.and_then(|s| string_member(s, "route"));
        let cycles_per_byte = number_member(item, "cycles_per_byte");
        rows.push(Row {
            experiment,
            name,
            gbps,
            skips_total,
            blocks_total,
            bytes_skipped_total,
            latency_p99,
            route,
            cycles_per_byte,
        });
    }
    Ok(rows)
}

/// Compares two row sets; `threshold_pct` is the relative change (in
/// percent of the old value) beyond which a difference is a regression.
/// The latency check gets its own `latency_threshold_pct` because
/// wall-clock percentiles are far noisier than the deterministic skip
/// and block counts, and rows the *old* report ran on a fast path get
/// `fast_threshold_pct` for the throughput check (memmem-led rows are
/// faster and proportionally noisier). The hardware-counter
/// cycles-per-byte check uses `cpb_threshold_pct` and only runs when
/// both rows carry the column (counter availability is a host
/// capability, not an engine property).
#[must_use]
pub fn diff(
    old: &[Row],
    new: &[Row],
    threshold_pct: f64,
    latency_threshold_pct: f64,
    fast_threshold_pct: f64,
    cpb_threshold_pct: f64,
) -> DiffReport {
    let mut report = DiffReport::default();
    let find = |rows: &[Row], e: &str, n: &str| -> Option<Row> {
        rows.iter()
            .find(|r| r.experiment == e && r.name == n)
            .cloned()
    };
    for old_row in old {
        let key = format!("{}/{}", old_row.experiment, old_row.name);
        let Some(new_row) = find(new, &old_row.experiment, &old_row.name) else {
            report.regressions.push(Regression {
                row: key,
                detail: "row missing from the new report".to_owned(),
            });
            continue;
        };
        report.compared += 1;
        // Route: falling off a fast path (or losing the column) is a
        // regression in its own right, before any throughput comparison.
        let old_fast = old_row.route.as_deref().is_some_and(is_fast_route);
        if old_fast {
            match new_row.route.as_deref() {
                Some(new_route) if is_fast_route(new_route) => {}
                Some(new_route) => {
                    report.regressions.push(Regression {
                        row: key.clone(),
                        detail: format!(
                            "route regressed: {} -> {new_route}",
                            old_row.route.as_deref().unwrap_or_default()
                        ),
                    });
                }
                None => {
                    report.regressions.push(Regression {
                        row: key.clone(),
                        detail: "`route` column missing from the new report".to_owned(),
                    });
                }
            }
        }
        // Throughput: lower is worse; fast-path rows use their own
        // threshold.
        let gbps_threshold = if old_fast {
            fast_threshold_pct
        } else {
            threshold_pct
        };
        if old_row.gbps > 0.0 {
            let drop_pct = (old_row.gbps - new_row.gbps) / old_row.gbps * 100.0;
            if drop_pct > gbps_threshold {
                report.regressions.push(Regression {
                    row: key.clone(),
                    detail: format!(
                        "throughput dropped {drop_pct:.1}% ({:.3} -> {:.3} GB/s)",
                        old_row.gbps, new_row.gbps
                    ),
                });
            }
        }
        // Skips: fewer fast-forwards is worse.
        if let (Some(old_skips), Some(new_skips)) = (old_row.skips_total, new_row.skips_total) {
            if old_skips > 0 {
                let drop_pct = (old_skips as f64 - new_skips as f64) / old_skips as f64 * 100.0;
                if drop_pct > threshold_pct {
                    report.regressions.push(Regression {
                        row: key.clone(),
                        detail: format!(
                            "skip events dropped {drop_pct:.1}% ({old_skips} -> {new_skips})"
                        ),
                    });
                }
            }
        }
        // Blocks classified: more work touched is worse.
        if let (Some(old_blocks), Some(new_blocks)) = (old_row.blocks_total, new_row.blocks_total) {
            if old_blocks > 0 {
                let rise_pct = (new_blocks as f64 - old_blocks as f64) / old_blocks as f64 * 100.0;
                if rise_pct > threshold_pct {
                    report.regressions.push(Regression {
                        row: key.clone(),
                        detail: format!(
                            "blocks classified rose {rise_pct:.1}% ({old_blocks} -> {new_blocks})"
                        ),
                    });
                }
            }
        }
        // Bytes skipped: eliding less input is worse. A row that lost the
        // column altogether is a regression too — dropped instrumentation
        // must not read as "nothing to compare".
        match (old_row.bytes_skipped_total, new_row.bytes_skipped_total) {
            (Some(old_bytes), Some(new_bytes)) => {
                if old_bytes > 0 {
                    let drop_pct = (old_bytes as f64 - new_bytes as f64) / old_bytes as f64 * 100.0;
                    if drop_pct > threshold_pct {
                        report.regressions.push(Regression {
                            row: key.clone(),
                            detail: format!(
                                "bytes skipped dropped {drop_pct:.1}% ({old_bytes} -> {new_bytes})"
                            ),
                        });
                    }
                }
            }
            (Some(_), None) => {
                report.regressions.push(Regression {
                    row: key.clone(),
                    detail: "`bytes_skipped` column missing from the new report".to_owned(),
                });
            }
            (None, _) => {}
        }
        // Latency p99: slower tail is worse; same missing-column rule.
        match (old_row.latency_p99, new_row.latency_p99) {
            (Some(old_p99), Some(new_p99)) => {
                if old_p99 > 0 {
                    let rise_pct = (new_p99 as f64 - old_p99 as f64) / old_p99 as f64 * 100.0;
                    if rise_pct > latency_threshold_pct {
                        report.regressions.push(Regression {
                            row: key.clone(),
                            detail: format!(
                                "latency p99 rose {rise_pct:.1}% ({old_p99} -> {new_p99} ns)"
                            ),
                        });
                    }
                }
            }
            (Some(_), None) => {
                report.regressions.push(Regression {
                    row: key.clone(),
                    detail: "`latency` column missing from the new report".to_owned(),
                });
            }
            (None, _) => {}
        }
        // Cycles per byte: burning more CPU per input byte is worse.
        // Both sides must have measured it; a lost column is a host
        // capability change (perf-denied machine), not a regression.
        if let (Some(old_cpb), Some(new_cpb)) = (old_row.cycles_per_byte, new_row.cycles_per_byte) {
            if old_cpb > 0.0 {
                let rise_pct = (new_cpb - old_cpb) / old_cpb * 100.0;
                if rise_pct > cpb_threshold_pct {
                    report.regressions.push(Regression {
                        row: key.clone(),
                        detail: format!(
                            "cycles per byte rose {rise_pct:.1}% ({old_cpb:.4} -> {new_cpb:.4})"
                        ),
                    });
                }
            }
        }
    }
    for new_row in new {
        if find(old, &new_row.experiment, &new_row.name).is_none() {
            report
                .added
                .push(format!("{}/{}", new_row.experiment, new_row.name));
        }
    }
    report
}

fn member<'a>(node: &'a ValueNode, key: &str) -> Option<&'a ValueNode> {
    if let ValueKind::Object(members) = &node.kind {
        members.iter().find(|(k, _)| k.text == key).map(|(_, v)| v)
    } else {
        None
    }
}

fn string_member(node: &ValueNode, key: &str) -> Option<String> {
    match &member(node, key)?.kind {
        ValueKind::String(s) => Some(s.clone()),
        _ => None,
    }
}

fn number_member(node: &ValueNode, key: &str) -> Option<f64> {
    match &member(node, key)?.kind {
        ValueKind::Number(n) => Some(n.as_f64()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(experiment: &str, name: &str, gbps: f64, skips: Option<u64>) -> Row {
        Row {
            experiment: experiment.to_owned(),
            name: name.to_owned(),
            gbps,
            skips_total: skips,
            blocks_total: None,
            bytes_skipped_total: None,
            latency_p99: None,
            route: None,
            cycles_per_byte: None,
        }
    }

    #[test]
    fn identical_reports_are_clean() {
        let rows = vec![row("tables", "B1", 3.0, Some(100))];
        let report = diff(&rows, &rows, 10.0, 25.0, 20.0, 20.0);
        assert!(report.regressions.is_empty());
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn throughput_drop_beyond_threshold_flags() {
        let old = vec![row("tables", "B1", 3.0, None)];
        let new = vec![row("tables", "B1", 2.5, None)];
        let report = diff(&old, &new, 10.0, 25.0, 20.0, 20.0);
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].detail.contains("throughput"));
        // The same drop passes a looser threshold.
        assert!(diff(&old, &new, 20.0, 25.0, 20.0, 20.0)
            .regressions
            .is_empty());
    }

    #[test]
    fn small_fluctuations_pass() {
        let old = vec![row("tables", "B1", 3.0, Some(100))];
        let new = vec![row("tables", "B1", 2.9, Some(95))];
        assert!(diff(&old, &new, 10.0, 25.0, 20.0, 20.0)
            .regressions
            .is_empty());
    }

    #[test]
    fn skip_count_decrease_flags() {
        let old = vec![row("ablations", "A1", 3.0, Some(1000))];
        let new = vec![row("ablations", "A1", 3.0, Some(500))];
        let report = diff(&old, &new, 10.0, 25.0, 20.0, 20.0);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].detail.contains("skip events"));
    }

    #[test]
    fn blocks_increase_flags() {
        let mut old = vec![row("tables", "B1", 3.0, None)];
        let mut new = vec![row("tables", "B1", 3.0, None)];
        old[0].blocks_total = Some(1000);
        new[0].blocks_total = Some(1500);
        let report = diff(&old, &new, 10.0, 25.0, 20.0, 20.0);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].detail.contains("blocks"));
    }

    #[test]
    fn bytes_skipped_decrease_flags() {
        let mut old = vec![row("skip-ablation", "B1", 3.0, None)];
        let mut new = vec![row("skip-ablation", "B1", 3.0, None)];
        old[0].bytes_skipped_total = Some(4_000_000);
        new[0].bytes_skipped_total = Some(3_000_000);
        let report = diff(&old, &new, 10.0, 25.0, 20.0, 20.0);
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].detail.contains("bytes skipped"));
        // Within the threshold is fine.
        new[0].bytes_skipped_total = Some(3_900_000);
        assert!(diff(&old, &new, 10.0, 25.0, 20.0, 20.0)
            .regressions
            .is_empty());
    }

    #[test]
    fn latency_p99_rise_flags_with_its_own_threshold() {
        let mut old = vec![row("batch-scaling", "threads=4", 3.0, None)];
        let mut new = vec![row("batch-scaling", "threads=4", 3.0, None)];
        old[0].latency_p99 = Some(1_000_000);
        new[0].latency_p99 = Some(1_200_000);
        // A 20% rise passes the 25% latency threshold even though the
        // main threshold is tighter...
        assert!(diff(&old, &new, 10.0, 25.0, 20.0, 20.0)
            .regressions
            .is_empty());
        // ...but fails once the rise exceeds the latency threshold.
        new[0].latency_p99 = Some(1_300_000);
        let report = diff(&old, &new, 10.0, 25.0, 20.0, 20.0);
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].detail.contains("latency p99"));
    }

    #[test]
    fn fast_route_rows_use_their_own_threshold() {
        let mut old = vec![row("fast-path", "N1/fast", 20.0, None)];
        let mut new = vec![row("fast-path", "N1/fast", 17.0, None)];
        old[0].route = Some("field_chain".to_owned());
        new[0].route = Some("field_chain".to_owned());
        // A 15% drop trips the 10% general threshold but not the 20%
        // fast-route threshold...
        assert!(diff(&old, &new, 10.0, 25.0, 20.0, 20.0)
            .regressions
            .is_empty());
        // ...and a general-routed row with the same drop still fails.
        old[0].route = Some("general".to_owned());
        new[0].route = Some("general".to_owned());
        let report = diff(&old, &new, 10.0, 25.0, 20.0, 20.0);
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].detail.contains("throughput"));
    }

    #[test]
    fn falling_off_a_fast_route_is_a_regression() {
        let mut old = vec![row("fast-path", "N1/fast", 20.0, None)];
        let mut new = vec![row("fast-path", "N1/fast", 20.0, None)];
        old[0].route = Some("selective".to_owned());
        new[0].route = Some("general".to_owned());
        let report = diff(&old, &new, 10.0, 25.0, 20.0, 20.0);
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].detail.contains("route regressed"));
        // Losing the column altogether is flagged too.
        new[0].route = None;
        let report = diff(&old, &new, 10.0, 25.0, 20.0, 20.0);
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].detail.contains("`route`"));
        // The opposite direction — gaining a fast route — is fine.
        old[0].route = Some("general".to_owned());
        new[0].route = Some("field_chain".to_owned());
        assert!(diff(&old, &new, 10.0, 25.0, 20.0, 20.0)
            .regressions
            .is_empty());
    }

    #[test]
    fn cycles_per_byte_rise_flags_with_its_own_threshold() {
        let mut old = vec![row("kernel-efficiency", "fast/B3", 3.0, None)];
        let mut new = vec![row("kernel-efficiency", "fast/B3", 3.0, None)];
        old[0].cycles_per_byte = Some(2.0);
        // A 15% rise passes the default 20% cycles threshold...
        new[0].cycles_per_byte = Some(2.3);
        assert!(diff(&old, &new, 10.0, 25.0, 20.0, 20.0)
            .regressions
            .is_empty());
        // ...a 25% rise fails it...
        new[0].cycles_per_byte = Some(2.5);
        let report = diff(&old, &new, 10.0, 25.0, 20.0, 20.0);
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].detail.contains("cycles per byte"));
        // ...and the same rise passes a looser threshold.
        assert!(diff(&old, &new, 10.0, 25.0, 20.0, 30.0)
            .regressions
            .is_empty());
    }

    #[test]
    fn lost_cycles_per_byte_column_is_not_a_regression() {
        // Counter availability is a host capability: a baseline from a
        // perf-capable machine must still compare clean on a denied one.
        let mut old = vec![row("kernel-efficiency", "fast/B3", 3.0, None)];
        let new = vec![row("kernel-efficiency", "fast/B3", 3.0, None)];
        old[0].cycles_per_byte = Some(2.0);
        assert!(diff(&old, &new, 10.0, 25.0, 20.0, 20.0)
            .regressions
            .is_empty());
    }

    #[test]
    fn lost_profile_column_is_a_regression() {
        let mut old = vec![row("skip-ablation", "B1", 3.0, None)];
        let new = vec![row("skip-ablation", "B1", 3.0, None)];
        old[0].bytes_skipped_total = Some(4_000_000);
        old[0].latency_p99 = Some(1_000_000);
        let report = diff(&old, &new, 10.0, 25.0, 20.0, 20.0);
        assert_eq!(report.regressions.len(), 2, "{:?}", report.regressions);
        assert!(report.regressions[0].detail.contains("`bytes_skipped`"));
        assert!(report.regressions[1].detail.contains("`latency`"));
        // The other direction — a column gained — is not a regression.
        assert!(diff(&new, &old, 10.0, 25.0, 20.0, 20.0)
            .regressions
            .is_empty());
    }

    #[test]
    fn missing_row_is_a_regression_added_row_is_not() {
        let old = vec![row("tables", "B1", 3.0, None)];
        let new = vec![row("tables", "B2", 3.0, None)];
        let report = diff(&old, &new, 10.0, 25.0, 20.0, 20.0);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].detail.contains("missing"));
        assert_eq!(report.added, ["tables/B2"]);
    }

    #[test]
    fn load_report_parses_bench_json() {
        let json = br#"{"schema_version":4,"entries":[
            {"experiment":"tables","name":"B1","query":"$..a","input_bytes":100,
             "count":5,"gbps":2.5,
             "stats":{"route":"field_chain","bytes":100,
                      "blocks_classified":{"structural":4,"depth":1,"seek":0,"quote":0,"total":5},
                      "events":9,"toggle_flips":0,
                      "skips":{"leaf":1,"child":2,"sibling":3,"label":4},
                      "memmem_jumps":0,"memmem_declined":0,"resume_handoffs":0,
                      "max_depth":3,"matches":5},
             "bytes_skipped":{"leaf":10,"child":20,"sibling":30,"label":0,"memmem":0,"total":60},
             "skip_rate_pct":60.00,
             "latency":{"count":4,"sum":4000,"mean":1000.0,"max":1500,
                        "p50":900,"p90":1400,"p99":1500,"buckets":[[10,4]]},
             "cycles_per_byte":1.2345,"instructions_per_byte":3.5000},
            {"experiment":"tables","name":"B2","input_bytes":10,"count":0,"gbps":1.0}
        ]}"#;
        let path = std::env::temp_dir().join(format!("rsq-bench-diff-{}.json", std::process::id()));
        std::fs::write(&path, json).unwrap();
        let rows = load_report(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].skips_total, Some(10));
        assert_eq!(rows[0].blocks_total, Some(5));
        assert_eq!(rows[0].bytes_skipped_total, Some(60));
        assert_eq!(rows[0].latency_p99, Some(1500));
        assert_eq!(rows[0].route.as_deref(), Some("field_chain"));
        assert!((rows[0].gbps - 2.5).abs() < 1e-9);
        assert!((rows[0].cycles_per_byte.unwrap() - 1.2345).abs() < 1e-9);
        assert_eq!(rows[1].skips_total, None);
        assert_eq!(rows[1].bytes_skipped_total, None);
        assert_eq!(rows[1].latency_p99, None);
        assert_eq!(rows[1].route, None);
        assert_eq!(rows[1].cycles_per_byte, None);
    }

    #[test]
    fn load_report_rejects_unversioned_and_mismatched_reports() {
        let path =
            std::env::temp_dir().join(format!("rsq-bench-diff-ver-{}.json", std::process::id()));
        // Pre-profiling report without a schema version.
        std::fs::write(&path, br#"{"entries":[]}"#).unwrap();
        let err = load_report(&path).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
        // A future (or stale) version number is rejected too.
        std::fs::write(&path, br#"{"schema_version":1,"entries":[]}"#).unwrap();
        let err = load_report(&path).unwrap_err();
        assert!(err.contains("version 1"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
