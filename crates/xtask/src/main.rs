//! Workspace automation (`cargo xtask …`).
//!
//! * `cargo xtask audit` — soundness lints over every workspace source
//!   file and manifest; exits non-zero on findings (see `audit.rs`).
//! * `cargo xtask fuzz-smoke` — the bounded differential-fuzz driver:
//!   runs the `fuzz/corpus/` seeds plus a time-boxed randomized phase
//!   through `rsq-difftest` without needing nightly or cargo-fuzz.
//! * `cargo xtask bench-diff OLD NEW` — the performance regression gate:
//!   compares two `experiments --json` reports and fails on throughput
//!   drops, skip-count drops, skipped-byte drops, classified-block
//!   increases, latency-p99 rises, or hardware-counter cycles-per-byte
//!   rises beyond a threshold (latency and cycles-per-byte each have
//!   their own).
//! * `cargo xtask metrics-lint` — renders every Prometheus exposition
//!   the workspace emits with dummy data and checks the scrape
//!   contract: snake_case `rsq_*` names, each preceded by `# HELP` and
//!   `# TYPE`.
//!
//! Exit codes: `0` success, `1` findings/mismatches/regressions, `2`
//! usage or environment error.

mod analyze;
mod audit;
mod bench_diff;
mod fuzz_smoke;
mod lexer;
mod metrics_lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask <command> [options]

commands:
  analyze     [--root PATH] [--json] [--pass NAME]...
              run the multi-pass workspace analyzer (passes: audit,
              panic, locks, atomics, consistency, metrics; default all);
              exits non-zero on any finding
  audit       [--root PATH]
              run the unsafe-audit static-analysis pass over the workspace
              (alias for `analyze --pass audit` with the classic output)
  fuzz-smoke  [--max-seconds N] [--target NAME] [--seed N]
              run the differential fuzz corpus + a bounded random phase
              (targets: classifier_diff, quotes_diff, depth_diff,
              engine_diff, reader_diff, framer_diff, fast_path_diff)
  bench-diff  OLD.json NEW.json [--threshold PCT] [--latency-threshold PCT]
              [--fast-threshold PCT] [--cpb-threshold PCT]
              compare two `experiments --json` reports; fail on throughput,
              skip-count, or skipped-byte regressions beyond PCT percent
              (default 10), latency-p99 rises beyond the latency threshold
              (default 25), fast-path-routed rows dropping beyond the fast
              threshold (default 20), hardware-counter cycles-per-byte
              rises beyond the cpb threshold (default 20, only when both
              reports measured it), or rows falling off a fast route;
              reports must carry schema_version 4
  metrics-lint
              render every Prometheus exposition with dummy data and fail
              unless each sample is an rsq_* snake_case series preceded
              by # HELP and # TYPE comments (alias for
              `analyze --pass metrics` with the classic output)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("fuzz-smoke") => cmd_fuzz_smoke(&args[1..]),
        Some("bench-diff") => cmd_bench_diff(&args[1..]),
        Some("metrics-lint") => cmd_metrics_lint(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Pulls the value of `--flag VALUE` out of `args`; returns `Err` on a
/// flag with a missing value or an unknown flag.
fn parse_flags(args: &[String], known: &[&str]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        let flag = &args[i];
        if !known.contains(&flag.as_str()) {
            return Err(format!("unknown option `{flag}`"));
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("option `{flag}` needs a value"));
        };
        out.push((flag.clone(), value.clone()));
        i += 2;
    }
    Ok(out)
}

fn workspace_root() -> PathBuf {
    // xtask always runs from within the workspace (via the cargo alias);
    // the manifest dir is crates/xtask, two levels below the root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    // `--json` is a bare flag; peel it off before the flag/value parser.
    let json = args.iter().any(|a| a == "--json");
    let rest: Vec<String> = args.iter().filter(|a| *a != "--json").cloned().collect();
    let flags = match parse_flags(&rest, &["--root", "--pass"]) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("xtask analyze: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = flags
        .iter()
        .find(|(f, _)| f == "--root")
        .map_or_else(workspace_root, |(_, v)| PathBuf::from(v));
    let mut passes: Vec<&'static str> = Vec::new();
    for (flag, value) in &flags {
        if flag != "--pass" {
            continue;
        }
        match analyze::ALL_PASSES.iter().find(|p| *p == value) {
            Some(p) => {
                if !passes.contains(p) {
                    passes.push(p);
                }
            }
            None => {
                eprintln!(
                    "xtask analyze: unknown pass `{value}` (expected one of: {})",
                    analyze::ALL_PASSES.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }
    if passes.is_empty() {
        passes = analyze::ALL_PASSES.to_vec();
    }

    match analyze::analyze_workspace(&root, &passes) {
        Ok(report) => {
            if json {
                println!("{}", analyze::render_json(&report));
            } else {
                for f in &report.findings {
                    eprintln!("{f}\n");
                }
            }
            if report.findings.is_empty() {
                if !json {
                    println!(
                        "analyze: {} files scanned by {} pass(es), no findings",
                        report.files_scanned,
                        report.passes.len()
                    );
                }
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "analyze: {} finding(s) across {} scanned files",
                    report.findings.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!(
                "xtask analyze: cannot read workspace at {}: {e}",
                root.display()
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_audit(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args, &["--root"]) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("xtask audit: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = flags
        .iter()
        .find(|(f, _)| f == "--root")
        .map_or_else(workspace_root, |(_, v)| PathBuf::from(v));

    match audit::audit_workspace(&root) {
        Ok((diags, scanned)) => {
            for d in &diags {
                eprintln!("{d}\n");
            }
            if diags.is_empty() {
                println!("audit: {scanned} files scanned, no findings");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "audit: {} finding(s) across {scanned} scanned files",
                    diags.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!(
                "xtask audit: cannot read workspace at {}: {e}",
                root.display()
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_fuzz_smoke(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args, &["--max-seconds", "--target", "--seed"]) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("xtask fuzz-smoke: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut opts = fuzz_smoke::Options::default();
    for (flag, value) in &flags {
        match flag.as_str() {
            "--max-seconds" => match value.parse::<u64>() {
                Ok(n) if n > 0 => opts.max_seconds = n,
                _ => {
                    eprintln!("xtask fuzz-smoke: `--max-seconds` needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match parse_seed(value) {
                Some(n) => opts.seed = n,
                None => {
                    eprintln!("xtask fuzz-smoke: `--seed` needs an integer (decimal or 0x-hex)");
                    return ExitCode::from(2);
                }
            },
            "--target" => {
                let known = rsq_difftest::Target::ALL.map(|t| t.name());
                if !known.contains(&value.as_str()) {
                    eprintln!(
                        "xtask fuzz-smoke: unknown target `{value}` (expected one of: {})",
                        known.join(", ")
                    );
                    return ExitCode::from(2);
                }
                opts.target = Some(value.clone());
            }
            _ => unreachable!("parse_flags rejected unknown options"),
        }
    }

    let report = fuzz_smoke::run(&opts);
    println!(
        "fuzz-smoke: {} corpus + {} random cases (seed 0x{:016x})",
        report.corpus_cases, report.random_cases, opts.seed
    );
    if report.failures.is_empty() {
        println!("fuzz-smoke: all checks bit-identical across backends");
        ExitCode::SUCCESS
    } else {
        for m in &report.failures {
            eprintln!("fuzz-smoke FAILURE [{}]: {}", m.check, m.detail);
            eprintln!("  input ({} bytes): {:?}", m.input.len(), preview(&m.input));
        }
        ExitCode::FAILURE
    }
}

fn cmd_bench_diff(args: &[String]) -> ExitCode {
    // Two positionals (OLD NEW) followed by optional flag-value pairs.
    let positionals: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let [old_path, new_path] = positionals.as_slice() else {
        eprintln!("xtask bench-diff: expected OLD.json NEW.json\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let flags = match parse_flags(
        &args[2..],
        &[
            "--threshold",
            "--latency-threshold",
            "--fast-threshold",
            "--cpb-threshold",
        ],
    ) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("xtask bench-diff: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut threshold = 10.0f64;
    let mut latency_threshold = 25.0f64;
    let mut fast_threshold = 20.0f64;
    let mut cpb_threshold = 20.0f64;
    for (flag, value) in &flags {
        let slot = match flag.as_str() {
            "--threshold" => &mut threshold,
            "--latency-threshold" => &mut latency_threshold,
            "--fast-threshold" => &mut fast_threshold,
            "--cpb-threshold" => &mut cpb_threshold,
            _ => unreachable!("parse_flags rejected unknown options"),
        };
        match value.parse::<f64>() {
            Ok(pct) if pct >= 0.0 && pct.is_finite() => *slot = pct,
            _ => {
                eprintln!("xtask bench-diff: `{flag}` needs a non-negative percentage");
                return ExitCode::from(2);
            }
        }
    }

    let (old, new) = match (
        bench_diff::load_report(Path::new(old_path)),
        bench_diff::load_report(Path::new(new_path)),
    ) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("xtask bench-diff: {e}");
            return ExitCode::from(2);
        }
    };
    let report = bench_diff::diff(
        &old,
        &new,
        threshold,
        latency_threshold,
        fast_threshold,
        cpb_threshold,
    );
    println!(
        "bench-diff: {} rows compared (threshold {threshold}%, latency {latency_threshold}%, \
         fast routes {fast_threshold}%, cycles/byte {cpb_threshold}%)",
        report.compared
    );
    for added in &report.added {
        println!("bench-diff: new row {added} (not in old report)");
    }
    if report.regressions.is_empty() {
        println!("bench-diff: no regressions");
        ExitCode::SUCCESS
    } else {
        for r in &report.regressions {
            eprintln!("bench-diff REGRESSION {r}");
        }
        eprintln!("bench-diff: {} regression(s)", report.regressions.len());
        ExitCode::FAILURE
    }
}

fn cmd_metrics_lint(args: &[String]) -> ExitCode {
    if !args.is_empty() {
        eprintln!("xtask metrics-lint: takes no options\n\n{USAGE}");
        return ExitCode::from(2);
    }
    match metrics_lint::run() {
        Ok(count) => {
            println!("metrics-lint: {count} expositions checked, all conform");
            ExitCode::SUCCESS
        }
        Err(failures) => {
            for f in &failures {
                eprintln!("metrics-lint FAILURE [{f}]");
            }
            eprintln!(
                "metrics-lint: {} nonconforming exposition(s)",
                failures.len()
            );
            ExitCode::FAILURE
        }
    }
}

fn parse_seed(value: &str) -> Option<u64> {
    if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        value.parse().ok()
    }
}

/// A short lossy preview of a failing input for the error report.
fn preview(input: &[u8]) -> String {
    let shown = &input[..input.len().min(128)];
    let mut s = String::from_utf8_lossy(shown).into_owned();
    if input.len() > 128 {
        s.push('…');
    }
    s
}
