//! The Prometheus-exposition lint (`cargo xtask metrics-lint`).
//!
//! Renders every text exposition the workspace can emit — the
//! engine/profile report, the batch variant, the serve counters
//! (including the per-route `rsq_route_docs_total` series), the
//! live-telemetry rendering (rolling windows plus gauges), and the
//! hardware-counter `rsq_perf_*` series — with
//! nonzero dummy data so every optional series appears, then runs
//! [`rsq_obs::expo::check`] over each: every sample line must carry a
//! snake_case `rsq_*` name preceded by non-empty `# HELP` and `# TYPE`
//! comments. A formatter change that breaks the scrape contract fails
//! here, not on a dashboard.

use rsq_obs::{
    prometheus, prometheus_serve, prometheus_telemetry, BatchCounters, BatchProfile, Histogram,
    ProfileStage, ProfileStats, RunStats, ServeCounters, TelemetryGauges, WindowRing,
    WorkerProfile,
};

/// One exposition to lint: a label for diagnostics plus the rendered
/// text. Also the consistency pass's ground truth for which metric
/// names exist (see `analyze::exposition_samples`).
pub(crate) fn renderings() -> Vec<(&'static str, String)> {
    let stats = dummy_stats();
    let profile = dummy_profile();
    let batch_counters = dummy_batch_counters();
    let batch_profile = dummy_batch_profile();
    let serve = dummy_serve_counters();
    let latency = dummy_histogram();
    let (ring, gauges) = dummy_telemetry();
    let w10 = ring.window(70, 10);
    let w60 = ring.window(70, 60);

    vec![
        ("engine run", prometheus(&stats, None, None)),
        ("engine profile", prometheus(&stats, Some(&profile), None)),
        (
            "batch profile",
            prometheus(
                &stats,
                Some(&profile),
                Some((&batch_counters, Some(&batch_profile))),
            ),
        ),
        ("serve counters", prometheus_serve(&serve, None)),
        (
            "serve counters + latency",
            prometheus_serve(&serve, Some(&latency)),
        ),
        (
            "live telemetry",
            prometheus_telemetry(&[&w10, &w60], &gauges),
        ),
        (
            "hardware counters",
            rsq_perf::prometheus_perf(&dummy_perf_stats()),
        ),
    ]
}

/// Lints every rendering; returns the number checked, or per-rendering
/// failure messages.
pub fn run() -> Result<usize, Vec<String>> {
    let rendered = renderings();
    let count = rendered.len();
    let failures: Vec<String> = rendered
        .into_iter()
        .filter_map(|(label, text)| {
            rsq_obs::expo::check(&text)
                .err()
                .map(|e| format!("{label}: {e}"))
        })
        .collect();
    if failures.is_empty() {
        Ok(count)
    } else {
        Err(failures)
    }
}

fn dummy_stats() -> RunStats {
    let mut s = RunStats::new();
    s.bytes = 4096;
    s.blocks.structural = 64;
    s.blocks.depth = 8;
    s.blocks.seek = 4;
    s.blocks.quote = 2;
    s.events = 128;
    s.toggle_flips = 3;
    s.skips.leaf = 5;
    s.skips.child = 4;
    s.skips.sibling = 3;
    s.skips.label = 2;
    s.memmem_jumps = 7;
    s.memmem_declined = 1;
    s.resume_handoffs = 2;
    s.max_depth = 9;
    s.matches = 11;
    s
}

fn dummy_profile() -> ProfileStats {
    let mut p = ProfileStats::new();
    p.stats = dummy_stats();
    p.bytes_skipped.leaf = 1000;
    p.bytes_skipped.child = 800;
    p.bytes_skipped.sibling = 600;
    p.bytes_skipped.label = 400;
    p.bytes_skipped.memmem = 200;
    for stage in ProfileStage::ALL {
        p.stages.add_ns(stage, 1_000_000);
    }
    p
}

fn dummy_batch_counters() -> BatchCounters {
    let mut b = BatchCounters::new();
    b.documents = 10;
    b.failed_documents = 1;
    b.shards = 4;
    b.queue_claims = 12;
    b.cache_hits = 9;
    b.cache_misses = 1;
    b.cache_evictions = 0;
    b
}

fn dummy_batch_profile() -> BatchProfile {
    let profile = dummy_profile();
    BatchProfile {
        bytes_skipped: profile.bytes_skipped,
        stages: profile.stages,
        latency: dummy_histogram(),
        workers: vec![WorkerProfile {
            busy_ns: 5_000_000,
            queue_wait_ns: 1_000_000,
            documents: 10,
            claims: 12,
        }],
    }
}

fn dummy_serve_counters() -> ServeCounters {
    let mut s = ServeCounters::new();
    s.connections = 2;
    s.documents = 20;
    s.bytes_in = 8192;
    s.responses_ok = 17;
    s.timeouts = 1;
    s.oversize_rejections = 1;
    s.limit_errors = 1;
    s.backpressure_waits = 3;
    s.max_inflight = 8;
    // One nonzero slot per route so the labelled `rsq_route_docs_total`
    // series all render with real-looking data.
    s.route_docs = [6, 3, 11];
    s
}

fn dummy_perf_stats() -> rsq_perf::PerfStats {
    let mut p = rsq_perf::PerfStats {
        bytes: 4096,
        docs: 2,
        ..rsq_perf::PerfStats::default()
    };
    p.total.cycles = 12_000;
    p.total.instructions = 30_000;
    p.total.branches = 4_000;
    p.total.branch_misses = 40;
    p.total.cache_references = 900;
    p.total.cache_misses = 90;
    p.total.time_enabled = 1_000_000;
    p.total.time_running = 900_000;
    for stage in ProfileStage::ALL {
        p.stage_cycles[stage.index()] = 2_000;
        p.stage_instructions[stage.index()] = 5_000;
    }
    p
}

fn dummy_histogram() -> Histogram {
    let mut h = Histogram::new();
    for ns in [1_000, 50_000, 2_000_000, 40_000_000] {
        h.record(ns);
    }
    h
}

fn dummy_telemetry() -> (WindowRing, TelemetryGauges) {
    let mut ring = WindowRing::new();
    for tick in 60..70 {
        ring.record(
            tick,
            2_000_000,
            1024,
            tick % 7 == 0,
            1_500_000,
            Some(rsq_obs::Route::FieldChain),
        );
    }
    let gauges = TelemetryGauges {
        queue_depth: 3,
        in_flight: 5,
        workers: 4,
        slow_documents: 2,
        postmortems: 1,
    };
    (ring, gauges)
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_expositions_pass_the_lint() {
        match super::run() {
            Ok(n) => assert_eq!(n, 7, "every rendering variant is covered"),
            Err(failures) => panic!("exposition lint failures: {failures:#?}"),
        }
    }
}
