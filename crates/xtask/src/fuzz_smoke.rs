//! The `cargo xtask fuzz-smoke` driver: a bounded, no-nightly stand-in
//! for the cargo-fuzz targets in `fuzz/`.
//!
//! Runs the same differential checks (`rsq-difftest`) over the same
//! checked-in corpus, then spends the remaining time budget on
//! deterministic random inputs. Everything is seeded, so a CI failure
//! reproduces locally with the same `--seed`.

use rsq_difftest::{load_corpus, random_input, random_json, Mismatch, Target, XorShift64};
use std::time::{Duration, Instant};

/// Options for one smoke run.
pub struct Options {
    /// Total wall-clock budget across all targets.
    pub max_seconds: u64,
    /// Restrict to one target by name (`classifier_diff`, …).
    pub target: Option<String>,
    /// RNG seed for the randomized phase.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_seconds: 20,
            target: None,
            seed: 0x5EED_CAFE_F00D_0001,
        }
    }
}

/// Outcome of one smoke run.
pub struct Report {
    /// Corpus cases executed (across targets).
    pub corpus_cases: usize,
    /// Random cases executed (across targets).
    pub random_cases: usize,
    /// Mismatches found (empty on success).
    pub failures: Vec<Mismatch>,
}

/// Runs the corpus plus a time-boxed randomized phase for each selected
/// target. Stops at the first mismatch per target (like a fuzzer crash)
/// but still runs the remaining targets so one report shows all broken
/// lanes.
#[must_use]
pub fn run(opts: &Options) -> Report {
    let targets: Vec<Target> = Target::ALL
        .into_iter()
        .filter(|t| opts.target.as_deref().is_none_or(|name| t.name() == name))
        .collect();
    let mut report = Report {
        corpus_cases: 0,
        random_cases: 0,
        failures: Vec::new(),
    };
    if targets.is_empty() {
        return report;
    }

    let deadline = Instant::now() + Duration::from_secs(opts.max_seconds);
    let per_target = Duration::from_secs(opts.max_seconds.max(1)) / targets.len() as u32;

    for target in targets {
        // Phase 1: the checked-in corpus, always in full.
        let corpus = load_corpus(target);
        let mut broken = false;
        for (name, input) in &corpus {
            report.corpus_cases += 1;
            if let Err(mut m) = target.check(input) {
                m.detail = format!("corpus case `{name}`: {}", m.detail);
                report.failures.push(m);
                broken = true;
                break;
            }
        }
        if broken {
            continue;
        }

        // Phase 2: deterministic random inputs until this target's slice
        // of the budget is spent. Alternate byte-soup (stresses the
        // classifier/quote kernels) and structured JSON (stresses depth
        // tracking and the engine).
        let target_deadline = (Instant::now() + per_target).min(deadline);
        let mut rng = XorShift64::new(opts.seed ^ target.name().len() as u64);
        let mut case = 0u64;
        while Instant::now() < target_deadline {
            let input = if case.is_multiple_of(2) {
                random_input(&mut rng, 2048)
            } else {
                random_json(&mut rng, 8)
            };
            case += 1;
            report.random_cases += 1;
            if let Err(mut m) = target.check(&input) {
                m.detail = format!(
                    "random case #{case} (seed 0x{seed:016x}): {}",
                    m.detail,
                    seed = opts.seed
                );
                report.failures.push(m);
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_second_smoke_is_clean() {
        let report = run(&Options {
            max_seconds: 1,
            target: None,
            seed: 42,
        });
        assert!(
            report.failures.is_empty(),
            "differential mismatch: {:?}",
            report.failures
        );
        assert!(report.corpus_cases > 0, "corpus must not be empty");
        assert!(report.random_cases > 0, "randomized phase must run");
    }

    #[test]
    fn unknown_target_filter_runs_nothing() {
        let report = run(&Options {
            max_seconds: 1,
            target: Some("no_such_target".to_owned()),
            seed: 1,
        });
        assert_eq!(report.corpus_cases + report.random_cases, 0);
    }
}
