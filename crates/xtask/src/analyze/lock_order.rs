//! Pass 2: lock acquisition order and guard extents (DESIGN.md §14.4).
//!
//! The pass recovers every `Mutex`/`RwLock` *declaration* in the
//! workspace (struct fields and `Type::new` bindings — see
//! `source::collect_typed_decls`), then treats `.lock()` / `.read()` /
//! `.write()` calls **whose receiver is a declared lock** as
//! acquisition sites. Requiring a known receiver is what keeps
//! `stdin().lock()` (a `StdinLock`, not a `Mutex`) and `BufRead::read`
//! out of the graph.
//!
//! For each acquisition it computes the **guard extent**: from the call
//! to the end of the innermost brace scope, cut short at an explicit
//! `drop(guard)` (the workspace idiom for releasing before notifying a
//! condvar), or at the end of the statement when the guard is a
//! temporary. Within an extent it looks for:
//!
//! * nested acquisitions — directly, or one call level deep through a
//!   function that itself acquires a lock — which become edges in the
//!   global lock-order graph; a cycle means two threads can deadlock by
//!   acquiring the same pair in opposite orders;
//! * re-acquisition of the *same* lock (std mutexes are not reentrant:
//!   self-deadlock);
//! * blocking operations — I/O, channel sends/receives, `JoinHandle`
//!   waits, sleeps, stdio macros — which stall every thread contending
//!   for the lock. `Condvar::wait` is deliberately *not* blocking here:
//!   it releases the mutex while parked, which is the whole point.
//!
//! A blocking-op finding is suppressed by `// LOCK-OK: <reason>`.

use super::source::{annotation_at, collect_typed_decls, Annotation, SourceFile, Tier};
use super::Finding;
use crate::audit::{innermost, ScopeKind};
use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// The annotation marker suppressing blocking-op findings.
pub(crate) const MARKER: &str = "LOCK-OK:";

/// Methods that block on I/O, channels, thread joins, or time while the
/// calling thread sleeps. (`Condvar::wait`/`wait_timeout` are excluded:
/// they release the guard's mutex while parked.)
const BLOCKING_METHODS: &[&str] = &[
    "join",
    "send",
    "recv",
    "recv_timeout",
    "write_all",
    "flush",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "read_line",
    "accept",
    "connect",
    "sync_all",
];

/// Free functions that block (`thread::sleep`).
const BLOCKING_FREE: &[&str] = &["sleep"];

/// Stdio macros: writes to a possibly-blocked pipe under a lock.
const BLOCKING_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

/// One lock acquisition site.
struct Acquire {
    /// Lock identity: `declaring-file::name`.
    lock: String,
    /// Token index of the `lock`/`read`/`write` ident.
    idx: usize,
    line: u32,
    /// Token index one past the guard's extent.
    extent_end: usize,
    /// Name of the enclosing function, when recoverable.
    fn_name: Option<String>,
}

/// One lock-order edge with its witness site.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
}

pub(crate) fn check(files: &[SourceFile]) -> Vec<Finding> {
    let prod: Vec<&SourceFile> = files.iter().filter(|f| f.tier != Tier::Dev).collect();

    // Global lock-declaration table: name -> declaring files.
    let mut decls: BTreeMap<String, Vec<(&'static str, String)>> = BTreeMap::new();
    for file in &prod {
        for d in collect_typed_decls(file, &["Mutex", "RwLock"]) {
            decls.entry(d.name).or_default().push((d.ty, d.file));
        }
    }

    // Per-file acquisition sites.
    let mut acquires: Vec<(usize, Vec<Acquire>)> = Vec::new();
    for (fi, file) in prod.iter().enumerate() {
        acquires.push((fi, find_acquisitions(file, &decls)));
    }

    // Which locks each named function acquires directly (for one level
    // of call-graph propagation).
    let mut fn_locks: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (_, list) in &acquires {
        for a in list {
            if let Some(name) = &a.fn_name {
                fn_locks
                    .entry(name.clone())
                    .or_default()
                    .insert(a.lock.clone());
            }
        }
    }

    let mut findings = Vec::new();
    let mut edges: BTreeSet<Edge> = BTreeSet::new();

    for (fi, list) in &acquires {
        let file = prod[*fi];
        let toks = &file.lexed.tokens;
        for a in list {
            // Nested direct acquisitions within the extent.
            for b in list {
                if b.idx > a.idx && b.idx < a.extent_end {
                    if b.lock == a.lock {
                        findings.push(Finding {
                            pass: "locks",
                            lint: "lock-reacquire",
                            file: file.path.clone(),
                            line: b.line,
                            message: format!(
                                "`{}` re-acquired while already held (acquired line {}); std locks are not reentrant — this self-deadlocks",
                                short(&a.lock),
                                a.line
                            ),
                        });
                    } else {
                        edges.insert(Edge {
                            from: a.lock.clone(),
                            to: b.lock.clone(),
                            file: file.path.clone(),
                            line: b.line,
                        });
                    }
                }
            }
            // One call level deep: `helper()` under the lock, where
            // `helper` itself acquires locks.
            for k in a.idx + 1..a.extent_end.min(toks.len()) {
                let t = &toks[k];
                if t.kind != TokKind::Ident || !toks.get(k + 1).is_some_and(|n| n.is_punct('(')) {
                    continue;
                }
                if k > 0 && toks[k - 1].is_ident("fn") {
                    continue; // a definition, not a call
                }
                if k > 0 && toks[k - 1].is_punct('.') {
                    // A method call resolves by bare name only when the
                    // receiver is `self`: `vec.len()` under a lock must
                    // not match an unrelated locking `fn len` elsewhere.
                    if !(k >= 2 && toks[k - 2].is_ident("self")) {
                        continue;
                    }
                }
                let Some(callee_locks) = fn_locks.get(&t.text) else {
                    continue;
                };
                for callee_lock in callee_locks {
                    if *callee_lock == a.lock {
                        findings.push(Finding {
                            pass: "locks",
                            lint: "lock-reacquire",
                            file: file.path.clone(),
                            line: t.line,
                            message: format!(
                                "call to `{}` re-acquires `{}` already held since line {}; std locks are not reentrant — this self-deadlocks",
                                t.text,
                                short(&a.lock),
                                a.line
                            ),
                        });
                    } else {
                        edges.insert(Edge {
                            from: a.lock.clone(),
                            to: callee_lock.clone(),
                            file: file.path.clone(),
                            line: t.line,
                        });
                    }
                }
            }
            // Blocking operations within the extent.
            for k in a.idx + 1..a.extent_end.min(toks.len()) {
                let Some(op) = blocking_op(toks, k) else {
                    continue;
                };
                if file.in_test(k) {
                    continue;
                }
                if annotation_at(&file.lexed.comments, toks[k].line, MARKER)
                    == Annotation::Justified
                {
                    continue;
                }
                findings.push(Finding {
                    pass: "locks",
                    lint: "lock-held-across-blocking",
                    file: file.path.clone(),
                    line: toks[k].line,
                    message: format!(
                        "`{op}` while holding `{}` (acquired line {}); blocking under a lock stalls every contending thread — move it after `drop(guard)` or annotate `// LOCK-OK: <reason>`",
                        short(&a.lock),
                        a.line
                    ),
                });
            }
        }
    }

    findings.extend(cycle_findings(&edges));
    findings
}

/// A blocking operation at token `k`, if any: returns its display name.
fn blocking_op(toks: &[Tok], k: usize) -> Option<String> {
    let t = &toks[k];
    if t.kind != TokKind::Ident {
        return None;
    }
    let next_is = |c: char| toks.get(k + 1).is_some_and(|n| n.is_punct(c));
    if BLOCKING_METHODS.contains(&t.text.as_str())
        && k > 0
        && toks[k - 1].is_punct('.')
        && next_is('(')
    {
        return Some(format!(".{}()", t.text));
    }
    if BLOCKING_FREE.contains(&t.text.as_str())
        && next_is('(')
        && (k == 0 || !toks[k - 1].is_punct('.'))
    {
        return Some(format!("{}()", t.text));
    }
    if BLOCKING_MACROS.contains(&t.text.as_str()) && next_is('!') {
        return Some(format!("{}!", t.text));
    }
    None
}

/// Finds every acquisition site in one file.
fn find_acquisitions(
    file: &SourceFile,
    decls: &BTreeMap<String, Vec<(&'static str, String)>>,
) -> Vec<Acquire> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let method = t.text.as_str();
        if !matches!(method, "lock" | "read" | "write") {
            continue;
        }
        if i == 0 || !toks[i - 1].is_punct('.') || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        if file.in_test(i) {
            continue;
        }
        // The receiver must be a *declared* lock of the right kind.
        let Some(recv) = i.checked_sub(2).map(|p| &toks[p]) else {
            continue;
        };
        if recv.kind != TokKind::Ident {
            continue;
        }
        let Some(decl_sites) = decls.get(&recv.text) else {
            continue;
        };
        let wanted = if method == "lock" { "Mutex" } else { "RwLock" };
        if !decl_sites.iter().any(|(ty, _)| *ty == wanted) {
            continue;
        }
        // Lock identity: prefer a declaration in this file, then a
        // unique foreign declaration, else fall back to this file.
        let local = decl_sites.iter().find(|(_, f)| *f == file.path);
        let decl_file = match (local, decl_sites.len()) {
            (Some((_, f)), _) => f.clone(),
            (None, 1) => decl_sites[0].1.clone(),
            _ => file.path.clone(),
        };
        let lock = format!("{decl_file}::{}", recv.text);
        let extent_end = guard_extent(file, i);
        let fn_name = enclosing_fn_name(file, i);
        out.push(Acquire {
            lock,
            idx: i,
            line: t.line,
            extent_end,
            fn_name,
        });
    }
    out
}

/// Computes the guard's extent: token index one past where it drops.
fn guard_extent(file: &SourceFile, acq_idx: usize) -> usize {
    let toks = &file.lexed.tokens;
    match guard_binding(toks, acq_idx) {
        Some(guard) => {
            // Bound guard: lives to the end of the innermost brace
            // scope, unless an explicit `drop(guard)` releases earlier.
            let scope_end =
                innermost(&file.scopes, acq_idx, |_| true).map_or(toks.len(), |s| s.end);
            for k in acq_idx + 1..scope_end.min(toks.len().saturating_sub(3)) {
                if toks[k].is_ident("drop")
                    && toks[k + 1].is_punct('(')
                    && toks[k + 2].is_ident(&guard)
                    && toks[k + 3].is_punct(')')
                {
                    return k;
                }
            }
            scope_end
        }
        None => {
            // Temporary guard (`self.m.lock().unwrap().field`): dropped
            // at the end of the statement.
            let mut depth = 0i32;
            for (off, t) in toks[acq_idx..].iter().enumerate() {
                match t.kind {
                    TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                        if depth == 0 {
                            return acq_idx + off; // statement ends with the block
                        }
                        depth -= 1;
                    }
                    TokKind::Punct(';') if depth == 0 => return acq_idx + off,
                    _ => {}
                }
            }
            toks.len()
        }
    }
}

/// The binding name when the acquisition is `let [mut] name = recv.lock()…`.
fn guard_binding(toks: &[Tok], acq_idx: usize) -> Option<String> {
    // Walk back over the receiver chain (`self.state.lock` → `self`),
    // landing on the chain's first identifier.
    let mut j = acq_idx.checked_sub(1)?; // the `.` before the method
    while j >= 1 && toks[j].is_punct('.') && toks[j - 1].kind == TokKind::Ident {
        if j >= 2 && toks[j - 2].is_punct('.') {
            j -= 2;
        } else {
            j -= 1;
            break;
        }
    }
    if toks[j].kind != TokKind::Ident {
        return None;
    }
    // A `*`/`&` before the chain means the guard is a temporary.
    let eq = j.checked_sub(1)?;
    if !toks[eq].is_punct('=') {
        return None;
    }
    let name = toks.get(eq.checked_sub(1)?)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    let kw = toks.get(eq.checked_sub(2)?)?;
    if kw.is_ident("let") || kw.is_ident("mut") {
        return Some(name.text.clone());
    }
    None
}

/// Recovers the name of the function whose body contains token `i`.
fn enclosing_fn_name(file: &SourceFile, i: usize) -> Option<String> {
    let scope = innermost(&file.scopes, i, |k| matches!(k, ScopeKind::Fn { .. }))?;
    let toks = &file.lexed.tokens;
    // Walk back from the `{` to the `fn` keyword of this item.
    let mut k = scope.start;
    while k > 0 {
        k -= 1;
        if toks[k].is_ident("fn") {
            let name = toks.get(k + 1)?;
            if name.kind == TokKind::Ident {
                return Some(name.text.clone());
            }
            return None;
        }
        if toks[k].is_punct('}') || toks[k].is_punct(';') {
            return None;
        }
    }
    None
}

/// Emits one finding per strongly-connected component of size ≥ 2 in
/// the lock-order graph (self-edges were reported as re-acquisition).
fn cycle_findings(edges: &BTreeSet<Edge>) -> Vec<Finding> {
    let nodes: BTreeSet<&String> = edges.iter().flat_map(|e| [&e.from, &e.to]).collect();
    // Tiny graphs: mutual reachability by BFS per node.
    let reach = |from: &String| -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from.clone()];
        while let Some(n) = stack.pop() {
            for e in edges.iter().filter(|e| e.from == n) {
                if seen.insert(e.to.clone()) {
                    stack.push(e.to.clone());
                }
            }
        }
        seen
    };
    let mut findings = Vec::new();
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for &a in &nodes {
        let fwd = reach(a);
        let mut scc: BTreeSet<String> = fwd
            .iter()
            .filter(|b| *b != a && reach(b).contains(a))
            .cloned()
            .collect();
        if scc.is_empty() {
            continue;
        }
        scc.insert(a.clone());
        if !reported.insert(scc.clone()) {
            continue;
        }
        let witnesses: Vec<String> = edges
            .iter()
            .filter(|e| scc.contains(&e.from) && scc.contains(&e.to))
            .map(|e| {
                format!(
                    "`{}` → `{}` at {}:{}",
                    short(&e.from),
                    short(&e.to),
                    e.file,
                    e.line
                )
            })
            .collect();
        let first = edges
            .iter()
            .find(|e| scc.contains(&e.from) && scc.contains(&e.to))
            .expect("an SCC of size >= 2 has at least one internal edge");
        findings.push(Finding {
            pass: "locks",
            lint: "lock-cycle",
            file: first.file.clone(),
            line: first.line,
            message: format!(
                "lock-order cycle between {}: {}; pick one order and use it everywhere (DESIGN.md §14.4)",
                scc.iter()
                    .map(|l| format!("`{}`", short(l)))
                    .collect::<Vec<_>>()
                    .join(", "),
                witnesses.join(", ")
            ),
        });
    }
    findings
}

/// The human-readable tail of a lock id (`file::name` → `name`).
fn short(lock: &str) -> &str {
    lock.rsplit("::").next().unwrap_or(lock)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_srcs(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::new(p, s)).collect();
        check(&files)
    }

    #[test]
    fn opposite_order_is_a_cycle() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\nimpl S {\n    fn one(&self) {\n        let ga = self.a.lock().unwrap();\n        let gb = self.b.lock().unwrap();\n        drop(gb);\n        drop(ga);\n    }\n    fn two(&self) {\n        let gb = self.b.lock().unwrap();\n        let ga = self.a.lock().unwrap();\n        drop(ga);\n        drop(gb);\n    }\n}\n";
        let findings = check_srcs(&[("crates/serve/src/x.rs", src)]);
        let cycles: Vec<&Finding> = findings.iter().filter(|f| f.lint == "lock-cycle").collect();
        assert_eq!(cycles.len(), 1, "exactly one cycle: {findings:?}");
        assert!(cycles[0].message.contains('a') && cycles[0].message.contains('b'));
    }

    #[test]
    fn consistent_hierarchy_is_clean() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\nimpl S {\n    fn one(&self) {\n        let ga = self.a.lock().unwrap();\n        let gb = self.b.lock().unwrap();\n        drop(gb);\n        drop(ga);\n    }\n    fn two(&self) {\n        let ga = self.a.lock().unwrap();\n        let gb = self.b.lock().unwrap();\n        drop(gb);\n        drop(ga);\n    }\n}\n";
        let findings = check_srcs(&[("crates/serve/src/x.rs", src)]);
        assert!(findings.is_empty(), "a→b everywhere is fine: {findings:?}");
    }

    #[test]
    fn reacquire_is_flagged() {
        let src = "struct S { a: Mutex<u8> }\nimpl S {\n    fn f(&self) {\n        let g = self.a.lock().unwrap();\n        let h = self.a.lock().unwrap();\n        drop(h);\n        drop(g);\n    }\n}\n";
        let findings = check_srcs(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "lock-reacquire");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\nimpl S {\n    fn one(&self) {\n        let ga = self.a.lock().unwrap();\n        drop(ga);\n        let gb = self.b.lock().unwrap();\n        drop(gb);\n    }\n    fn two(&self) {\n        let gb = self.b.lock().unwrap();\n        drop(gb);\n        let ga = self.a.lock().unwrap();\n        drop(ga);\n    }\n}\n";
        let findings = check_srcs(&[("crates/serve/src/x.rs", src)]);
        assert!(
            findings.is_empty(),
            "sequential acquisition is not nesting: {findings:?}"
        );
    }

    #[test]
    fn blocking_call_under_lock_is_flagged() {
        let src = "struct S { a: Mutex<u8> }\nimpl S {\n    fn f(&self, out: &mut Vec<u8>) {\n        let g = self.a.lock().unwrap();\n        out.write_all(b\"x\").unwrap();\n        drop(g);\n    }\n}\n";
        let findings = check_srcs(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, "lock-held-across-blocking");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn lock_ok_annotation_suppresses_blocking_finding() {
        let src = "struct S { a: Mutex<u8> }\nimpl S {\n    fn f(&self, out: &mut Vec<u8>) {\n        let g = self.a.lock().unwrap();\n        // LOCK-OK: the writer is an in-memory buffer, never a pipe.\n        out.write_all(b\"x\").unwrap();\n        drop(g);\n    }\n}\n";
        let findings = check_srcs(&[("crates/serve/src/x.rs", src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn condvar_wait_is_not_blocking() {
        let src = "struct S { a: Mutex<u8>, cv: Condvar }\nimpl S {\n    fn f(&self) {\n        let mut g = self.a.lock().unwrap();\n        g = self.cv.wait(g).unwrap();\n        drop(g);\n    }\n}\n";
        let findings = check_srcs(&[("crates/serve/src/x.rs", src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn stdin_lock_is_not_a_mutex() {
        let src = "fn f() {\n    let mut line = String::new();\n    std::io::stdin().lock().read_line(&mut line).ok();\n}\n";
        let findings = check_srcs(&[("crates/cli/src/x.rs", src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cross_function_nesting_via_call_graph() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\nimpl S {\n    fn inner_b(&self) {\n        let g = self.b.lock().unwrap();\n        drop(g);\n    }\n    fn outer(&self) {\n        let g = self.a.lock().unwrap();\n        self.inner_b();\n        drop(g);\n    }\n    fn other(&self) {\n        let gb = self.b.lock().unwrap();\n        let ga = self.a.lock().unwrap();\n        drop(ga);\n        drop(gb);\n    }\n}\n";
        let findings = check_srcs(&[("crates/serve/src/x.rs", src)]);
        let cycles: Vec<&Finding> = findings.iter().filter(|f| f.lint == "lock-cycle").collect();
        assert_eq!(cycles.len(), 1, "a→b via call + b→a direct: {findings:?}");
    }

    #[test]
    fn temporary_guard_extends_to_statement_end_only() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\nimpl S {\n    fn f(&self) -> u8 {\n        let x = *self.a.lock().unwrap();\n        let y = *self.b.lock().unwrap();\n        x + y\n    }\n    fn g(&self) -> u8 {\n        let y = *self.b.lock().unwrap();\n        let x = *self.a.lock().unwrap();\n        x + y\n    }\n}\n";
        let findings = check_srcs(&[("crates/serve/src/x.rs", src)]);
        assert!(
            findings.is_empty(),
            "temporaries drop per-statement, no nesting: {findings:?}"
        );
    }
}
