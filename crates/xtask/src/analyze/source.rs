//! Shared source model for the `analyze` passes.
//!
//! Every pass consumes the same prepared view of a source file: the
//! lexed token stream (comments and literals stripped out, see
//! `lexer.rs`), the brace-scope tree recovered by the audit pass, the
//! token spans that belong to test code (`#[cfg(test)]` modules,
//! `#[test]` functions), and the file's **tier** — which policy set
//! applies to it. The workspace walker lives here too, so `audit`,
//! `analyze`, and any future pass traverse the tree identically.

use crate::audit::{build_scopes, collect_target_feature_fns, Scope};
use crate::lexer::{lex, Comment, Lexed, TokKind};
use std::path::{Path, PathBuf};

/// Which policy set a file belongs to (DESIGN.md §14).
///
/// The split mirrors the `catch_unwind` containment boundary from the
/// serve/batch worker pools: a panic inside the engine stack is a
/// contained per-document fault; a panic in the pool machinery itself
/// (or anything above it) escapes containment and can poison locks or
/// kill a worker thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Tier {
    /// Outside the containment boundary: `cli`, `serve`, `batch`,
    /// `obs`. Panic sites *and* direct indexing must be justified.
    Exterior,
    /// Inside the containment boundary: the engine stack (`engine`,
    /// `classify`, `query`, `json`, `memmem`, `simd`, `stackvec`, the
    /// root facade). Panic sites must be justified; indexing is a
    /// contained fault and is exempt.
    Contained,
    /// Development tooling, benches, test harnesses: exempt from the
    /// panic-surface pass entirely.
    Dev,
}

/// Crates outside the containment boundary (workspace-relative path
/// prefixes).
const EXTERIOR: &[&str] = &[
    "crates/cli/",
    "crates/serve/",
    "crates/batch/",
    "crates/obs/",
];

/// Crates inside the containment boundary, plus the root facade.
const CONTAINED: &[&str] = &[
    "crates/engine/",
    "crates/classify/",
    "crates/query/",
    "crates/json/",
    "crates/memmem/",
    "crates/simd/",
    "crates/stackvec/",
    "src/",
];

/// Classifies a workspace-relative path into its policy tier.
pub(crate) fn tier_of(path: &str) -> Tier {
    // Integration tests, benches, and examples are test/dev code even
    // inside production crates.
    if path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.ends_with("build.rs")
    {
        return Tier::Dev;
    }
    if EXTERIOR.iter().any(|p| path.starts_with(p)) {
        return Tier::Exterior;
    }
    if CONTAINED.iter().any(|p| path.starts_with(p)) {
        return Tier::Contained;
    }
    Tier::Dev
}

/// One prepared source file.
pub(crate) struct SourceFile {
    /// Workspace-relative path (`/`-separated).
    pub path: String,
    /// Lexed token stream and comments.
    pub lexed: Lexed,
    /// Brace scopes (function bodies, unsafe blocks, other braces).
    pub scopes: Vec<Scope>,
    /// Token-index ranges `[start, end)` that belong to test code.
    pub test_spans: Vec<(usize, usize)>,
    /// The file's policy tier.
    pub tier: Tier,
}

impl SourceFile {
    /// Prepares one file for analysis.
    pub fn new(path: &str, content: &str) -> Self {
        let lexed = lex(content);
        let tf = collect_target_feature_fns(&lexed);
        let scopes = build_scopes(&lexed, &tf);
        let test_spans = find_test_spans(&lexed);
        SourceFile {
            path: path.to_owned(),
            lexed,
            scopes,
            test_spans,
            tier: tier_of(path),
        }
    }

    /// True when token `i` sits inside test code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= i && i < e)
    }
}

/// Finds token spans covered by `#[cfg(test)]` / `#[test]` items: the
/// attribute itself through the matching close brace of the item it
/// decorates (or its `;` for bodyless items).
fn find_test_spans(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_end = match_bracket(toks, i + 1);
        let is_test = attr_is_test(toks, i + 1, attr_end);
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = attr_end;
        while k < toks.len()
            && toks[k].is_punct('#')
            && toks.get(k + 1).is_some_and(|t| t.is_punct('['))
        {
            k = match_bracket(toks, k + 1);
        }
        // Find the item's body: the first `{` outside parens/brackets,
        // or a top-level `;` for bodyless items.
        let mut depth = 0i32;
        let mut end = k;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => {
                    end = match_brace(toks, k);
                    break;
                }
                TokKind::Punct(';') if depth == 0 => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        spans.push((i, end.max(k)));
        i = attr_end;
    }
    spans
}

/// Does the attribute token span `(open_idx, end)` mark test code?
/// `#[test]` and `#[cfg(test)]`-style attributes count; `cfg(not(test))`
/// does not.
fn attr_is_test(toks: &[crate::lexer::Tok], open_idx: usize, end: usize) -> bool {
    let idents: Vec<&str> = toks[open_idx..end.min(toks.len())]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    if idents == ["test"] {
        return true;
    }
    idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not")
}

/// Given the index of a `[`, returns the index one past its matching
/// `]` (or the token count when unterminated).
fn match_bracket(toks: &[crate::lexer::Tok], open_idx: usize) -> usize {
    let mut depth = 0i32;
    for (off, t) in toks[open_idx..].iter().enumerate() {
        match t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return open_idx + off + 1;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Given the index of a `{`, returns the index one past its matching
/// `}` (or the token count when unterminated).
pub(crate) fn match_brace(toks: &[crate::lexer::Tok], open_idx: usize) -> usize {
    let mut depth = 0i32;
    for (off, t) in toks[open_idx..].iter().enumerate() {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return open_idx + off + 1;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// How an annotation site is justified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Annotation {
    /// No annotation comment near the site.
    Missing,
    /// The marker is present but carries no reason text.
    Empty,
    /// The marker is present with a non-empty reason.
    Justified,
}

/// How many lines above a site an annotation comment may sit.
const ANNOTATION_REACH: u32 = 3;

/// Looks for an annotation marker (e.g. `PANIC-OK:`) in a comment on
/// the same line as the site or within [`ANNOTATION_REACH`] lines above
/// it, and checks that a reason follows the marker.
pub(crate) fn annotation_at(comments: &[Comment], line: u32, marker: &str) -> Annotation {
    let found = comments
        .iter()
        .filter(|c| {
            let covers = c.start_line <= line && c.end_line >= line;
            let above = c.end_line < line && c.end_line + ANNOTATION_REACH >= line;
            (covers || above) && c.text.contains(marker)
        })
        .max_by_key(|c| c.end_line);
    let Some(comment) = found else {
        return Annotation::Missing;
    };
    let Some(pos) = comment.text.find(marker) else {
        return Annotation::Missing;
    };
    let rest = &comment.text[pos + marker.len()..];
    let reason: &str = rest.lines().next().unwrap_or("");
    if reason
        .trim_matches(|c: char| c.is_whitespace() || c == '*' || c == '/')
        .is_empty()
    {
        Annotation::Empty
    } else {
        Annotation::Justified
    }
}

/// A field or binding declared with a type of interest (`Mutex`,
/// `RwLock`, `AtomicBool`, …).
#[derive(Clone, Debug)]
pub(crate) struct TypedDecl {
    /// The field/binding name.
    pub name: String,
    /// The matched type name (e.g. `Mutex`).
    pub ty: &'static str,
    /// Declaring file.
    pub file: String,
}

/// Collects declarations of the given types across a file: struct
/// fields and annotated bindings (`name: Mutex<…>`, possibly behind
/// wrapper generics like `Arc<Mutex<…>>`), plus `let`/`static`
/// bindings initialized with `Type::new(…)`.
pub(crate) fn collect_typed_decls(file: &SourceFile, types: &[&'static str]) -> Vec<TypedDecl> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(ty) = types.iter().find(|ty| t.text == **ty) else {
            continue;
        };
        let next_is = |c: char| toks.get(i + 1).is_some_and(|n| n.is_punct(c));
        // `name = Type::new(…)` — walk back over `=` to the binding.
        if next_is(':') && toks.get(i + 2).is_some_and(|n| n.is_punct(':')) {
            if let Some(name) = binding_before_eq(toks, i) {
                out.push(TypedDecl {
                    name,
                    ty,
                    file: file.path.clone(),
                });
            }
            continue;
        }
        // `name: Type<…>` possibly wrapped (`name: Arc<Type<…>>`) or
        // path-qualified (`name: std::sync::Type<…>`); non-generic
        // types (`flag: AtomicBool`) take the same back-walk.
        if let Some(name) = field_before_type(toks, i) {
            out.push(TypedDecl {
                name,
                ty,
                file: file.path.clone(),
            });
        }
    }
    out
}

/// For a `Type::new(…)` at token `i`, finds the `name` in a preceding
/// `let [mut] name =` / `static NAME: … =` on the same statement.
fn binding_before_eq(toks: &[crate::lexer::Tok], i: usize) -> Option<String> {
    let mut k = i;
    // Walk back to the nearest `=` without crossing a statement edge.
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        match toks[k].kind {
            TokKind::Punct('=') => break,
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return None,
            _ => {}
        }
    }
    // `= `: the binding name may be directly before, or behind a type
    // annotation (`let x: Foo = …` — then the `name: Type<…>` arm
    // already caught it, skip to avoid double counting).
    let prev = toks.get(k.checked_sub(1)?)?;
    if prev.kind != TokKind::Ident {
        return None;
    }
    let before = toks.get(k.checked_sub(2)?)?;
    if before.is_ident("let") || before.is_ident("mut") || before.is_punct(':') {
        if before.is_punct(':') {
            return None; // annotated binding: other arm handles it
        }
        return Some(prev.text.clone());
    }
    None
}

/// For a type ident at token `i` in `name: [wrappers<]Type<…`, walks
/// back over wrapper generics and path qualifiers to the field name.
fn field_before_type(toks: &[crate::lexer::Tok], i: usize) -> Option<String> {
    let mut k = i.checked_sub(1)?;
    loop {
        match toks[k].kind {
            // A wrapper generic (`Arc<`) or path separator (`sync::`):
            // step over it and its ident.
            TokKind::Punct('<') => {
                k = k.checked_sub(1)?;
                if toks[k].kind != TokKind::Ident {
                    return None;
                }
                k = k.checked_sub(1)?;
            }
            TokKind::Punct(':') => {
                // Could be `::` (path) or the field's `:`.
                if k >= 1 && toks[k - 1].is_punct(':') {
                    // `::` — skip it and the preceding segment ident.
                    k = k.checked_sub(2)?;
                    if toks[k].kind != TokKind::Ident {
                        return None;
                    }
                    k = k.checked_sub(1)?;
                } else {
                    // The field's own `:` — the name sits before it.
                    let name = toks.get(k.checked_sub(1)?)?;
                    if name.kind == TokKind::Ident {
                        return Some(name.text.clone());
                    }
                    return None;
                }
            }
            _ => return None,
        }
    }
}

/// Directories the walker never descends into. `fixtures` holds the
/// analyzer's seeded-violation corpus — scanning it would fail the
/// workspace baseline by design.
const SKIP_DIRS: &[&str] = &["target", ".git", "corpus", "fuzz", "fixtures"];

/// Walks the workspace tree collecting every file the analysis passes
/// consume: Rust sources, crate manifests, and the documentation files
/// the consistency pass cross-checks. Paths are workspace-relative and
/// `/`-separated; the result is sorted by path.
pub(crate) fn walk_workspace(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_str()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs")
                || name == "Cargo.toml"
                || ((name == "DESIGN.md" || name == "README.md") && dir == *root)
            {
                files.push((rel_path(root, &path), std::fs::read_to_string(&path)?));
            }
        }
    }
    files.sort();
    Ok(files)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_follow_the_containment_boundary() {
        assert_eq!(tier_of("crates/serve/src/pool.rs"), Tier::Exterior);
        assert_eq!(tier_of("crates/obs/src/hist.rs"), Tier::Exterior);
        assert_eq!(tier_of("crates/engine/src/main_loop.rs"), Tier::Contained);
        assert_eq!(tier_of("src/lib.rs"), Tier::Contained);
        assert_eq!(tier_of("crates/xtask/src/main.rs"), Tier::Dev);
        assert_eq!(tier_of("crates/serve/tests/robustness.rs"), Tier::Dev);
        assert_eq!(tier_of("crates/bench/src/lib.rs"), Tier::Dev);
        assert_eq!(tier_of("tests/integration.rs"), Tier::Dev);
    }

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let f = SourceFile::new("crates/serve/src/lib.rs", src);
        let toks = &f.lexed.tokens;
        let unwraps: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.in_test(unwraps[0]), "production unwrap is not test code");
        assert!(f.in_test(unwraps[1]), "unwrap inside #[cfg(test)] mod is");
        let prod2 = toks.iter().position(|t| t.is_ident("prod2")).unwrap();
        assert!(!f.in_test(prod2), "code after the test module is not test");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }\n";
        let f = SourceFile::new("crates/serve/src/lib.rs", src);
        let i = f
            .lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(!f.in_test(i));
    }

    #[test]
    fn test_attribute_on_fn_is_a_test_span() {
        let src = "#[test]\nfn check() { x.unwrap(); }\nfn prod() { y.unwrap(); }\n";
        let f = SourceFile::new("crates/serve/src/lib.rs", src);
        let unwraps: Vec<usize> = f
            .lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert!(f.in_test(unwraps[0]));
        assert!(!f.in_test(unwraps[1]));
    }

    #[test]
    fn annotations_require_reasons() {
        let src = "fn f() {\n    // PANIC-OK: capacity is clamped to >= 1 above.\n    x.unwrap();\n    // PANIC-OK:\n    y.unwrap();\n    z.unwrap();\n}\n";
        let f = SourceFile::new("crates/serve/src/lib.rs", src);
        assert_eq!(
            annotation_at(&f.lexed.comments, 3, "PANIC-OK:"),
            Annotation::Justified
        );
        assert_eq!(
            annotation_at(&f.lexed.comments, 5, "PANIC-OK:"),
            Annotation::Empty
        );
        // Line 6 is covered by nothing: the merged comment run above is
        // out of reach only if far enough — here the `// PANIC-OK:` on
        // line 4 still reaches line 6, so use a distant site instead.
        let far =
            "fn f() {\n    // PANIC-OK: reason\n    a.unwrap();\n\n\n\n\n\n    b.unwrap();\n}\n";
        let g = SourceFile::new("crates/serve/src/lib.rs", far);
        assert_eq!(
            annotation_at(&g.lexed.comments, 9, "PANIC-OK:"),
            Annotation::Missing
        );
    }

    #[test]
    fn trailing_same_line_annotation_counts() {
        let src = "fn f() {\n    x.unwrap(); // PANIC-OK: checked non-empty above.\n}\n";
        let f = SourceFile::new("crates/serve/src/lib.rs", src);
        assert_eq!(
            annotation_at(&f.lexed.comments, 2, "PANIC-OK:"),
            Annotation::Justified
        );
    }

    #[test]
    fn typed_decls_find_fields_and_bindings() {
        let src = "struct S {\n    state: Mutex<Inner>,\n    flag: AtomicBool,\n    shared: Arc<std::sync::RwLock<u8>>,\n}\nfn f() {\n    let seen = Mutex::new(0u8);\n}\n";
        let f = SourceFile::new("crates/serve/src/x.rs", src);
        let decls = collect_typed_decls(&f, &["Mutex", "RwLock", "AtomicBool"]);
        let mut got: Vec<(String, &str)> = decls.iter().map(|d| (d.name.clone(), d.ty)).collect();
        got.sort();
        assert_eq!(
            got,
            [
                ("flag".to_owned(), "AtomicBool"),
                ("seen".to_owned(), "Mutex"),
                ("shared".to_owned(), "RwLock"),
                ("state".to_owned(), "Mutex"),
            ]
        );
    }
}
