//! The `cargo xtask analyze` multi-pass static-analysis driver
//! (DESIGN.md §14).
//!
//! One walk of the workspace tree feeds six passes over a shared lexed
//! view of every source file:
//!
//! | pass          | what it enforces                                        |
//! |---------------|---------------------------------------------------------|
//! | `audit`       | the PR 3 unsafe-soundness lints (see `audit.rs`)        |
//! | `panic`       | panic sites justified against the containment boundary  |
//! | `locks`       | acyclic lock order, no blocking calls under a lock      |
//! | `atomics`     | the `Ordering::` policy table                            |
//! | `consistency` | exit codes / fault codes / metric names match the docs   |
//! | `metrics`     | the Prometheus exposition contract (`metrics-lint`)     |
//!
//! The workspace baseline is **zero findings**: ci.sh runs the driver
//! as a hard gate, so a new `unwrap()` in serve or a renamed metric
//! fails CI until the code is fixed or the site carries an annotation
//! with a real reason (`PANIC-OK:` / `ORDERING:` / `LOCK-OK:`).
//!
//! `render_json` emits the machine-readable report
//! (`schema_version` 1): `{"schema_version":1,"passes":[…],
//! "files_scanned":N,"findings":[{"pass":…,"lint":…,"file":…,
//! "line":…,"message":…}]}`.

pub(crate) mod atomics;
pub(crate) mod consistency;
pub(crate) mod lock_order;
pub(crate) mod panic_surface;
pub(crate) mod source;

use source::SourceFile;
use std::fmt;
use std::path::Path;

/// Every pass the driver knows, in execution order.
pub(crate) const ALL_PASSES: &[&str] = &[
    "audit",
    "panic",
    "locks",
    "atomics",
    "consistency",
    "metrics",
];

/// One analyzer finding.
#[derive(Clone, Debug)]
pub(crate) struct Finding {
    /// The pass that produced it (`panic`, `locks`, …).
    pub pass: &'static str,
    /// Lint name within the pass (`naked-unwrap`, `lock-cycle`, …).
    pub lint: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line (0 when the finding has no single line).
    pub line: u32,
    /// What is wrong and how to fix it.
    pub message: String,
}

// Rendered rustc-style, like the audit diagnostics, so editors and CI
// logs link straight to the site.
impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}::{}]: {}\n  --> {}:{}",
            self.pass, self.lint, self.message, self.file, self.line
        )
    }
}

/// The result of one driver run.
pub(crate) struct Report {
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The passes that ran.
    pub passes: Vec<&'static str>,
}

/// Runs the requested passes over in-memory files. `files` holds
/// workspace-relative paths mapped to contents: `.rs` sources,
/// `Cargo.toml` manifests (audit's lint-config check), and
/// `DESIGN.md`/`README.md` (consistency). Pure, so tests can feed
/// synthetic workspaces.
pub(crate) fn analyze_sources(files: &[(String, String)], passes: &[&'static str]) -> Report {
    let rs_files: Vec<(String, String)> = files
        .iter()
        .filter(|(p, _)| p.ends_with(".rs"))
        .cloned()
        .collect();
    let manifests: Vec<(String, String)> = files
        .iter()
        .filter(|(p, _)| p.ends_with("Cargo.toml"))
        .cloned()
        .collect();
    let docs: Vec<(String, String)> = files
        .iter()
        .filter(|(p, _)| p.ends_with(".md"))
        .cloned()
        .collect();
    let sources: Vec<SourceFile> = rs_files
        .iter()
        .map(|(p, c)| SourceFile::new(p, c))
        .collect();

    let mut findings = Vec::new();
    for &pass in passes {
        match pass {
            "audit" => {
                let mut diags = crate::audit::audit_sources(&rs_files);
                crate::audit::check_lint_config(&manifests, &mut diags);
                findings.extend(diags.into_iter().map(|d| Finding {
                    pass: "audit",
                    lint: d.lint,
                    file: d.file,
                    line: d.line,
                    message: d.message,
                }));
            }
            "panic" => findings.extend(panic_surface::check(&sources)),
            "locks" => findings.extend(lock_order::check(&sources)),
            "atomics" => findings.extend(atomics::check(&sources)),
            "consistency" => {
                let samples = exposition_samples();
                findings.extend(consistency::check(&sources, &docs, &samples));
            }
            "metrics" => {
                if let Err(failures) = crate::metrics_lint::run() {
                    findings.extend(failures.into_iter().map(|msg| Finding {
                        pass: "metrics",
                        lint: "exposition",
                        file: "crates/obs/src/expo.rs".to_owned(),
                        line: 0,
                        message: msg,
                    }));
                }
            }
            other => unreachable!("unknown pass `{other}` got past the CLI"),
        }
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.pass, a.lint).cmp(&(&b.file, b.line, b.pass, b.lint)));
    Report {
        findings,
        files_scanned: rs_files.len(),
        passes: passes.to_vec(),
    }
}

/// Runs the requested passes over a workspace root on disk.
///
/// # Errors
///
/// Returns an error when the workspace tree cannot be read.
pub(crate) fn analyze_workspace(root: &Path, passes: &[&'static str]) -> std::io::Result<Report> {
    let files = source::walk_workspace(root)?;
    Ok(analyze_sources(&files, passes))
}

/// Sample names emitted by the dummy Prometheus expositions — the
/// ground truth for the consistency pass's metric-name check.
fn exposition_samples() -> Vec<String> {
    let mut names: Vec<String> = crate::metrics_lint::renderings()
        .iter()
        .flat_map(|(_, text)| {
            text.lines()
                .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
                .map(|l| l.split(['{', ' ']).next().unwrap_or("").to_owned())
                .collect::<Vec<_>>()
        })
        .filter(|n| !n.is_empty())
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Renders the machine-readable report.
pub(crate) fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"schema_version\":1,\"passes\":[");
    for (i, p) in report.passes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(p);
        out.push('"');
    }
    out.push_str("],\"files_scanned\":");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"pass\":\"{}\",\"lint\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.pass),
            json_escape(f.lint),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping (the report has no exotic content, but
/// messages quote source constructs).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_valid_minimal_json() {
        let report = Report {
            findings: vec![Finding {
                pass: "panic",
                lint: "naked-unwrap",
                file: "crates/serve/src/pool.rs".to_owned(),
                line: 12,
                message: "`.unwrap()` says \"boom\"".to_owned(),
            }],
            files_scanned: 3,
            passes: vec!["panic"],
        };
        let json = render_json(&report);
        assert!(json.starts_with("{\"schema_version\":1,"));
        assert!(json.contains("\"files_scanned\":3"));
        assert!(json.contains("\\\"boom\\\""));
        assert!(json.ends_with("]}"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn driver_runs_selected_passes_only() {
        let files = vec![(
            "crates/serve/src/x.rs".to_owned(),
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n".to_owned(),
        )];
        let report = analyze_sources(&files, &["panic"]);
        assert_eq!(report.passes, ["panic"]);
        assert_eq!(report.findings.len(), 1);
        let report = analyze_sources(&files, &["locks", "atomics"]);
        assert!(report.findings.is_empty(), "panic pass did not run");
    }

    #[test]
    fn findings_render_rustc_style() {
        let f = Finding {
            pass: "locks",
            lint: "lock-cycle",
            file: "crates/serve/src/pool.rs".to_owned(),
            line: 7,
            message: "example".to_owned(),
        };
        let text = f.to_string();
        assert!(text.contains("error[locks::lock-cycle]"));
        assert!(text.contains("crates/serve/src/pool.rs:7"));
    }

    #[test]
    fn exposition_samples_are_rsq_series() {
        let samples = exposition_samples();
        assert!(!samples.is_empty());
        assert!(samples.iter().all(|s| s.starts_with("rsq_")), "{samples:?}");
    }

    /// Loads a seeded-violation fixture under an exterior-tier pseudo
    /// path (the fixture directory itself is dev-tier and skipped by
    /// the walker, so the seeds never pollute the workspace baseline).
    fn fixture(name: &str) -> (String, String) {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures/analyze")
            .join(name);
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
        (format!("crates/serve/src/{name}"), content)
    }

    #[test]
    fn seeded_lock_cycle_is_detected() {
        let report = analyze_sources(&[fixture("lock_cycle.rs")], &["locks"]);
        let cycles: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.lint == "lock-cycle")
            .collect();
        assert_eq!(cycles.len(), 1, "{:?}", report.findings);
        assert!(cycles[0].message.contains('a') && cycles[0].message.contains('b'));
    }

    #[test]
    fn seeded_clean_hierarchy_is_silent() {
        let report = analyze_sources(&[fixture("lock_clean.rs")], &["locks"]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn seeded_blocking_write_under_lock_is_detected() {
        let report = analyze_sources(&[fixture("held_across_io.rs")], &["locks"]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        let f = &report.findings[0];
        assert_eq!(f.lint, "lock-held-across-blocking");
        assert_eq!(f.line, 13);
        assert!(f.message.contains("write_all"), "{}", f.message);
        // The `// LOCK-OK:` flush on line 20 must have been suppressed.
        assert!(report.findings.iter().all(|f| f.line != 20));
    }

    #[test]
    fn seeded_bad_orderings_are_detected() {
        let report = analyze_sources(&[fixture("bad_ordering.rs")], &["atomics"]);
        let lints: Vec<(&str, u32)> = report.findings.iter().map(|f| (f.lint, f.line)).collect();
        assert_eq!(
            lints,
            [("bare-seqcst", 9), ("relaxed-flag", 18)],
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn seeded_panic_sites_are_detected() {
        let report = analyze_sources(&[fixture("naked_unwrap.rs")], &["panic"]);
        let lints: Vec<(&str, u32)> = report.findings.iter().map(|f| (f.lint, f.line)).collect();
        assert_eq!(
            lints,
            [
                ("naked-unwrap", 7),
                ("direct-index", 8),
                ("naked-expect", 8),
            ],
            "{:?}",
            report.findings
        );
        // The `// PANIC-OK:` unwrap on line 13 must have been suppressed.
        assert!(report.findings.iter().all(|f| f.line != 13));
    }

    #[test]
    fn fixture_seeds_stay_out_of_the_workspace_walk() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .expect("xtask sits two levels under the workspace root");
        let files = source::walk_workspace(root).expect("workspace readable");
        assert!(
            files.iter().all(|(p, _)| !p.contains("fixtures/")),
            "walker must skip fixture seeds"
        );
    }
}
