//! Pass 3: the atomic-ordering policy (DESIGN.md §14.3).
//!
//! The workspace's committed policy table:
//!
//! | use case                         | required ordering            |
//! |----------------------------------|------------------------------|
//! | monotonic counters, gauges       | `Relaxed`                    |
//! | cross-thread flags (`AtomicBool`)| `Acquire` load / `Release` store |
//! | anything needing `SeqCst`        | `// ORDERING: <reason>`      |
//!
//! Mechanically enforced as two lints:
//!
//! * **`bare-seqcst`** — `Ordering::SeqCst` is almost never what this
//!   codebase needs (there is no multi-variable consensus anywhere);
//!   each use must carry `// ORDERING: <reason>` explaining why the
//!   global total order is load-bearing.
//! * **`relaxed-flag`** — a `Relaxed` load/store/swap on a declared
//!   `AtomicBool` flag. Flags gate visibility of other writes (a
//!   shutdown flag guards "stop touching the socket"), so they need the
//!   `Acquire`/`Release` pair; a flag that genuinely carries no payload
//!   can say so with `// ORDERING: <reason>`.

use super::source::{annotation_at, collect_typed_decls, Annotation, SourceFile, Tier};
use super::Finding;
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// The annotation marker for ordering justifications.
pub(crate) const MARKER: &str = "ORDERING:";

/// Atomic methods whose ordering argument the `relaxed-flag` lint
/// inspects.
const FLAG_METHODS: &[&str] = &["load", "store", "swap"];

pub(crate) fn check(files: &[SourceFile]) -> Vec<Finding> {
    // Global flag-declaration table (AtomicBool fields/bindings).
    let mut flags: BTreeSet<String> = BTreeSet::new();
    for file in files.iter().filter(|f| f.tier != Tier::Dev) {
        for d in collect_typed_decls(file, &["AtomicBool"]) {
            flags.insert(d.name);
        }
    }

    let mut out = Vec::new();
    for file in files.iter().filter(|f| f.tier != Tier::Dev) {
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("Ordering") {
                continue;
            }
            let Some(level) = ordering_level(toks, i) else {
                continue;
            };
            if file.in_test(i) {
                continue;
            }
            let line = t.line;
            match level {
                "SeqCst" => {
                    match annotation_at(&file.lexed.comments, line, MARKER) {
                        Annotation::Justified => {}
                        Annotation::Empty => out.push(Finding {
                            pass: "atomics",
                            lint: "bare-seqcst",
                            file: file.path.clone(),
                            line,
                            message: "`Ordering::SeqCst` has an `// ORDERING:` annotation with no reason; state why the global total order is needed".to_owned(),
                        }),
                        Annotation::Missing => out.push(Finding {
                            pass: "atomics",
                            lint: "bare-seqcst",
                            file: file.path.clone(),
                            line,
                            message: "`Ordering::SeqCst` without an `// ORDERING: <reason>` annotation; use Acquire/Release (flags) or Relaxed (counters) per the policy table, or justify the total order".to_owned(),
                        }),
                    }
                }
                "Relaxed" => {
                    let Some((method, recv)) = call_context(toks, i) else {
                        continue;
                    };
                    if !FLAG_METHODS.contains(&method) || !flags.contains(recv) {
                        continue;
                    }
                    if annotation_at(&file.lexed.comments, line, MARKER) == Annotation::Justified {
                        continue;
                    }
                    out.push(Finding {
                        pass: "atomics",
                        lint: "relaxed-flag",
                        file: file.path.clone(),
                        line,
                        message: format!(
                            "`Relaxed` {method} on cross-thread flag `{recv}` (an AtomicBool); the policy table requires Acquire loads / Release stores for flags, or `// ORDERING: <reason>`"
                        ),
                    });
                }
                _ => {} // Acquire / Release / AcqRel conform as-is.
            }
        }
    }
    out
}

/// For an `Ordering` ident at `i`, the level name in `Ordering::Level`.
fn ordering_level(toks: &[Tok], i: usize) -> Option<&str> {
    if toks.get(i + 1)?.is_punct(':') && toks.get(i + 2)?.is_punct(':') {
        let level = toks.get(i + 3)?;
        if level.kind == TokKind::Ident {
            return Some(level.text.as_str());
        }
    }
    None
}

/// The method call an ordering argument belongs to: walks back to the
/// unmatched `(` and reads `receiver.method(`. Returns `(method,
/// receiver)`.
fn call_context(toks: &[Tok], ordering_idx: usize) -> Option<(&str, &str)> {
    let mut depth = 0i32;
    let mut k = ordering_idx;
    loop {
        k = k.checked_sub(1)?;
        match toks[k].kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return None,
            _ => {}
        }
    }
    // toks[k] is the call's `(`; expect `recv . method (`.
    let method = toks.get(k.checked_sub(1)?)?;
    if method.kind != TokKind::Ident {
        return None;
    }
    let dot = toks.get(k.checked_sub(2)?)?;
    if !dot.is_punct('.') {
        return None;
    }
    let recv = toks.get(k.checked_sub(3)?)?;
    if recv.kind != TokKind::Ident {
        return None;
    }
    Some((method.text.as_str(), recv.text.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_one(path: &str, src: &str) -> Vec<Finding> {
        check(&[SourceFile::new(path, src)])
    }

    fn lints(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn bare_seqcst_is_flagged_with_location() {
        let src = "struct S { flag: AtomicBool }\nimpl S {\n    fn f(&self) -> bool {\n        self.flag.load(Ordering::SeqCst)\n    }\n}\n";
        let findings = check_one("crates/serve/src/x.rs", src);
        assert_eq!(lints(&findings), ["bare-seqcst"]);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn ordering_annotation_justifies_seqcst() {
        let src = "struct S { flag: AtomicBool }\nimpl S {\n    fn f(&self) -> bool {\n        // ORDERING: the shutdown handshake needs a single total order\n        // with the listener's stop store.\n        self.flag.load(Ordering::SeqCst)\n    }\n}\n";
        assert!(check_one("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn relaxed_on_a_flag_is_flagged() {
        let src = "struct S { shutdown: AtomicBool }\nimpl S {\n    fn f(&self) {\n        self.shutdown.store(true, Ordering::Relaxed);\n    }\n}\n";
        let findings = check_one("crates/serve/src/x.rs", src);
        assert_eq!(lints(&findings), ["relaxed-flag"]);
        assert!(findings[0].message.contains("shutdown"));
    }

    #[test]
    fn relaxed_on_counters_conforms() {
        let src = "struct S { count: AtomicU64 }\nimpl S {\n    fn f(&self) {\n        self.count.fetch_add(1, Ordering::Relaxed);\n        let _ = self.count.load(Ordering::Relaxed);\n    }\n}\n";
        assert!(check_one("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn acquire_release_pair_on_a_flag_conforms() {
        let src = "struct S { shutdown: AtomicBool }\nimpl S {\n    fn f(&self) -> bool {\n        self.shutdown.store(true, Ordering::Release);\n        self.shutdown.load(Ordering::Acquire)\n    }\n}\n";
        assert!(check_one("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        FLAG.store(true, Ordering::SeqCst);\n    }\n}\n";
        assert!(check_one("crates/serve/src/x.rs", src).is_empty());
    }
}
