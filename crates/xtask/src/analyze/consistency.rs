//! Pass 4: exit-code / fault-code / metric-name consistency
//! (DESIGN.md §14.5).
//!
//! The CLI's exit-code table and the serve protocol's `DocError` code
//! strings are public contracts: scripts and dashboards match on them.
//! This pass cross-checks three sources of truth against each other:
//!
//! * the `CliErrorKind::exit_code()` match arms in `crates/cli` vs. the
//!   canonical table in DESIGN.md (anchored by
//!   `<!-- exit-code-table:begin/end -->`) vs. the README;
//! * the `DocErrorKind::code()` strings in `crates/batch` vs. the fault
//!   table in DESIGN.md (anchored by `<!-- doc-error-codes:begin/end -->`);
//! * every `rsq_*` metric name mentioned in DESIGN.md/README vs. the
//!   sample names the dummy expositions actually emit (the same
//!   renderings `metrics-lint` checks).
//!
//! Anchors make the doc side machine-readable without a markdown
//! parser: the pass reads only what sits between the HTML comments, so
//! prose elsewhere can mention codes freely.

use super::source::SourceFile;
use super::Finding;
use crate::lexer::TokKind;
use std::collections::BTreeMap;

/// Exit-code arms recovered from `CliErrorKind::Name => N` tokens.
fn source_exit_codes(files: &[SourceFile]) -> BTreeMap<String, u8> {
    let mut out = BTreeMap::new();
    for file in files {
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("CliErrorKind") {
                continue;
            }
            let p = |k: usize, c: char| toks.get(i + k).is_some_and(|t| t.is_punct(c));
            if !(p(1, ':') && p(2, ':')) {
                continue;
            }
            let Some(name) = toks.get(i + 3).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            // Only `=> <number>` arms are the exit-code table; the
            // DocError→CliError mapping arms are followed by idents.
            if !(p(4, '=') && p(5, '>')) {
                continue;
            }
            let Some(lit) = toks.get(i + 6).filter(|t| t.kind == TokKind::Literal) else {
                continue;
            };
            if let Ok(code) = lit.text.parse::<u8>() {
                out.insert(name.text.clone(), code);
            }
        }
    }
    out
}

/// Fault-code strings recovered from `DocErrorKind::… => "code"` arms.
fn source_doc_codes(files: &[SourceFile]) -> Vec<String> {
    let mut out = Vec::new();
    for file in files {
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("DocErrorKind") {
                continue;
            }
            // Scan a short window for `=> "literal"`; the CLI's
            // DocError→CliError mapping has an ident after `=>`, so it
            // never collects.
            for k in i + 3..(i + 12).min(toks.len().saturating_sub(2)) {
                if toks[k].is_punct('=') && toks[k + 1].is_punct('>') {
                    let lit = &toks[k + 2];
                    if lit.kind == TokKind::Literal && lit.text.starts_with('"') {
                        out.push(lit.text.trim_matches('"').to_owned());
                    }
                    break;
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The text between `<!-- {anchor}:begin -->` and `<!-- {anchor}:end -->`.
fn anchored_region<'a>(doc: &'a str, anchor: &str) -> Option<&'a str> {
    let begin = format!("<!-- {anchor}:begin -->");
    let end = format!("<!-- {anchor}:end -->");
    let start = doc.find(&begin)? + begin.len();
    let stop = doc[start..].find(&end)? + start;
    Some(&doc[start..stop])
}

/// Parses `| code | class | \`Kind\` |` rows from the anchored table.
/// The kind cell may be `—` for codes without a `CliErrorKind` (success
/// and usage errors, raised before a `CliError` exists).
fn table_exit_codes(region: &str) -> Vec<(u8, Option<String>)> {
    let mut out = Vec::new();
    for line in region.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 3 {
            continue;
        }
        let Ok(code) = cells[0].parse::<u8>() else {
            continue; // header or separator row
        };
        let kind = cells[2].trim_matches('`');
        let kind = if kind == "—" || kind == "-" || kind.is_empty() {
            None
        } else {
            Some(kind.to_owned())
        };
        out.push((code, kind));
    }
    out
}

/// Backticked fault codes (`io`, `limit:depth`, …) in the anchored
/// fault-table region.
fn doc_fault_codes(region: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = region;
    while let Some(start) = rest.find('`') {
        let Some(len) = rest[start + 1..].find('`') else {
            break;
        };
        let span = &rest[start + 1..start + 1 + len];
        if !span.is_empty()
            && span
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == ':' || c == '-')
        {
            out.push(span.to_owned());
        }
        rest = &rest[start + 1 + len + 1..];
    }
    out.sort();
    out.dedup();
    out
}

/// Every `rsq_*` name mentioned in a doc, with the line it appears on.
/// A trailing `*` (a family wildcard like `rsq_window_*`) is trimmed.
fn doc_metric_names(doc: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (lineno, line) in doc.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("rsq_") {
            let tail = &rest[pos..];
            let len = tail
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
                .map(char::len_utf8)
                .sum::<usize>();
            let name = tail[..len].trim_end_matches('_').to_owned();
            // `rsq_engine::EngineError` is a crate path in a doc
            // example, not a metric name.
            let is_path = tail[len..].starts_with("::");
            if name.len() > 4 && !is_path {
                out.push((
                    name,
                    u32::try_from(lineno).unwrap_or(u32::MAX).saturating_add(1),
                ));
            }
            rest = &tail[len.max(4)..];
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Does `name` (possibly a family prefix) match a real sample name?
fn metric_matches(name: &str, samples: &[String]) -> bool {
    samples
        .iter()
        .any(|s| s.starts_with(name) && (s.len() == name.len() || s.as_bytes()[name.len()] == b'_'))
}

/// Runs the consistency checks. `docs` are `(path, content)` pairs for
/// DESIGN.md/README.md; `samples` are the sample names the Prometheus
/// expositions emit (empty slice skips the metric-name check).
pub(crate) fn check(
    files: &[SourceFile],
    docs: &[(String, String)],
    samples: &[String],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let design = docs.iter().find(|(p, _)| p.ends_with("DESIGN.md"));
    let readme = docs.iter().find(|(p, _)| p.ends_with("README.md"));

    let exit_codes = source_exit_codes(files);
    let doc_codes = source_doc_codes(files);

    // --- Exit-code table -------------------------------------------------
    if let Some((design_path, design_text)) = design {
        if !exit_codes.is_empty() {
            match anchored_region(design_text, "exit-code-table") {
                None => out.push(Finding {
                    pass: "consistency",
                    lint: "doc-anchor",
                    file: design_path.clone(),
                    line: 1,
                    message: "DESIGN.md has no `<!-- exit-code-table:begin/end -->` anchors around the canonical exit-code table".to_owned(),
                }),
                Some(region) => {
                    let table = table_exit_codes(region);
                    for (kind, code) in &exit_codes {
                        let found = table
                            .iter()
                            .any(|(c, k)| c == code && k.as_deref() == Some(kind.as_str()));
                        if !found {
                            out.push(Finding {
                                pass: "consistency",
                                lint: "exit-code-mismatch",
                                file: design_path.clone(),
                                line: 1,
                                message: format!(
                                    "`CliErrorKind::{kind}` exits with {code} in the source but the DESIGN.md exit-code table has no matching row"
                                ),
                            });
                        }
                    }
                    for (code, kind) in &table {
                        let Some(kind) = kind else { continue };
                        if exit_codes.get(kind) != Some(code) {
                            out.push(Finding {
                                pass: "consistency",
                                lint: "exit-code-mismatch",
                                file: design_path.clone(),
                                line: 1,
                                message: format!(
                                    "DESIGN.md table maps exit {code} to `CliErrorKind::{kind}`, which the source does not"
                                ),
                            });
                        }
                    }
                    if let Some((readme_path, readme_text)) = readme {
                        let lower = readme_text.to_ascii_lowercase();
                        for (code, _) in &table {
                            let plain = format!("exit {code}");
                            let ticked = readme_text.lines().any(|l| {
                                l.to_ascii_lowercase().contains("exit")
                                    && l.contains(&format!("`{code}`"))
                            });
                            if !lower.contains(&plain) && !ticked {
                                out.push(Finding {
                                    pass: "consistency",
                                    lint: "readme-exit-codes",
                                    file: readme_path.clone(),
                                    line: 1,
                                    message: format!(
                                        "exit code {code} from the DESIGN.md table is not documented in the README"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }

        // --- DocError fault codes ----------------------------------------
        if !doc_codes.is_empty() {
            match anchored_region(design_text, "doc-error-codes") {
                None => out.push(Finding {
                    pass: "consistency",
                    lint: "doc-anchor",
                    file: design_path.clone(),
                    line: 1,
                    message: "DESIGN.md has no `<!-- doc-error-codes:begin/end -->` anchors around the fault-code table".to_owned(),
                }),
                Some(region) => {
                    let documented = doc_fault_codes(region);
                    for code in &doc_codes {
                        if !documented.contains(code) {
                            out.push(Finding {
                                pass: "consistency",
                                lint: "doc-error-code-mismatch",
                                file: design_path.clone(),
                                line: 1,
                                message: format!(
                                    "fault code `{code}` from `DocErrorKind::code()` is missing from the DESIGN.md fault table"
                                ),
                            });
                        }
                    }
                    for code in &documented {
                        if !doc_codes.contains(code) {
                            out.push(Finding {
                                pass: "consistency",
                                lint: "doc-error-code-mismatch",
                                file: design_path.clone(),
                                line: 1,
                                message: format!(
                                    "fault code `{code}` in the DESIGN.md fault table is not a `DocErrorKind::code()` string"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // --- Metric names ----------------------------------------------------
    if !samples.is_empty() {
        for (path, text) in docs {
            for (name, line) in doc_metric_names(text) {
                if !metric_matches(&name, samples) {
                    out.push(Finding {
                        pass: "consistency",
                        lint: "unknown-metric-name",
                        file: path.clone(),
                        line,
                        message: format!(
                            "`{name}` is not a series (or series family) any exposition emits; fix the name or update the renderer"
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLI_SRC: &str = "impl CliErrorKind {\n    pub fn exit_code(self) -> u8 {\n        match self {\n            CliErrorKind::Failure => 1,\n            CliErrorKind::Query => 3,\n        }\n    }\n}\nfn doc_error_kind(kind: DocErrorKind) -> CliErrorKind {\n    match kind {\n        DocErrorKind::Io => CliErrorKind::Io,\n    }\n}\n";
    const BATCH_SRC: &str = "impl DocErrorKind {\n    pub fn code(self) -> &'static str {\n        match self {\n            DocErrorKind::Io => \"io\",\n            DocErrorKind::Timeout => \"timeout\",\n        }\n    }\n}\n";

    fn sources() -> Vec<SourceFile> {
        vec![
            SourceFile::new("crates/cli/src/lib.rs", CLI_SRC),
            SourceFile::new("crates/batch/src/lib.rs", BATCH_SRC),
        ]
    }

    fn docs(design: &str, readme: &str) -> Vec<(String, String)> {
        vec![
            ("DESIGN.md".to_owned(), design.to_owned()),
            ("README.md".to_owned(), readme.to_owned()),
        ]
    }

    const GOOD_DESIGN: &str = "# Design\n<!-- exit-code-table:begin -->\n| code | class | kind |\n|---|---|---|\n| 0 | success | — |\n| 1 | failure | `Failure` |\n| 3 | bad query | `Query` |\n<!-- exit-code-table:end -->\n<!-- doc-error-codes:begin -->\n| `io` | read failed |\n| `timeout` | deadline passed |\n<!-- doc-error-codes:end -->\n";
    const GOOD_README: &str = "Exit codes: `0` ok, `1` failure, `3` bad query.\n";

    #[test]
    fn consistent_docs_produce_no_findings() {
        let findings = check(&sources(), &docs(GOOD_DESIGN, GOOD_README), &[]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn exit_code_arms_are_recovered_exactly() {
        let codes = source_exit_codes(&sources());
        assert_eq!(codes.len(), 2);
        assert_eq!(codes["Failure"], 1);
        assert_eq!(codes["Query"], 3);
    }

    #[test]
    fn doc_codes_are_recovered_and_mapping_arms_ignored() {
        assert_eq!(source_doc_codes(&sources()), ["io", "timeout"]);
    }

    #[test]
    fn missing_table_row_is_flagged() {
        let design = GOOD_DESIGN.replace("| 3 | bad query | `Query` |\n", "");
        let findings = check(&sources(), &docs(&design, GOOD_README), &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, "exit-code-mismatch");
        assert!(findings[0].message.contains("Query"));
    }

    #[test]
    fn stale_table_row_is_flagged() {
        let design =
            GOOD_DESIGN.replace("| 3 | bad query | `Query` |", "| 9 | bad query | `Query` |");
        let findings = check(&sources(), &docs(&design, GOOD_README), &[]);
        assert!(findings
            .iter()
            .any(|f| f.lint == "exit-code-mismatch" && f.message.contains("exit 9")));
    }

    #[test]
    fn missing_anchors_are_flagged() {
        let findings = check(&sources(), &docs("# Design\n", GOOD_README), &[]);
        let lints: Vec<&str> = findings.iter().map(|f| f.lint).collect();
        assert_eq!(lints, ["doc-anchor", "doc-anchor"]);
    }

    #[test]
    fn undocumented_readme_exit_code_is_flagged() {
        let findings = check(&sources(), &docs(GOOD_DESIGN, "No codes here.\n"), &[]);
        assert!(findings.iter().all(|f| f.lint == "readme-exit-codes"));
        assert_eq!(findings.len(), 3, "{findings:?}"); // 0, 1, 3
    }

    #[test]
    fn fault_code_divergence_is_flagged_both_ways() {
        let design = GOOD_DESIGN.replace(
            "| `timeout` | deadline passed |",
            "| `deadline` | deadline passed |",
        );
        let findings = check(&sources(), &docs(&design, GOOD_README), &[]);
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("`timeout`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`deadline`")), "{msgs:?}");
    }

    #[test]
    fn metric_names_match_families_on_underscore_boundaries() {
        let samples = vec![
            "rsq_docs_total".to_owned(),
            "rsq_window_doc_rate".to_owned(),
        ];
        assert!(metric_matches("rsq_docs_total", &samples));
        assert!(metric_matches("rsq_window", &samples));
        assert!(!metric_matches("rsq_doc", &samples));
        assert!(!metric_matches("rsq_gone", &samples));
    }

    #[test]
    fn crate_paths_in_doc_examples_are_not_metric_names() {
        let names = doc_metric_names("# Ok::<(), rsq_engine::EngineError>(())\n");
        assert!(names.is_empty(), "{names:?}");
        let names = doc_metric_names("the `rsq_docs_total` counter\n");
        assert_eq!(names.len(), 1);
    }

    #[test]
    fn unknown_metric_name_in_docs_is_flagged() {
        let design = format!("{GOOD_DESIGN}\nThe `rsq_bogus_series` gauge.\n");
        let samples = vec!["rsq_docs_total".to_owned()];
        let findings = check(&sources(), &docs(&design, GOOD_README), &samples);
        assert!(
            findings
                .iter()
                .any(|f| f.lint == "unknown-metric-name" && f.message.contains("rsq_bogus_series")),
            "{findings:?}"
        );
    }
}
