//! Pass 1: the panic surface (DESIGN.md §14.2).
//!
//! Every potential panic site in production code must either be
//! converted into error propagation or carry an inline
//! `// PANIC-OK: <reason>` annotation justifying why the panic cannot
//! fire (or why aborting is the correct response). What counts as a
//! panic site depends on the file's [`Tier`]:
//!
//! * **Exterior** code (cli/serve/batch/obs) runs outside the
//!   `catch_unwind` containment boundary: a panic kills a worker
//!   thread, poisons pool locks, or tears down the process. `unwrap`,
//!   `expect`, panic macros, *and* direct indexing all need a reason.
//! * **Contained** code (the engine stack) panics into the per-document
//!   `catch_unwind` in `rsq_batch::contain`, surfacing as a `panic`
//!   fault code rather than a crash. Explicit panic sites still need a
//!   reason (they are a correctness smell), but direct indexing — the
//!   engine's bread and butter, bounds-checked by the compiler — is
//!   exempt.
//! * **Dev** code (xtask, bench, tests, examples) is exempt entirely.
//!
//! `assert!`/`debug_assert!` are deliberately not flagged: stating an
//! invariant loudly is the behavior this pass exists to encourage.

use super::source::{annotation_at, Annotation, SourceFile, Tier};
use super::Finding;
use crate::lexer::TokKind;

/// The annotation marker the pass looks for.
pub(crate) const MARKER: &str = "PANIC-OK:";

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Identifiers that, appearing directly before `[`, do *not* make it an
/// index expression (patterns, array types, and array literals).
const NON_INDEX_PREV: &[&str] = &[
    "in", "if", "else", "match", "return", "as", "mut", "ref", "move", "let", "const", "static",
    "break", "continue", "while", "loop", "for", "where", "impl", "dyn", "fn", "type", "use",
    "pub", "unsafe", "crate",
];

pub(crate) fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        if file.tier == Tier::Dev {
            continue;
        }
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if file.in_test(i) {
                continue;
            }
            let next_is = |c: char| toks.get(i + 1).is_some_and(|n| n.is_punct(c));
            let prev = i.checked_sub(1).map(|p| &toks[p]);

            // `.unwrap()` / `.expect(` — method calls only, so
            // `unwrap_or`, `stdin().lock()` receivers etc. never match.
            if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && prev.is_some_and(|p| p.is_punct('.'))
                && next_is('(')
            {
                let lint = if t.text == "unwrap" {
                    "naked-unwrap"
                } else {
                    "naked-expect"
                };
                maybe_flag(&mut out, file, t.line, lint, &format!("`.{}()`", t.text));
                continue;
            }

            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
            if t.kind == TokKind::Ident && PANIC_MACROS.contains(&t.text.as_str()) && next_is('!') {
                maybe_flag(
                    &mut out,
                    file,
                    t.line,
                    "panic-macro",
                    &format!("`{}!`", t.text),
                );
                continue;
            }

            // Direct indexing (`expr[…]`) — exterior tier only.
            if file.tier == Tier::Exterior && t.is_punct('[') {
                let indexes = prev.is_some_and(|p| match p.kind {
                    TokKind::Ident => !NON_INDEX_PREV.contains(&p.text.as_str()),
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    _ => false,
                });
                if indexes {
                    maybe_flag(&mut out, file, t.line, "direct-index", "direct index `[…]`");
                }
            }
        }
    }
    out
}

/// Emits a finding unless the site carries a justified `PANIC-OK`.
fn maybe_flag(
    out: &mut Vec<Finding>,
    file: &SourceFile,
    line: u32,
    lint: &'static str,
    what: &str,
) {
    let boundary = match file.tier {
        Tier::Exterior => {
            "runs outside the catch_unwind containment boundary (a panic here kills a worker or the connection)"
        }
        _ => "is contained by catch_unwind as a per-document `panic` fault, but is still a panic site",
    };
    match annotation_at(&file.lexed.comments, line, MARKER) {
        Annotation::Justified => {}
        Annotation::Empty => out.push(Finding {
            pass: "panic",
            lint,
            file: file.path.clone(),
            line,
            message: format!(
                "{what} has a `// PANIC-OK:` annotation with no reason; state why the panic cannot fire"
            ),
        }),
        Annotation::Missing => out.push(Finding {
            pass: "panic",
            lint,
            file: file.path.clone(),
            line,
            message: format!(
                "{what} {boundary}; propagate an error or annotate `// PANIC-OK: <reason>`"
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_one(path: &str, src: &str) -> Vec<Finding> {
        check(&[SourceFile::new(path, src)])
    }

    fn lints(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn unwrap_and_expect_are_flagged_in_production_code() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let a = x.unwrap();\n    let b = x.expect(\"msg\");\n    a + b\n}\n";
        let findings = check_one("crates/serve/src/pool.rs", src);
        assert_eq!(lints(&findings), ["naked-unwrap", "naked-expect"]);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn panic_ok_with_reason_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // PANIC-OK: x is Some by the admission invariant above.\n    x.unwrap()\n}\n";
        assert!(check_one("crates/serve/src/pool.rs", src).is_empty());
    }

    #[test]
    fn panic_ok_without_reason_is_its_own_finding() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // PANIC-OK:\n}\n";
        let findings = check_one("crates/serve/src/pool.rs", src);
        assert_eq!(lints(&findings), ["naked-unwrap"]);
        assert!(findings[0].message.contains("no reason"));
    }

    #[test]
    fn unwrap_or_variants_are_not_panic_sites() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()\n}\n";
        assert!(check_one("crates/serve/src/pool.rs", src).is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        let src = "fn f(x: u8) -> u8 {\n    match x {\n        0 => panic!(\"zero\"),\n        1 => unreachable!(),\n        2 => todo!(),\n        _ => x,\n    }\n}\n";
        let findings = check_one("crates/batch/src/lib.rs", src);
        assert_eq!(
            lints(&findings),
            ["panic-macro", "panic-macro", "panic-macro"]
        );
    }

    #[test]
    fn asserts_are_allowed_by_policy() {
        let src = "fn f(x: u8) {\n    assert!(x > 0);\n    debug_assert_eq!(x % 2, 0);\n}\n";
        assert!(check_one("crates/serve/src/pool.rs", src).is_empty());
    }

    #[test]
    fn indexing_flagged_only_in_exterior_tier() {
        let src = "fn f(v: &[u8], i: usize) -> u8 {\n    v[i]\n}\n";
        assert_eq!(
            lints(&check_one("crates/obs/src/hist.rs", src)),
            ["direct-index"]
        );
        assert!(check_one("crates/engine/src/main_loop.rs", src).is_empty());
    }

    #[test]
    fn non_index_brackets_are_not_flagged() {
        let src = "fn f() -> [u8; 2] {\n    let a: [u8; 2] = [0, 1];\n    let v = vec![1u8];\n    for _x in [1, 2] {}\n    let [p, q] = a;\n    let _ = (v, p, q);\n    a\n}\n#[inline]\nfn g() {}\n";
        assert!(check_one("crates/serve/src/lib.rs", src).is_empty());
    }

    #[test]
    fn call_result_indexing_is_flagged() {
        let src = "fn f(v: &[u8]) -> u8 {\n    slice_of(v)[0]\n}\n";
        assert_eq!(
            lints(&check_one("crates/cli/src/lib.rs", src)),
            ["direct-index"]
        );
    }

    #[test]
    fn contained_tier_still_flags_explicit_panics() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let findings = check_one("crates/json/src/parser.rs", src);
        assert_eq!(lints(&findings), ["naked-unwrap"]);
        assert!(findings[0].message.contains("contained"));
    }

    #[test]
    fn test_code_and_dev_crates_are_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(check_one("crates/serve/src/lib.rs", src).is_empty());
        let dev = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(check_one("crates/xtask/src/main.rs", dev).is_empty());
        assert!(check_one("crates/serve/tests/robustness.rs", dev).is_empty());
    }
}
