//! Seeded violation: `a` and `b` acquired in opposite orders by two
//! functions — a classic ABBA deadlock. The lock-order pass must report
//! exactly one cycle over {a, b}.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn backward(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga - *gb
    }
}
