//! Seeded violation: `write_all` (line 13) while the `sink` guard is
//! held. The annotated flush on line 20 must not be reported.
use std::io::Write;
use std::sync::Mutex;

pub struct Out {
    sink: Mutex<Vec<u8>>,
}

impl Out {
    pub fn log(&self, w: &mut dyn Write, line: &[u8]) {
        let mut g = self.sink.lock().unwrap();
        w.write_all(line).unwrap();
        g.extend_from_slice(line);
    }

    pub fn annotated(&self, w: &mut dyn Write) {
        let g = self.sink.lock().unwrap();
        // LOCK-OK: single-threaded teardown path, nothing contends
        w.flush().unwrap();
        drop(g);
    }
}
