//! Clean hierarchy: `a` is always acquired before `b`, and guards are
//! dropped before the notify. The lock-order pass must report nothing.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn sum(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn weighted(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga * 2 + *gb
    }

    pub fn reset(&self) {
        let mut ga = self.a.lock().unwrap();
        *ga = 0;
        drop(ga);
        let mut gb = self.b.lock().unwrap();
        *gb = 0;
    }
}
