//! Seeded violations for the panic pass, as if this file lived in an
//! exterior-tier crate: a naked unwrap (line 7), then a direct index
//! and a naked expect sharing line 8. The annotated unwrap on line 13
//! must not be reported.

pub fn parse(input: &str) -> u32 {
    let first = input.lines().next().unwrap();
    first[..2].parse().expect("two digits")
}

pub fn last_index(input: &str) -> usize {
    // PANIC-OK: len is nonzero, the caller rejected empty input
    input.len().checked_sub(1).unwrap()
}
