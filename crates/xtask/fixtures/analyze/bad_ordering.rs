//! Seeded violations for the atomics pass: a bare `SeqCst` with no
//! `// ORDERING:` justification (line 9) and a `Relaxed` load on a
//! declared `AtomicBool` flag (line 18).
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub static COUNT: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    COUNT.fetch_add(1, Ordering::SeqCst)
}

pub struct Flags {
    stop: AtomicBool,
}

impl Flags {
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    pub fn total_order(&self) -> bool {
        // ORDERING: this one is justified, so it must not be reported
        self.stop.load(Ordering::SeqCst)
    }
}
