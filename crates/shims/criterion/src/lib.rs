//! Offline stand-in for the `criterion` crate.
//!
//! The rsq workspace must build in dependency-starved environments where
//! the registry is unreachable, so the benches cannot depend on crates.io
//! `criterion`. This shim provides the API subset they use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup` tuning methods, `BenchmarkId`, `Throughput::Bytes`
//! and `Bencher::iter` — backed by a simple wall-clock measurement loop.
//!
//! It is honest but unsophisticated: per benchmark it runs a short
//! warm-up, then `sample_size` timed samples (each sized to roughly fill
//! `measurement_time / sample_size`), and reports the median sample's
//! ns/iter plus throughput when configured. There is no outlier
//! analysis, no HTML report, and no statistical comparison with previous
//! runs — it exists so `cargo bench` produces useful numbers offline,
//! not to replace criterion's rigor.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark harness entry point, handed to each `criterion_group!`
/// target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Runs `routine` as a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, routine);
        group.finish();
        self
    }
}

/// A set of benchmarks sharing tuning parameters and a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to exercise the routine before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the quantity processed per iteration, enabling
    /// throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            ns_per_iter: None,
        };
        routine(&mut bencher);
        match bencher.ns_per_iter {
            Some(ns) => {
                let rate = match self.throughput {
                    Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
                        let gib_s = bytes as f64 / ns; // bytes/ns == GB/s
                        format!("  {gib_s:>8.3} GB/s")
                    }
                    Some(Throughput::Elements(n)) if ns > 0.0 => {
                        let me_s = n as f64 / ns * 1e3;
                        format!("  {me_s:>8.3} Melem/s")
                    }
                    _ => String::new(),
                };
                println!("{label:<50} {:>14.1} ns/iter{rate}", ns);
            }
            None => println!("{label:<50} (no measurement: Bencher::iter never called)"),
        }
        self
    }

    /// Runs one benchmark that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group. (No-op beyond marking intent, as in criterion.)
    pub fn finish(&mut self) {}
}

/// Times a closure over many iterations.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `routine`, recording the median sample's ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Size each sample to fill its share of the measurement budget.
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns) as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifies a benchmark as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Bytes(1024));
        let data = vec![1u8; 1024];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn group_runner_macros_compile() {
        fn bench_noop(c: &mut Criterion) {
            let mut group = c.benchmark_group("noop");
            group
                .sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2));
            group.bench_function(BenchmarkId::new("nothing", 0), |b| b.iter(|| 1 + 1));
            group.finish();
        }
        criterion_group!(benches, bench_noop);
        benches();
    }
}
