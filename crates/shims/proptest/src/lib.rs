//! Offline stand-in for the `proptest` crate.
//!
//! The rsq workspace must build and test in dependency-starved
//! environments where the registry is unreachable, so the property-test
//! suites cannot depend on crates.io `proptest`. This shim provides the
//! exact API subset those suites use — `proptest!`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`, `Strategy` with `prop_map`,
//! `prop_recursive` and `boxed`, `Just`, `any`, integer ranges, string
//! patterns, tuples, `collection::{vec, btree_map}` and
//! `array::uniform32` — over a deterministic SplitMix64 generator.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports the generated inputs
//!   verbatim (they are printed before the body runs, so even a panic
//!   mid-body shows them) but is not minimized;
//! * **deterministic seeding** — the RNG is seeded from the test's file
//!   and function name, so a failure reproduces exactly on re-run; there
//!   is no persistence file;
//! * string "regex" strategies support only the forms the workspace
//!   uses: `[class]{m,n}` character classes (with ranges and escapes)
//!   and `\PC{m,n}` (printable chars, including some multi-byte);
//! * only the names the workspace imports exist.

pub mod test_runner {
    //! Test execution: configuration, error type, RNG, and the panic
    //! guard that reports inputs when a case dies.

    /// Run configuration. Only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Matches upstream proptest's default.
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion (e.g. `prop_assert!`) failed.
        Fail(String),
        /// The input was rejected (unused by this shim's strategies).
        Reject(String),
    }

    impl TestCaseError {
        /// Convenience constructor for a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic SplitMix64 stream, seeded per test function.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from the test's location and name, so every
        /// run of the same test explores the same inputs.
        pub fn for_test(file: &str, name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in file.bytes().chain(name.bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `lo..hi` (`lo < hi`).
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo < hi);
            lo + self.next_u64() % (hi - lo)
        }
    }

    /// Prints the generated inputs if the case body panics, so failures
    /// are diagnosable without shrinking.
    pub struct CaseGuard {
        armed: bool,
        name: &'static str,
        case: u32,
        inputs: String,
    }

    impl CaseGuard {
        /// Arms the guard for one case.
        pub fn new(name: &'static str, case: u32, inputs: String) -> Self {
            CaseGuard {
                armed: true,
                name,
                case,
                inputs,
            }
        }

        /// The case passed; forget the inputs.
        pub fn disarm(mut self) {
            self.armed = false;
        }

        /// Formats an assertion failure, disarming the panic path.
        pub fn failure(mut self, err: TestCaseError) -> String {
            self.armed = false;
            format!(
                "proptest {}: case {} failed: {}\n  inputs: {}",
                self.name, self.case, err, self.inputs
            )
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest {}: panic in case {}\n  inputs: {}",
                    self.name, self.case, self.inputs
                );
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: fmt::Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds recursive values: `recurse` wraps the strategy for one
        /// more level of nesting, applied up to `depth` times with leaves
        /// mixed in at every level (so generated sizes stay bounded).
        /// The `_desired_size` and `_expected_branch` tuning knobs of the
        /// real crate are accepted and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(strat).boxed();
                strat = Union::weighted(vec![(1, leaf.clone()), (2, branch)]).boxed();
            }
            strat
        }
    }

    /// Object-safe core used by [`BoxedStrategy`].
    trait ErasedStrategy<T> {
        fn generate_erased(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, clonable strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn ErasedStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_erased(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        U: fmt::Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Weighted choice among strategies of a common value type.
    /// Built by [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Uniform choice.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Self::weighted(arms.into_iter().map(|s| (1, s)).collect())
        }

        /// Weighted choice; weights need not be normalized.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (weight, strat) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strat.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weights summed incorrectly")
        }
    }

    /// Full-domain strategy for [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: fmt::Debug + Sized {
        /// Draws a value uniformly over the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// `any::<T>()` — uniform over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot generate from empty range {:?}",
                        self
                    );
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::pattern::generate(self, rng)
        }
    }
}

mod pattern {
    //! The tiny "regex" subset backing `&str` strategies: a sequence of
    //! atoms (`[class]`, `\PC`, escaped or literal chars), each followed
    //! by an optional `{m,n}` or `{n}` repetition.

    use super::test_runner::TestRng;

    /// Printable pool for `\PC`: ASCII printables plus a few multi-byte
    /// characters so UTF-8 handling gets exercised.
    fn printable_pool() -> Vec<char> {
        let mut pool: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
        pool.extend(['ż', 'ó', 'ł', 'ć', 'λ', '€', '好']);
        pool
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let pool: Vec<char> = match c {
                '[' => {
                    let mut pool = Vec::new();
                    let mut class: Vec<char> = Vec::new();
                    for n in chars.by_ref() {
                        if n == ']' && !matches!(class.last(), Some('\\')) {
                            break;
                        }
                        class.push(n);
                    }
                    let mut i = 0;
                    while i < class.len() {
                        let ch = class[i];
                        if ch == '\\' && i + 1 < class.len() {
                            pool.push(class[i + 1]);
                            i += 2;
                        } else if i + 2 < class.len() && class[i + 1] == '-' {
                            let (lo, hi) = (ch as u32, class[i + 2] as u32);
                            for cp in lo..=hi {
                                if let Some(c) = char::from_u32(cp) {
                                    pool.push(c);
                                }
                            }
                            i += 3;
                        } else {
                            pool.push(ch);
                            i += 1;
                        }
                    }
                    pool
                }
                '\\' => match chars.next() {
                    // \PC (and \pC): "not a control character".
                    Some('P') | Some('p') => {
                        chars.next(); // consume the property letter
                        printable_pool()
                    }
                    Some(escaped) => vec![escaped],
                    None => vec!['\\'],
                },
                '{' | '}' => continue, // stray brace outside a repetition
                lit => vec![lit],
            };
            // Optional repetition.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for n in chars.by_ref() {
                    if n == '}' {
                        break;
                    }
                    spec.push(n);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().unwrap_or(0),
                        b.trim().parse().unwrap_or(8usize),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if lo == hi {
                lo
            } else {
                rng.below(lo as u64, hi as u64 + 1) as usize
            };
            if pool.is_empty() {
                continue;
            }
            for _ in 0..count {
                let pick = rng.below(0, pool.len() as u64) as usize;
                out.push(pool[pick]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_map`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::fmt;
    use std::ops::Range;

    /// `Vec<T>` with a length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeMap<K, V>` with entry count drawn from `size`. Duplicate
    /// generated keys collapse, so maps may come out smaller.
    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size }
    }

    /// See [`btree_map`].
    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord + fmt::Debug,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }

    fn sample_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        if size.start >= size.end {
            size.start
        } else {
            rng.below(size.start as u64, size.end as u64) as usize
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `[T; 32]` with every element drawn from `element`.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32 { element }
    }

    /// See [`uniform32`].
    #[derive(Clone, Debug)]
    pub struct Uniform32<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

// Re-export at the root too, as the real crate does.
pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::Config as ProptestConfig;

/// Declares property tests. Each function runs `Config::cases` generated
/// inputs; generated values are formatted *before* the body runs, so a
/// panicking case still reports its inputs (no shrinking is performed).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(file!(), stringify!($name));
                let ($($arg,)+) = ($($strat,)+);
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);
                    )+
                    let mut __inputs = ::std::string::String::new();
                    $(
                        __inputs.push_str(stringify!($arg));
                        __inputs.push_str(" = ");
                        __inputs.push_str(&format!("{:?}; ", &$arg));
                    )+
                    let __guard = $crate::test_runner::CaseGuard::new(
                        stringify!($name),
                        __case,
                        __inputs,
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => __guard.disarm(),
                        ::std::result::Result::Err(e) => ::std::panic!("{}", __guard.failure(e)),
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($item) ),+
        ])
    };
    ($($weight:literal => $item:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $( ($weight, $crate::strategy::Strategy::boxed($item)) ),+
        ])
    };
}

/// Asserts inside a `proptest!` body, failing the case (not the whole
/// process) with the generated inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __left,
            __right,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_charclass() {
        let mut rng = TestRng::for_test("shim", "pattern_charclass");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn pattern_escapes_and_spaces() {
        let mut rng = TestRng::for_test("shim", "pattern_escapes");
        let allowed = "abcdefghijklmnopqrstuvwxyz :,{}[]";
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z :,{}\\[\\]]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12, "{s:?}");
            assert!(s.chars().all(|c| allowed.contains(c)), "{s:?}");
        }
    }

    #[test]
    fn pattern_printable() {
        let mut rng = TestRng::for_test("shim", "pattern_printable");
        for _ in 0..200 {
            let s = Strategy::generate(&"\\PC{0,32}", &mut rng);
            assert!(s.chars().count() <= 32, "{s:?}");
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn ranges_and_unions() {
        let mut rng = TestRng::for_test("shim", "ranges_and_unions");
        let strat = prop_oneof![
            3 => (0i64..10).prop_map(|n| n * 2),
            1 => Just(-1i64),
        ];
        let mut saw_neg = false;
        let mut saw_even = false;
        for _ in 0..300 {
            let v = Strategy::generate(&strat, &mut rng);
            if v == -1 {
                saw_neg = true;
            } else {
                assert!(v % 2 == 0 && (0..20).contains(&v));
                saw_even = true;
            }
        }
        assert!(saw_neg && saw_even);
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 64, 6, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_test("shim", "recursion_terminates");
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(depth(&Strategy::generate(&strat, &mut rng)));
        }
        assert!(max > 1, "recursion never branched");
        assert!(max <= 5, "recursion exceeded depth bound: {max}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_end_to_end(v in crate::collection::vec(any::<u8>(), 0..16), n in 1usize..4) {
            // Consume `v` by value to prove the body may move inputs.
            let total: usize = v.into_iter().map(usize::from).sum();
            prop_assert!(n >= 1);
            prop_assert_eq!(total, total, "n = {}", n);
        }
    }
}
