//! Offline stand-in for the `rand` crate.
//!
//! The rsq workspace must build and test in dependency-starved
//! environments (no network, no registry mirror). The only consumer of
//! `rand` is the deterministic dataset generator (`rsq-datagen`), which
//! needs a seedable PRNG with a handful of sampling helpers — nothing
//! cryptographic and nothing distribution-sensitive. This shim provides
//! exactly that subset with the same module paths and trait names, backed
//! by the SplitMix64 generator, so `rsq-datagen` compiles unchanged.
//!
//! Notable differences from the real crate:
//!
//! * `StdRng` here is SplitMix64, not ChaCha12 — generated datasets are
//!   still fully deterministic per seed, but differ byte-for-byte from
//!   those produced with crates.io `rand`;
//! * `gen_range` uses a modulo reduction (bias ≤ 2⁻⁴⁰ for the ranges the
//!   generators use), `gen_bool` a 53-bit uniform;
//! * only the types and methods the workspace actually calls exist.

#![warn(missing_docs)]

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full value range.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly, producing values of type `T`.
///
/// Generic over the output (as in the real crate) so unsuffixed literal
/// ranges like `gen_range(2..6)` infer their type from the call site.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Primitive types uniformly samplable from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `lo..hi`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

/// The raw source of randomness: 64 uniformly distributed bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, exactly as rand's `gen_bool`.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// Uniform value over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_integer_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_integer_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: SplitMix64.
    ///
    /// Fast, passes BigCrush on its 64-bit output stream, and perfectly
    /// adequate for synthetic-dataset generation. **Not** the ChaCha12
    /// generator of crates.io `rand`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..100).any(|_| a.gen_range(0u32..9999) != c.gen_range(0u32..9999));
        assert!(differs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
