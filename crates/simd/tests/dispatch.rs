//! Dispatch-boundary tests (DESIGN.md §9): the backend chosen by
//! [`Simd::detect`] must agree with what `is_x86_feature_detected!`
//! reports, and every backend the host supports must be constructible and
//! produce identical masks on the block primitives.
//!
//! The `RSQ_BACKEND` environment override has its own integration test
//! binary (`env_override.rs`) because the override is latched once per
//! process.

use rsq_simd::{BackendKind, QuoteState, Simd, BLOCK_SIZE, SUPERBLOCK_SIZE};

/// Backends the host CPU can actually run.
fn supported() -> Vec<BackendKind> {
    let mut kinds = vec![BackendKind::Swar];
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            kinds.push(BackendKind::Avx2);
        }
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
            kinds.push(BackendKind::Avx512);
        }
    }
    kinds
}

#[test]
fn detect_matches_feature_detection() {
    let detected = Simd::detect().kind();
    #[cfg(target_arch = "x86_64")]
    {
        let expected =
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
                BackendKind::Avx512
            } else if is_x86_feature_detected!("avx2") {
                BackendKind::Avx2
            } else {
                BackendKind::Swar
            };
        assert_eq!(detected, expected);
    }
    #[cfg(not(target_arch = "x86_64"))]
    assert_eq!(detected, BackendKind::Swar);
}

#[test]
fn every_supported_backend_is_constructible() {
    for kind in supported() {
        assert_eq!(Simd::with_kind(kind).kind(), kind);
    }
}

#[test]
fn backend_names_round_trip_through_fromstr() {
    for kind in [BackendKind::Avx512, BackendKind::Avx2, BackendKind::Swar] {
        let parsed: BackendKind = kind.to_string().parse().expect("display name parses");
        assert_eq!(parsed, kind);
        let upper: BackendKind = kind
            .to_string()
            .to_uppercase()
            .parse()
            .expect("case-insensitive");
        assert_eq!(upper, kind);
    }
    assert!("neon".parse::<BackendKind>().is_err());
    assert!("".parse::<BackendKind>().is_err());
}

#[test]
fn block_primitives_agree_across_supported_backends() {
    let mut block = [0u8; BLOCK_SIZE];
    for (i, b) in block.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(37) ^ b'"';
    }
    let mut chunk = [0u8; SUPERBLOCK_SIZE];
    for (i, b) in chunk.iter_mut().enumerate() {
        *b = [b'"', b'\\', b'{', b'x'][i % 4];
    }

    let reference = Simd::with_kind(BackendKind::Swar);
    let want_eq = reference.eq_mask(&block, b'"');
    let mut ref_state = QuoteState::default();
    let want_quotes = reference.classify_quotes4(&chunk, &mut ref_state);

    for kind in supported() {
        let simd = Simd::with_kind(kind);
        assert_eq!(simd.eq_mask(&block, b'"'), want_eq, "eq_mask on {kind}");
        let mut state = QuoteState::default();
        assert_eq!(
            simd.classify_quotes4(&chunk, &mut state),
            want_quotes,
            "classify_quotes4 on {kind}"
        );
        assert_eq!(state, ref_state, "quote state after superblock on {kind}");
    }
}
