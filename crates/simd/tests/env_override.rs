//! The `RSQ_BACKEND` override is read once per process, so this test
//! lives in its own integration-test binary: it must set the variable
//! before anything latches the detection result.
//!
//! Forcing `swar` on a SIMD-capable host is the supported way to get a
//! portable-path run (CI uses it for the differential lanes); the outputs
//! must be bit-identical to the auto-detected backend's.

use rsq_simd::{BackendKind, QuoteState, Simd, SUPERBLOCK_SIZE};

#[test]
fn rsq_backend_swar_forces_portable_backend_with_identical_output() {
    // Latch the override before the first `detect()` in this process.
    std::env::set_var("RSQ_BACKEND", "swar");
    let forced = Simd::detect();
    assert_eq!(forced.kind(), BackendKind::Swar, "RSQ_BACKEND=swar honored");

    // `with_kind` bypasses the env var — these are the backends the host
    // would otherwise pick, for the output comparison.
    #[allow(unused_mut)]
    let mut natives: Vec<BackendKind> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            natives.push(BackendKind::Avx2);
        }
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
            natives.push(BackendKind::Avx512);
        }
    }

    let mut chunk = [0u8; SUPERBLOCK_SIZE];
    for (i, b) in chunk.iter_mut().enumerate() {
        *b = [b'"', b'\\', b'{', b'}', b'[', b']', b':', b'x'][i % 8];
    }
    let mut forced_state = QuoteState::default();
    let forced_masks = forced.classify_quotes4(&chunk, &mut forced_state);

    for kind in natives {
        let native = Simd::with_kind(kind);
        let mut state = QuoteState::default();
        assert_eq!(
            native.classify_quotes4(&chunk, &mut state),
            forced_masks,
            "forced swar output differs from {kind}"
        );
        assert_eq!(state, forced_state);
    }
}
