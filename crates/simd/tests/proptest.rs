//! Property tests: every strategy and backend must agree with the scalar
//! set-membership semantics on arbitrary byte sets and arbitrary blocks.

use proptest::prelude::*;
use rsq_simd::{BackendKind, ByteClassifier, ByteSet, Simd, BLOCK_SIZE};

fn backends() -> Vec<Simd> {
    let mut v = vec![Simd::with_kind(BackendKind::Swar)];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            v.push(Simd::with_kind(BackendKind::Avx2));
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
        {
            v.push(Simd::with_kind(BackendKind::Avx512));
        }
    }
    v
}

proptest! {
    #[test]
    fn classifier_matches_membership(
        accepted in proptest::collection::vec(any::<u8>(), 0..40),
        block in proptest::array::uniform32(any::<u8>()),
    ) {
        // Build a full 64-byte block from the 32 sampled bytes, mirrored.
        let mut full = [0u8; BLOCK_SIZE];
        full[..32].copy_from_slice(&block);
        full[32..].copy_from_slice(&block);

        let set = ByteSet::from_bytes(&accepted);
        for classifier in [ByteClassifier::new(&set), ByteClassifier::naive(&set)] {
            for simd in backends() {
                let mask = classifier.classify_block(simd, &full);
                for (i, &b) in full.iter().enumerate() {
                    prop_assert_eq!(
                        mask >> i & 1 == 1,
                        set.contains(b),
                        "byte {:#04x} at {} (strategy {}, backend {})",
                        b, i, classifier.strategy(), simd.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_xor_is_running_parity(m in any::<u64>()) {
        let simd = Simd::detect();
        let result = simd.prefix_xor(m);
        let mut parity = 0u64;
        for i in 0..64 {
            parity ^= (m >> i) & 1;
            prop_assert_eq!(result >> i & 1, parity, "bit {}", i);
        }
    }

    #[test]
    fn eq_mask_matches_scalar(block in proptest::array::uniform32(any::<u8>()), needle in any::<u8>()) {
        let mut full = [0u8; BLOCK_SIZE];
        full[..32].copy_from_slice(&block);
        full[32..].copy_from_slice(&block);
        for simd in backends() {
            let mask = simd.eq_mask(&full, needle);
            for (i, &b) in full.iter().enumerate() {
                prop_assert_eq!(mask >> i & 1 == 1, b == needle);
            }
        }
    }

    #[test]
    fn bit_iter_round_trips(m in any::<u64>()) {
        let rebuilt = rsq_simd::BitIter::new(m).fold(0u64, |acc, i| acc | (1 << i));
        prop_assert_eq!(rebuilt, m);
    }
}
