//! AVX2 implementations of the block primitives and superblock kernels.
//!
//! Every function in this module is compiled with `target_feature(avx2)`
//! (plus `pclmulqdq` where needed) and must only be called after runtime
//! feature detection — [`crate::Simd`] guarantees this. Functions are
//! `#[inline]` so they fuse into the superblock kernels below, which exist
//! to amortize the (uninlinable) dispatch call from feature-agnostic code
//! over 256 bytes instead of 64.
//!
//! Unsafety discipline (DESIGN.md §9): `unsafe_op_in_unsafe_fn` is denied,
//! so every intrinsic call and pointer offset sits in its own `unsafe`
//! block with a `SAFETY:` comment, and pointer arithmetic is paired with
//! `debug_assert!`s stating the bound it relies on.

#![cfg(target_arch = "x86_64")]

use crate::groups::TablePair;
use crate::quotes::{quotes_from_masks, QuoteState};
use crate::{Block, Superblock, BLOCK_SIZE, SUPERBLOCK_BLOCKS};
use core::arch::x86_64::*;

/// Positions in `block` equal to `byte`, as a 64-bit mask.
///
/// # Safety
///
/// The CPU must support AVX2.
#[inline]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn eq_mask(block: &Block, byte: u8) -> u64 {
    // SAFETY: `block` is a 64-byte array, so 64 bytes are readable from
    // its base pointer; avx2 is required by this fn's own contract.
    unsafe { eq_mask_ptr(block.as_ptr(), _mm256_set1_epi8(byte as i8)) }
}

/// Equality mask for 64 bytes at `ptr` against a pre-broadcast needle.
///
/// # Safety
///
/// The CPU must support AVX2, and `ptr` must be valid for reads of
/// [`BLOCK_SIZE`] (64) bytes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn eq_mask_ptr(ptr: *const u8, needle: __m256i) -> u64 {
    // SAFETY: the caller provides 64 readable bytes at `ptr`.
    let lo = unsafe { _mm256_loadu_si256(ptr.cast()) };
    // SAFETY: as above — offset 32 keeps this load inside those 64 bytes.
    let hi = unsafe { _mm256_loadu_si256(ptr.add(32).cast()) };
    let lo_mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, needle)) as u32;
    let hi_mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, needle)) as u32;
    u64::from(lo_mask) | (u64::from(hi_mask) << 32)
}

/// Equality masks of one block against two needles in a single call.
///
/// # Safety
///
/// The CPU must support AVX2.
#[inline]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn eq_mask2(block: &Block, a: u8, b: u8) -> (u64, u64) {
    let na = _mm256_set1_epi8(a as i8);
    let nb = _mm256_set1_epi8(b as i8);
    // SAFETY: `block` is a 64-byte array — both reads stay inside it.
    unsafe {
        (
            eq_mask_ptr(block.as_ptr(), na),
            eq_mask_ptr(block.as_ptr(), nb),
        )
    }
}

/// Broadcasts a 16-byte table to both 128-bit lanes of a 256-bit vector.
///
/// # Safety
///
/// The CPU must support AVX2.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn broadcast_table(table: &[u8; 16]) -> __m256i {
    // SAFETY: `table` is a 16-byte array, exactly one unaligned 128-bit
    // load.
    let t = unsafe { _mm_loadu_si128(table.as_ptr().cast()) };
    _mm256_broadcastsi128_si256(t)
}

/// The paper's 5-instruction non-overlapping-groups classification for one
/// 32-byte vector: two shuffles, a simulated per-byte right shift, and a
/// byte equality compare.
///
/// # Safety
///
/// The CPU must support AVX2. Pure register arithmetic — no memory access.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn lookup_eq_vec(src: __m256i, ltab: __m256i, utab: __m256i) -> __m256i {
    let usrc = _mm256_and_si256(_mm256_srli_epi16::<4>(src), _mm256_set1_epi8(0x0F));
    // Bytes with the high bit set zero their lane in `llookup`; since group
    // ids are >= 1 and the utab filler is 0xFE, such bytes never compare
    // equal — exactly the "upper nibbles of b are zeroed" caveat of §4.1.
    let llookup = _mm256_shuffle_epi8(ltab, src);
    let ulookup = _mm256_shuffle_epi8(utab, usrc);
    _mm256_cmpeq_epi8(llookup, ulookup)
}

/// The few-groups variant: OR the lookups and compare against all-ones.
///
/// # Safety
///
/// The CPU must support AVX2. Pure register arithmetic — no memory access.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn lookup_or_vec(src: __m256i, ltab: __m256i, utab: __m256i) -> __m256i {
    let usrc = _mm256_and_si256(_mm256_srli_epi16::<4>(src), _mm256_set1_epi8(0x0F));
    let llookup = _mm256_shuffle_epi8(ltab, src);
    let ulookup = _mm256_shuffle_epi8(utab, usrc);
    let lookup = _mm256_or_si256(llookup, ulookup);
    _mm256_cmpeq_epi8(lookup, _mm256_set1_epi8(-1))
}

/// Non-overlapping-groups classification of a 64-byte block.
///
/// # Safety
///
/// The CPU must support AVX2.
#[inline]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn lookup_eq_mask(block: &Block, tables: &TablePair) -> u64 {
    // SAFETY: `tables.ltab`/`utab` are 16-byte arrays; `block` is a
    // 64-byte array, so the loads at offsets 0 and 32 stay inside it.
    // `lookup_eq_vec` is register-only; avx2 is this fn's own contract.
    unsafe {
        let ltab = broadcast_table(&tables.ltab);
        let utab = broadcast_table(&tables.utab);
        let lo = _mm256_loadu_si256(block.as_ptr().cast());
        // SAFETY: offset 32 keeps the second half inside the 64-byte block.
        let hi = _mm256_loadu_si256(block.as_ptr().add(32).cast());
        let lo_mask = _mm256_movemask_epi8(lookup_eq_vec(lo, ltab, utab)) as u32;
        let hi_mask = _mm256_movemask_epi8(lookup_eq_vec(hi, ltab, utab)) as u32;
        u64::from(lo_mask) | (u64::from(hi_mask) << 32)
    }
}

/// Few-groups classification of a 64-byte block.
///
/// # Safety
///
/// The CPU must support AVX2.
#[inline]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn lookup_or_mask(block: &Block, tables: &TablePair) -> u64 {
    // SAFETY: same bounds as `lookup_eq_mask` — 16-byte tables, 64-byte
    // block, register-only combine; avx2 is this fn's own contract.
    unsafe {
        let ltab = broadcast_table(&tables.ltab);
        let utab = broadcast_table(&tables.utab);
        let lo = _mm256_loadu_si256(block.as_ptr().cast());
        // SAFETY: offset 32 keeps the second half inside the 64-byte block.
        let hi = _mm256_loadu_si256(block.as_ptr().add(32).cast());
        let lo_mask = _mm256_movemask_epi8(lookup_or_vec(lo, ltab, utab)) as u32;
        let hi_mask = _mm256_movemask_epi8(lookup_or_vec(hi, ltab, utab)) as u32;
        u64::from(lo_mask) | (u64::from(hi_mask) << 32)
    }
}

/// Prefix XOR via carry-less multiplication by all-ones (§4.2).
///
/// # Safety
///
/// The CPU must support PCLMULQDQ (and SSE2, which is baseline on x86-64).
#[inline]
#[target_feature(enable = "pclmulqdq")]
pub(crate) unsafe fn prefix_xor_clmul(m: u64) -> u64 {
    let v = _mm_set_epi64x(0, m as i64);
    let ones = _mm_set1_epi8(-1);
    // Register-only carry-less multiply — a safe intrinsic here because
    // this fn itself enables pclmulqdq (target_feature 1.1).
    let product = _mm_clmulepi64_si128::<0>(v, ones);
    _mm_cvtsi128_si64(product) as u64
}

/// Quote-classifies a 256-byte superblock: per 64-byte block, the
/// inside-string mask and the quote state *after* it.
///
/// # Safety
///
/// The CPU must support AVX2 and PCLMULQDQ.
#[inline]
#[target_feature(enable = "avx2", enable = "pclmulqdq")]
pub(crate) unsafe fn quotes4_clmul(
    chunk: &Superblock,
    state: &mut QuoteState,
) -> ([u64; SUPERBLOCK_BLOCKS], [QuoteState; SUPERBLOCK_BLOCKS]) {
    let slash = _mm256_set1_epi8(b'\\' as i8);
    let quote = _mm256_set1_epi8(b'"' as i8);
    let mut within = [0u64; SUPERBLOCK_BLOCKS];
    let mut after = [QuoteState::default(); SUPERBLOCK_BLOCKS];
    for i in 0..SUPERBLOCK_BLOCKS {
        debug_assert!(
            (i + 1) * BLOCK_SIZE <= chunk.len(),
            "block stays inside the superblock"
        );
        // SAFETY: `chunk` is a 256-byte array and `i < 4`, so the 64
        // bytes at offset `i * 64` are inside it; avx2/pclmulqdq are this
        // fn's own contract.
        unsafe {
            let ptr = chunk.as_ptr().add(i * BLOCK_SIZE);
            let backslash = eq_mask_ptr(ptr, slash);
            let quotes = eq_mask_ptr(ptr, quote);
            within[i] = quotes_from_masks(backslash, quotes, |m| prefix_xor_clmul(m), state);
        }
        after[i] = *state;
    }
    (within, after)
}

/// As [`quotes4_clmul`] but with the shift-XOR prefix (CPUs without
/// PCLMULQDQ).
///
/// # Safety
///
/// The CPU must support AVX2.
#[inline]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn quotes4_noclmul(
    chunk: &Superblock,
    state: &mut QuoteState,
) -> ([u64; SUPERBLOCK_BLOCKS], [QuoteState; SUPERBLOCK_BLOCKS]) {
    let slash = _mm256_set1_epi8(b'\\' as i8);
    let quote = _mm256_set1_epi8(b'"' as i8);
    let mut within = [0u64; SUPERBLOCK_BLOCKS];
    let mut after = [QuoteState::default(); SUPERBLOCK_BLOCKS];
    for i in 0..SUPERBLOCK_BLOCKS {
        debug_assert!(
            (i + 1) * BLOCK_SIZE <= chunk.len(),
            "block stays inside the superblock"
        );
        // SAFETY: `chunk` is a 256-byte array and `i < 4`, so the 64
        // bytes at offset `i * 64` are inside it; avx2 is this fn's own
        // contract. The prefix fold is the safe scalar shift-XOR.
        unsafe {
            let ptr = chunk.as_ptr().add(i * BLOCK_SIZE);
            let backslash = eq_mask_ptr(ptr, slash);
            let quotes = eq_mask_ptr(ptr, quote);
            within[i] = quotes_from_masks(backslash, quotes, crate::swar::prefix_xor, state);
        }
        after[i] = *state;
    }
    (within, after)
}

/// Finds the first position `p >= start` with `hay[p] == first` and
/// `hay[p + gap] == last`, scanning only the region where a full 64-byte
/// window fits. On success returns `Ok(candidate)` — an *unverified*
/// candidate the caller must confirm (re-entering with `start = p + 1` on
/// a false positive). When the vector region is exhausted, returns
/// `Err(first unchecked position)` for the caller's scalar tail.
///
/// # Safety
///
/// The CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn find_pair(
    hay: &[u8],
    start: usize,
    first: u8,
    last: u8,
    gap: usize,
) -> Result<usize, usize> {
    let nf = _mm256_set1_epi8(first as i8);
    let nl = _mm256_set1_epi8(last as i8);
    let mut at = start;
    while at + gap + BLOCK_SIZE <= hay.len() {
        debug_assert!(at + BLOCK_SIZE <= hay.len() && at + gap + BLOCK_SIZE <= hay.len());
        // SAFETY: the loop condition guarantees both 64-byte windows — at
        // offsets `at` and `at + gap` — end at or before `hay.len()`.
        let (a, b) = unsafe {
            (
                eq_mask_ptr(hay.as_ptr().add(at), nf),
                eq_mask_ptr(hay.as_ptr().add(at + gap), nl),
            )
        };
        let candidates = a & b;
        if candidates != 0 {
            return Ok(at + candidates.trailing_zeros() as usize);
        }
        at += BLOCK_SIZE;
    }
    Err(at)
}
