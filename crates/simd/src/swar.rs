//! Portable scalar/SWAR fallback implementations of the block primitives.
//!
//! These are the reference semantics for the AVX2 implementations in
//! [`crate::avx2`]; the two backends are differentially tested against each
//! other. The simple per-byte loops below are written so that LLVM can
//! autovectorize them on targets with any vector ISA, but correctness never
//! depends on that.

use crate::groups::TablePair;
use crate::Block;

/// Positions in `block` equal to `byte`, as a 64-bit mask.
pub(crate) fn eq_mask(block: &Block, byte: u8) -> u64 {
    let mut mask = 0u64;
    for (i, &b) in block.iter().enumerate() {
        mask |= u64::from(b == byte) << i;
    }
    mask
}

/// Non-overlapping-groups classification (equality combination).
///
/// Matches the AVX2 `shuffle` semantics: bytes with the high bit set are
/// never accepted.
pub(crate) fn lookup_eq_mask(block: &Block, tables: &TablePair) -> u64 {
    let mut mask = 0u64;
    for (i, &b) in block.iter().enumerate() {
        let low = tables.ltab[(b & 0x0F) as usize];
        let up = tables.utab[(b >> 4) as usize];
        let hit = b < 0x80 && low == up;
        mask |= u64::from(hit) << i;
    }
    mask
}

/// Few-groups classification (OR-to-all-ones combination).
///
/// Matches the AVX2 `shuffle` semantics: bytes with the high bit set are
/// never accepted.
pub(crate) fn lookup_or_mask(block: &Block, tables: &TablePair) -> u64 {
    let mut mask = 0u64;
    for (i, &b) in block.iter().enumerate() {
        let low = tables.ltab[(b & 0x0F) as usize];
        let up = tables.utab[(b >> 4) as usize];
        let hit = b < 0x80 && (low | up) == 0xFF;
        mask |= u64::from(hit) << i;
    }
    mask
}

/// Equality masks of one block against two needles.
pub(crate) fn eq_mask2(block: &Block, a: u8, b: u8) -> (u64, u64) {
    (eq_mask(block, a), eq_mask(block, b))
}

/// Quote-classifies a 256-byte superblock (see the AVX2 counterpart).
pub(crate) fn quotes4(
    chunk: &crate::Superblock,
    state: &mut crate::QuoteState,
) -> (
    [u64; crate::SUPERBLOCK_BLOCKS],
    [crate::QuoteState; crate::SUPERBLOCK_BLOCKS],
) {
    let mut within = [0u64; crate::SUPERBLOCK_BLOCKS];
    let mut after = [crate::QuoteState::default(); crate::SUPERBLOCK_BLOCKS];
    for i in 0..crate::SUPERBLOCK_BLOCKS {
        let block: &Block = chunk[i * crate::BLOCK_SIZE..(i + 1) * crate::BLOCK_SIZE]
            .try_into()
            // PANIC-OK: the slice is exactly BLOCK_SIZE bytes, so try_into cannot fail
            .expect("superblock slice is block-sized");
        let backslash = eq_mask(block, b'\\');
        let quotes = eq_mask(block, b'"');
        within[i] = crate::quotes::quotes_from_masks(backslash, quotes, prefix_xor, state);
        after[i] = *state;
    }
    (within, after)
}

/// Scalar candidate scan matching the AVX2 `find_pair` contract:
/// `Ok(candidate)` or `Err(first unchecked position)`.
pub(crate) fn find_pair(
    hay: &[u8],
    start: usize,
    first: u8,
    last: u8,
    gap: usize,
) -> Result<usize, usize> {
    let mut at = start;
    while at + gap + crate::BLOCK_SIZE <= hay.len() {
        if hay[at] == first && hay[at + gap] == last {
            return Ok(at);
        }
        at += 1;
    }
    Err(at)
}

/// Prefix XOR by log-shifting: bit *i* of the result is the XOR of bits
/// `0..=i` of `m`.
pub(crate) fn prefix_xor(m: u64) -> u64 {
    let mut x = m;
    x ^= x << 1;
    x ^= x << 2;
    x ^= x << 4;
    x ^= x << 8;
    x ^= x << 16;
    x ^= x << 32;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_xor_matches_naive() {
        let cases = [0u64, 1, 0b1010, u64::MAX, 0x8000_0000_0000_0001];
        for m in cases {
            let mut naive = 0u64;
            let mut acc = 0u64;
            for i in 0..64 {
                acc ^= (m >> i) & 1;
                naive |= acc << i;
            }
            assert_eq!(prefix_xor(m), naive, "mask {m:#x}");
        }
    }

    #[test]
    fn eq_mask_empty_block() {
        assert_eq!(eq_mask(&[0u8; 64], b'"'), 0);
        assert_eq!(eq_mask(&[b'"'; 64], b'"'), u64::MAX);
    }
}
