//! Block-level quote classification (§4.2): the portable core shared by
//! all backends.
//!
//! Locating strings requires three steps per 64-byte block: equality masks
//! for backslashes and quotes, *add-carry propagation* to find characters
//! escaped by odd-length backslash runs, and a prefix XOR turning the
//! unescaped-quote mask into an inside-string mask. The mask-combination
//! logic here is pure 64-bit arithmetic; the backends supply the equality
//! masks and the prefix XOR and inline this logic into their superblock
//! kernels.

/// Carry state of the quote classifier between blocks.
///
/// The default state is the document start: not escaped, not in a string.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuoteState {
    /// The first character of the next block is escaped by a backslash run
    /// ending at the previous block boundary.
    pub next_escaped: bool,
    /// The previous block ended while inside a string.
    pub in_string: bool,
}

/// Marks characters escaped by a backslash run of odd length, carrying
/// run state across the block boundary (simdjson's add-carry propagation).
#[inline(always)]
pub(crate) fn find_escaped(backslash: u64, next_escaped: &mut bool) -> u64 {
    const ODD_BITS: u64 = 0xAAAA_AAAA_AAAA_AAAA;
    const EVEN_BITS: u64 = 0x5555_5555_5555_5555;

    if backslash == 0 {
        let escaped = u64::from(*next_escaped);
        *next_escaped = false;
        return escaped;
    }

    // A backslash that is itself escaped does not start a run.
    let backslash = backslash & !u64::from(*next_escaped);
    let follows_escape = (backslash << 1) | u64::from(*next_escaped);
    let odd_sequence_starts = backslash & ODD_BITS & !follows_escape;
    let (sequences_starting_on_even_bits, overflow) =
        odd_sequence_starts.overflowing_add(backslash);
    *next_escaped = overflow;
    let invert_mask = sequences_starting_on_even_bits << 1;
    (EVEN_BITS ^ invert_mask) & follows_escape
}

/// Combines the backslash and quote masks of one block into the
/// inside-string mask (opening quote inclusive, closing exclusive),
/// advancing `state` to the end of the block. `prefix_xor` is supplied by
/// the backend so that the CLMUL variant inlines into its kernels.
#[inline(always)]
pub(crate) fn quotes_from_masks(
    backslash: u64,
    quote: u64,
    prefix_xor: impl Fn(u64) -> u64,
    state: &mut QuoteState,
) -> u64 {
    let escaped = find_escaped(backslash, &mut state.next_escaped);
    let unescaped_quotes = quote & !escaped;
    let mut within = prefix_xor(unescaped_quotes);
    if state.in_string {
        within = !within;
    }
    state.in_string = within >> 63 != 0;
    within
}
