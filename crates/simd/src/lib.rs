//! SIMD primitives for the `rsq` streaming JSONPath engine.
//!
//! This crate implements the *raw classification* layer of §4.1 of
//! *Supporting Descendants in SIMD-Accelerated JSONPath* (ASPLOS 2023):
//! given a classification function `f : byte → {0, 1}`, compute for a block
//! of input bytes the bitmask of positions where `f` accepts. Three
//! strategies of increasing generality are provided, exactly following the
//! paper:
//!
//! * **Non-overlapping acceptance groups** — two 16-entry nibble lookup
//!   tables combined with a byte-equality comparison (5 SIMD ops,
//!   ~4 cycles). This is the case used by the JSON structural classifier.
//! * **Few groups** (≤ 7 non-empty groups) — bit-per-group tables combined
//!   with OR and compared against all-ones (6 SIMD ops, ~5 cycles).
//! * **General case** — the few-groups method applied to a partition of the
//!   groups, with the results OR-ed together.
//!
//! A **naive** strategy (one `cmpeq` per accepted byte value) is also
//! provided; it is what Table 2 of the paper benchmarks against.
//!
//! All operations come in two backends selected at runtime: an AVX2
//! implementation (with CLMUL-accelerated [`Simd::prefix_xor`]) and a
//! portable scalar/SWAR fallback, so the crate runs on any target. Use
//! [`Simd::detect`] for the best available backend or [`Simd::with_kind`]
//! to force one (used by the paper-reproduction ablation benchmarks).
//!
//! # Examples
//!
//! ```
//! use rsq_simd::{ByteClassifier, ByteSet, Simd, BLOCK_SIZE};
//!
//! // Classify the JSON structural characters of Table 1 of the paper.
//! let set = ByteSet::from_bytes(b"{}[]:,");
//! let classifier = ByteClassifier::new(&set);
//! let simd = Simd::detect();
//!
//! let mut block = [b'x'; BLOCK_SIZE];
//! block[3] = b'{';
//! block[40] = b':';
//! let mask = classifier.classify_block(simd, &block);
//! assert_eq!(mask, (1 << 3) | (1 << 40));
//! ```

#![warn(missing_docs)]

mod avx2;
mod avx512;
mod classifier;
mod groups;
mod quotes;
mod swar;

pub use classifier::{ByteClassifier, Strategy};
pub use groups::{AcceptanceGroups, ByteSet, Group, TablePair};
pub use quotes::QuoteState;

/// The number of bytes processed per classification step.
///
/// All block-level primitives in this crate operate on 64-byte blocks and
/// produce 64-bit masks, bit *i* corresponding to byte *i* of the block.
pub const BLOCK_SIZE: usize = 64;

/// A 64-byte input block.
pub type Block = [u8; BLOCK_SIZE];

/// Blocks per superblock: the granularity at which the backend kernels
/// amortize their dispatch cost.
pub const SUPERBLOCK_BLOCKS: usize = 4;

/// The number of bytes processed per superblock kernel call.
pub const SUPERBLOCK_SIZE: usize = BLOCK_SIZE * SUPERBLOCK_BLOCKS;

/// A 256-byte superblock.
pub type Superblock = [u8; SUPERBLOCK_SIZE];

/// The instruction-set backend used by [`Simd`] operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// AVX-512 (F + BW): one 64-byte block per register, native 64-bit
    /// compare masks (x86-64 only).
    Avx512,
    /// AVX2 vector instructions (x86-64 only).
    Avx2,
    /// Portable scalar / SWAR fallback, available everywhere.
    Swar,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Avx512 => f.write_str("avx512"),
            BackendKind::Avx2 => f.write_str("avx2"),
            BackendKind::Swar => f.write_str("swar"),
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    /// Parses the names printed by `Display` (case-insensitive) — the
    /// accepted values of the `RSQ_BACKEND` environment override.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("avx512") {
            Ok(BackendKind::Avx512)
        } else if s.eq_ignore_ascii_case("avx2") {
            Ok(BackendKind::Avx2)
        } else if s.eq_ignore_ascii_case("swar") {
            Ok(BackendKind::Swar)
        } else {
            Err(format!(
                "unknown backend `{s}` (expected `avx512`, `avx2`, or `swar`)"
            ))
        }
    }
}

/// The `RSQ_BACKEND` environment override, read and parsed once per
/// process. An invalid value panics — an explicit override silently
/// falling back to auto-detection would defeat its purpose (comparing
/// backends or forcing the portable path in CI).
fn env_override() -> Option<BackendKind> {
    static OVERRIDE: std::sync::OnceLock<Option<BackendKind>> = std::sync::OnceLock::new();
    *OVERRIDE.get_or_init(|| match std::env::var("RSQ_BACKEND") {
        Ok(value) if !value.is_empty() => {
            // PANIC-OK: an explicit RSQ_BACKEND override with a typo should fail fast, not silently auto-detect
            Some(value.parse().unwrap_or_else(|e| panic!("RSQ_BACKEND: {e}")))
        }
        _ => None,
    })
}

/// A handle to the selected SIMD backend.
///
/// `Simd` is a small `Copy` token passed to every block-level primitive.
/// Constructing it once (via [`Simd::detect`]) and reusing it keeps feature
/// detection out of hot loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Simd {
    kind: BackendKind,
    clmul: bool,
}

impl Simd {
    /// Detects the best backend available on the running CPU.
    ///
    /// Honors the `RSQ_BACKEND` environment variable (`avx512`, `avx2`,
    /// or `swar`) as an explicit override — useful for A/B-comparing
    /// backends on the same machine and for forcing the portable path in
    /// CI; panics if the named backend is unsupported here or unknown.
    /// Under Miri the portable SWAR backend is always selected: Miri
    /// interprets Rust, not vendor intrinsics, and this fallback is what
    /// makes the whole engine Miri-checkable (DESIGN.md §9).
    #[must_use]
    pub fn detect() -> Self {
        if cfg!(miri) {
            return Simd {
                kind: BackendKind::Swar,
                clmul: false,
            };
        }
        if let Some(kind) = env_override() {
            return Simd::with_kind(kind);
        }
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
                return Simd {
                    kind: BackendKind::Avx512,
                    clmul: is_x86_feature_detected!("pclmulqdq"),
                };
            }
            if is_x86_feature_detected!("avx2") {
                return Simd {
                    kind: BackendKind::Avx2,
                    clmul: is_x86_feature_detected!("pclmulqdq"),
                };
            }
        }
        Simd {
            kind: BackendKind::Swar,
            clmul: false,
        }
    }

    /// Forces a specific backend.
    ///
    /// Used by the ablation benchmarks to compare instruction sets on the
    /// same machine.
    ///
    /// # Panics
    ///
    /// Panics if the CPU does not support the requested instruction set.
    #[must_use]
    pub fn with_kind(kind: BackendKind) -> Self {
        #[cfg(target_arch = "x86_64")]
        let clmul = is_x86_feature_detected!("pclmulqdq");
        #[cfg(not(target_arch = "x86_64"))]
        let clmul = false;
        match kind {
            BackendKind::Avx512 => {
                #[cfg(target_arch = "x86_64")]
                let ok =
                    is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw");
                #[cfg(not(target_arch = "x86_64"))]
                let ok = false;
                assert!(
                    ok,
                    "AVX-512 backend requested but the CPU does not support AVX-512F/BW"
                );
                Simd { kind, clmul }
            }
            BackendKind::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                let ok = is_x86_feature_detected!("avx2");
                #[cfg(not(target_arch = "x86_64"))]
                let ok = false;
                assert!(
                    ok,
                    "AVX2 backend requested but the CPU does not support AVX2"
                );
                Simd { kind, clmul }
            }
            BackendKind::Swar => Simd {
                kind: BackendKind::Swar,
                clmul: false,
            },
        }
    }

    /// The backend this handle dispatches to.
    #[inline]
    #[must_use]
    pub fn kind(self) -> BackendKind {
        self.kind
    }

    /// Returns the bitmask of positions in `block` equal to `byte`.
    #[inline]
    #[must_use]
    pub fn eq_mask(self, block: &Block, byte: u8) -> u64 {
        match self.kind {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx512` only when AVX-512F/BW was detected.
            BackendKind::Avx512 => unsafe { avx512::eq_mask(block, byte) },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx512 => unreachable!("AVX-512 backend on non-x86_64"),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx2` only when AVX2 was detected.
            BackendKind::Avx2 => unsafe { avx2::eq_mask(block, byte) },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx2 => unreachable!("AVX2 backend on non-x86_64"),
            BackendKind::Swar => swar::eq_mask(block, byte),
        }
    }

    /// Nibble-lookup classification with *equality* combination
    /// (the non-overlapping-groups case of §4.1).
    ///
    /// Bit *i* of the result is set iff
    /// `tables.ltab[block[i] & 0xF] == tables.utab[block[i] >> 4]`
    /// and `block[i] < 0x80`.
    ///
    /// Table constructors in this crate guarantee that bytes with the high
    /// bit set are never accepted, matching the `shuffle` semantics the
    /// paper relies on (a lit most-significant bit zeroes the lane).
    #[inline]
    #[must_use]
    pub fn lookup_eq_mask(self, block: &Block, tables: &TablePair) -> u64 {
        match self.kind {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx512` only when AVX-512F/BW was detected.
            BackendKind::Avx512 => unsafe { avx512::lookup_eq_mask(block, tables) },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx512 => unreachable!("AVX-512 backend on non-x86_64"),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx2` only when AVX2 was detected.
            BackendKind::Avx2 => unsafe { avx2::lookup_eq_mask(block, tables) },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx2 => unreachable!("AVX2 backend on non-x86_64"),
            BackendKind::Swar => swar::lookup_eq_mask(block, tables),
        }
    }

    /// Nibble-lookup classification with *OR-to-all-ones* combination
    /// (the few-groups case of §4.1).
    ///
    /// Bit *i* of the result is set iff
    /// `(tables.ltab[block[i] & 0xF] | tables.utab[block[i] >> 4]) == 0xFF`
    /// and `block[i] < 0x80`.
    #[inline]
    #[must_use]
    pub fn lookup_or_mask(self, block: &Block, tables: &TablePair) -> u64 {
        match self.kind {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx512` only when AVX-512F/BW was detected.
            BackendKind::Avx512 => unsafe { avx512::lookup_or_mask(block, tables) },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx512 => unreachable!("AVX-512 backend on non-x86_64"),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx2` only when AVX2 was detected.
            BackendKind::Avx2 => unsafe { avx2::lookup_or_mask(block, tables) },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx2 => unreachable!("AVX2 backend on non-x86_64"),
            BackendKind::Swar => swar::lookup_or_mask(block, tables),
        }
    }

    /// Equality masks of a block against two needles in a single dispatch
    /// (used by the depth classifier, which tracks one bracket pair).
    #[inline]
    #[must_use]
    pub fn eq_mask2(self, block: &Block, a: u8, b: u8) -> (u64, u64) {
        match self.kind {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx512` only when AVX-512F/BW was detected.
            BackendKind::Avx512 => unsafe { avx512::eq_mask2(block, a, b) },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx512 => unreachable!("AVX-512 backend on non-x86_64"),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx2` only when AVX2 was detected.
            BackendKind::Avx2 => unsafe { avx2::eq_mask2(block, a, b) },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx2 => unreachable!("AVX2 backend on non-x86_64"),
            BackendKind::Swar => swar::eq_mask2(block, a, b),
        }
    }

    /// Quote-classifies a 256-byte superblock in one dispatch: per 64-byte
    /// block, the inside-string mask (§4.2 semantics: opening quote
    /// inclusive, closing exclusive) and the quote state *after* that
    /// block. `state` is advanced to the end of the superblock.
    #[inline]
    #[must_use]
    pub fn classify_quotes4(
        self,
        chunk: &Superblock,
        state: &mut QuoteState,
    ) -> ([u64; SUPERBLOCK_BLOCKS], [QuoteState; SUPERBLOCK_BLOCKS]) {
        match self.kind {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx512` only when AVX-512F/BW was detected,
            // and the clmul variant only when PCLMULQDQ was detected.
            BackendKind::Avx512 => unsafe {
                if self.clmul {
                    avx512::quotes4_clmul(chunk, state)
                } else {
                    avx512::quotes4_noclmul(chunk, state)
                }
            },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx512 => unreachable!("AVX-512 backend on non-x86_64"),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx2` only when AVX2 was detected, and the
            // clmul variant only when PCLMULQDQ was detected.
            BackendKind::Avx2 => unsafe {
                if self.clmul {
                    avx2::quotes4_clmul(chunk, state)
                } else {
                    avx2::quotes4_noclmul(chunk, state)
                }
            },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx2 => unreachable!("AVX2 backend on non-x86_64"),
            BackendKind::Swar => swar::quotes4(chunk, state),
        }
    }

    /// Quote-classifies a single block, advancing `state` past it.
    ///
    /// Convenience single-block form of [`Simd::classify_quotes4`] for
    /// partial tails; superblock callers should prefer the batched kernel.
    #[inline]
    #[must_use]
    pub fn classify_quotes(self, block: &Block, state: &mut QuoteState) -> u64 {
        let backslash = self.eq_mask(block, b'\\');
        let quote = self.eq_mask(block, b'"');
        quotes::quotes_from_masks(backslash, quote, |m| self.prefix_xor(m), state)
    }

    /// Vectorised two-byte candidate scan for substring search: the first
    /// `p >= start` with `hay[p] == first` and `hay[p + gap] == last`.
    ///
    /// Returns `Ok(candidate)` (unverified — the caller confirms the full
    /// needle) or `Err(first unchecked position)` once no full 64-byte
    /// window fits; the caller finishes with a scalar tail from there.
    #[inline]
    pub fn find_pair(
        self,
        hay: &[u8],
        start: usize,
        first: u8,
        last: u8,
        gap: usize,
    ) -> Result<usize, usize> {
        match self.kind {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx512` only when AVX-512F/BW was detected.
            BackendKind::Avx512 => unsafe { avx512::find_pair(hay, start, first, last, gap) },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx512 => unreachable!("AVX-512 backend on non-x86_64"),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kind == Avx2` only when AVX2 was detected.
            BackendKind::Avx2 => unsafe { avx2::find_pair(hay, start, first, last, gap) },
            #[cfg(not(target_arch = "x86_64"))]
            // PANIC-OK: cfg-gated arm: this backend kind is never constructed on this arch
            BackendKind::Avx2 => unreachable!("AVX2 backend on non-x86_64"),
            BackendKind::Swar => swar::find_pair(hay, start, first, last, gap),
        }
    }

    /// Computes the prefix XOR of a 64-bit mask: bit *i* of the result is
    /// the XOR of bits `0..=i` of `m`.
    ///
    /// With bit *i* marking unescaped double quotes, the result marks the
    /// positions *inside* JSON strings (opening quote inclusive, closing
    /// quote exclusive) — the core of the quote classifier of §4.2. Uses
    /// carry-less multiplication by all-ones when the CPU supports CLMUL.
    #[inline]
    #[must_use]
    pub fn prefix_xor(self, m: u64) -> u64 {
        #[cfg(target_arch = "x86_64")]
        {
            if self.clmul {
                // SAFETY: `clmul` is only set when PCLMULQDQ was detected.
                return unsafe { avx2::prefix_xor_clmul(m) };
            }
        }
        swar::prefix_xor(m)
    }
}

impl Default for Simd {
    fn default() -> Self {
        Self::detect()
    }
}

/// Iterator over the positions of set bits in a 64-bit mask, in increasing
/// order.
///
/// # Examples
///
/// ```
/// let bits: Vec<u32> = rsq_simd::BitIter::new(0b1001_0001).collect();
/// assert_eq!(bits, [0, 4, 7]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BitIter(u64);

impl BitIter {
    /// Creates an iterator over the set bits of `mask`.
    #[inline]
    #[must_use]
    pub fn new(mask: u64) -> Self {
        BitIter(mask)
    }
}

impl Iterator for BitIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            let pos = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(pos)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BitIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_runs() {
        let simd = Simd::detect();
        // On the CI machine this is AVX2, but the test must pass anywhere.
        let _ = simd.kind();
    }

    #[test]
    fn eq_mask_finds_all_occurrences() {
        let simd = Simd::detect();
        let mut block = [0u8; BLOCK_SIZE];
        block[0] = b'"';
        block[31] = b'"';
        block[32] = b'"';
        block[63] = b'"';
        assert_eq!(
            simd.eq_mask(&block, b'"'),
            1 | (1 << 31) | (1 << 32) | (1 << 63)
        );
        assert_eq!(simd.eq_mask(&block, b'x'), 0);
    }

    #[test]
    fn eq_mask_backends_agree() {
        let avx = Simd::detect();
        let swar = Simd::with_kind(BackendKind::Swar);
        let mut block = [0u8; BLOCK_SIZE];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i * 7 % 256) as u8;
        }
        for byte in [0u8, 7, 14, 255, b'{'] {
            assert_eq!(avx.eq_mask(&block, byte), swar.eq_mask(&block, byte));
        }
    }

    #[test]
    fn prefix_xor_small_cases() {
        let simd = Simd::detect();
        assert_eq!(simd.prefix_xor(0), 0);
        assert_eq!(simd.prefix_xor(1), u64::MAX);
        // quotes at 1 and 3 -> inside-string at 1,2
        assert_eq!(simd.prefix_xor(0b1010), 0b0110);
    }

    #[test]
    fn prefix_xor_backends_agree() {
        let simd = Simd::detect();
        let mut x = 0x9e37_79b9_7f4a_7c15_u64;
        for _ in 0..100 {
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(17);
            assert_eq!(simd.prefix_xor(x), swar::prefix_xor(x));
        }
    }

    #[test]
    fn bit_iter_empty_and_full() {
        assert_eq!(BitIter::new(0).count(), 0);
        assert_eq!(BitIter::new(u64::MAX).count(), 64);
        assert_eq!(BitIter::new(u64::MAX).last(), Some(63));
    }
}
