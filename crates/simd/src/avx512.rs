//! AVX-512 implementations of the block primitives and superblock kernels.
//!
//! With 512-bit vectors a 64-byte block is a *single* register and byte
//! compares produce the 64-bit position mask directly
//! (`_mm512_cmpeq_epi8_mask`) — no `movemask` assembly step at all. The
//! nibble lookups still use the in-lane `shuffle` (AVX-512BW), with the
//! 16-byte tables broadcast to all four lanes, so the classification
//! sequence of §4.1 runs on 64 bytes in the same ~5 instructions the
//! paper counts for 16.
//!
//! Functions here require runtime detection of `avx512f` + `avx512bw`
//! (plus `pclmulqdq` for the prefix XOR); [`crate::Simd`] guarantees it.
//!
//! Unsafety discipline (DESIGN.md §9): `unsafe_op_in_unsafe_fn` is denied,
//! so every memory-touching intrinsic and pointer offset sits in its own
//! `unsafe` block with a `SAFETY:` comment, and pointer arithmetic is
//! paired with `debug_assert!`s stating the bound it relies on.

#![cfg(target_arch = "x86_64")]

use crate::groups::TablePair;
use crate::quotes::{quotes_from_masks, QuoteState};
use crate::{Block, Superblock, BLOCK_SIZE, SUPERBLOCK_BLOCKS};
use core::arch::x86_64::*;

/// Positions in `block` equal to `byte`.
///
/// # Safety
///
/// The CPU must support AVX-512F and AVX-512BW.
#[inline]
#[target_feature(enable = "avx512f", enable = "avx512bw")]
pub(crate) unsafe fn eq_mask(block: &Block, byte: u8) -> u64 {
    // SAFETY: `block` is a 64-byte array, exactly one unaligned 512-bit
    // load from its base pointer.
    let src = unsafe { _mm512_loadu_si512(block.as_ptr().cast()) };
    _mm512_cmpeq_epi8_mask(src, _mm512_set1_epi8(byte as i8))
}

/// Equality masks of one block against two needles in a single call.
///
/// # Safety
///
/// The CPU must support AVX-512F and AVX-512BW.
#[inline]
#[target_feature(enable = "avx512f", enable = "avx512bw")]
pub(crate) unsafe fn eq_mask2(block: &Block, a: u8, b: u8) -> (u64, u64) {
    // SAFETY: `block` is a 64-byte array, exactly one unaligned 512-bit
    // load from its base pointer.
    let src = unsafe { _mm512_loadu_si512(block.as_ptr().cast()) };
    (
        _mm512_cmpeq_epi8_mask(src, _mm512_set1_epi8(a as i8)),
        _mm512_cmpeq_epi8_mask(src, _mm512_set1_epi8(b as i8)),
    )
}

/// Broadcasts a 16-byte table to all four 128-bit lanes.
///
/// # Safety
///
/// The CPU must support AVX-512F.
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn broadcast_table(table: &[u8; 16]) -> __m512i {
    // SAFETY: `table` is a 16-byte array, exactly one unaligned 128-bit
    // load.
    let t = unsafe { _mm_loadu_si128(table.as_ptr().cast()) };
    _mm512_broadcast_i32x4(t)
}

/// Non-overlapping-groups classification of a 64-byte block (§4.1).
///
/// # Safety
///
/// The CPU must support AVX-512F and AVX-512BW.
#[inline]
#[target_feature(enable = "avx512f", enable = "avx512bw")]
pub(crate) unsafe fn lookup_eq_mask(block: &Block, tables: &TablePair) -> u64 {
    // SAFETY: `tables.ltab`/`utab` are 16-byte arrays and `block` is a
    // 64-byte array — all three loads stay inside their sources; avx512f
    // is this fn's own contract.
    let (ltab, utab, src) = unsafe {
        (
            broadcast_table(&tables.ltab),
            broadcast_table(&tables.utab),
            _mm512_loadu_si512(block.as_ptr().cast()),
        )
    };
    let usrc = _mm512_and_si512(_mm512_srli_epi16::<4>(src), _mm512_set1_epi8(0x0F));
    let llookup = _mm512_shuffle_epi8(ltab, src);
    let ulookup = _mm512_shuffle_epi8(utab, usrc);
    _mm512_cmpeq_epi8_mask(llookup, ulookup)
}

/// Few-groups classification of a 64-byte block (§4.1).
///
/// # Safety
///
/// The CPU must support AVX-512F and AVX-512BW.
#[inline]
#[target_feature(enable = "avx512f", enable = "avx512bw")]
pub(crate) unsafe fn lookup_or_mask(block: &Block, tables: &TablePair) -> u64 {
    // SAFETY: same bounds as `lookup_eq_mask` — 16-byte tables, 64-byte
    // block; avx512f is this fn's own contract.
    let (ltab, utab, src) = unsafe {
        (
            broadcast_table(&tables.ltab),
            broadcast_table(&tables.utab),
            _mm512_loadu_si512(block.as_ptr().cast()),
        )
    };
    let usrc = _mm512_and_si512(_mm512_srli_epi16::<4>(src), _mm512_set1_epi8(0x0F));
    let llookup = _mm512_shuffle_epi8(ltab, src);
    let ulookup = _mm512_shuffle_epi8(utab, usrc);
    let lookup = _mm512_or_si512(llookup, ulookup);
    _mm512_cmpeq_epi8_mask(lookup, _mm512_set1_epi8(-1))
}

/// Quote-classifies a 256-byte superblock (CLMUL prefix XOR).
///
/// # Safety
///
/// The CPU must support AVX-512F, AVX-512BW, and PCLMULQDQ.
#[inline]
#[target_feature(enable = "avx512f", enable = "avx512bw", enable = "pclmulqdq")]
pub(crate) unsafe fn quotes4_clmul(
    chunk: &Superblock,
    state: &mut QuoteState,
) -> ([u64; SUPERBLOCK_BLOCKS], [QuoteState; SUPERBLOCK_BLOCKS]) {
    let slash = _mm512_set1_epi8(b'\\' as i8);
    let quote = _mm512_set1_epi8(b'"' as i8);
    let mut within = [0u64; SUPERBLOCK_BLOCKS];
    let mut after = [QuoteState::default(); SUPERBLOCK_BLOCKS];
    for i in 0..SUPERBLOCK_BLOCKS {
        debug_assert!(
            (i + 1) * BLOCK_SIZE <= chunk.len(),
            "block stays inside the superblock"
        );
        // SAFETY: `chunk` is a 256-byte array and `i < 4`, so the 64
        // bytes at offset `i * 64` are inside it; pclmulqdq (required by
        // `prefix_xor_clmul`) is this fn's own contract.
        unsafe {
            let src = _mm512_loadu_si512(chunk.as_ptr().add(i * BLOCK_SIZE).cast());
            let backslash = _mm512_cmpeq_epi8_mask(src, slash);
            let quotes = _mm512_cmpeq_epi8_mask(src, quote);
            within[i] = quotes_from_masks(
                backslash,
                quotes,
                |m| crate::avx2::prefix_xor_clmul(m),
                state,
            );
        }
        after[i] = *state;
    }
    (within, after)
}

/// As [`quotes4_clmul`] with the shift-XOR prefix fallback.
///
/// # Safety
///
/// The CPU must support AVX-512F and AVX-512BW.
#[inline]
#[target_feature(enable = "avx512f", enable = "avx512bw")]
pub(crate) unsafe fn quotes4_noclmul(
    chunk: &Superblock,
    state: &mut QuoteState,
) -> ([u64; SUPERBLOCK_BLOCKS], [QuoteState; SUPERBLOCK_BLOCKS]) {
    let slash = _mm512_set1_epi8(b'\\' as i8);
    let quote = _mm512_set1_epi8(b'"' as i8);
    let mut within = [0u64; SUPERBLOCK_BLOCKS];
    let mut after = [QuoteState::default(); SUPERBLOCK_BLOCKS];
    for i in 0..SUPERBLOCK_BLOCKS {
        debug_assert!(
            (i + 1) * BLOCK_SIZE <= chunk.len(),
            "block stays inside the superblock"
        );
        // SAFETY: `chunk` is a 256-byte array and `i < 4`, so the 64
        // bytes at offset `i * 64` are inside it. The prefix fold is the
        // safe scalar shift-XOR.
        unsafe {
            let src = _mm512_loadu_si512(chunk.as_ptr().add(i * BLOCK_SIZE).cast());
            let backslash = _mm512_cmpeq_epi8_mask(src, slash);
            let quotes = _mm512_cmpeq_epi8_mask(src, quote);
            within[i] = quotes_from_masks(backslash, quotes, crate::swar::prefix_xor, state);
        }
        after[i] = *state;
    }
    (within, after)
}

/// Two-byte candidate scan (see the AVX2 counterpart for the contract).
///
/// # Safety
///
/// The CPU must support AVX-512F and AVX-512BW.
#[target_feature(enable = "avx512f", enable = "avx512bw")]
pub(crate) unsafe fn find_pair(
    hay: &[u8],
    start: usize,
    first: u8,
    last: u8,
    gap: usize,
) -> Result<usize, usize> {
    let nf = _mm512_set1_epi8(first as i8);
    let nl = _mm512_set1_epi8(last as i8);
    let mut at = start;
    while at + gap + BLOCK_SIZE <= hay.len() {
        debug_assert!(at + BLOCK_SIZE <= hay.len() && at + gap + BLOCK_SIZE <= hay.len());
        // SAFETY: the loop condition guarantees both 64-byte windows — at
        // offsets `at` and `at + gap` — end at or before `hay.len()`.
        let (a, b) = unsafe {
            (
                _mm512_loadu_si512(hay.as_ptr().add(at).cast()),
                _mm512_loadu_si512(hay.as_ptr().add(at + gap).cast()),
            )
        };
        let candidates = _mm512_cmpeq_epi8_mask(a, nf) & _mm512_cmpeq_epi8_mask(b, nl);
        if candidates != 0 {
            return Ok(at + candidates.trailing_zeros() as usize);
        }
        at += BLOCK_SIZE;
    }
    Err(at)
}
