//! Acceptance-set and acceptance-group analysis (Definitions 1–3 of §4.1).
//!
//! A binary classification function over bytes is represented as a
//! [`ByteSet`]. Splitting each byte into an upper and lower nibble induces
//! *acceptance groups*: maximal sets of upper nibbles that accept the same
//! set of lower nibbles. The structure of these groups decides which
//! classification strategy applies (see [`crate::ByteClassifier`]).

/// A set of byte values, i.e. a binary classification function
/// `f : {0x00, …, 0xFF} → {0, 1}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ByteSet([u64; 4]);

impl ByteSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        ByteSet([0; 4])
    }

    /// Builds a set from a slice of byte values (duplicates are fine).
    ///
    /// # Examples
    ///
    /// ```
    /// let set = rsq_simd::ByteSet::from_bytes(b"{}[]:,");
    /// assert!(set.contains(b'{'));
    /// assert!(!set.contains(b'x'));
    /// assert_eq!(set.len(), 6);
    /// ```
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut set = Self::new();
        for &b in bytes {
            set.insert(b);
        }
        set
    }

    /// Adds a byte to the set.
    pub fn insert(&mut self, byte: u8) {
        self.0[(byte >> 6) as usize] |= 1u64 << (byte & 63);
    }

    /// Removes a byte from the set.
    pub fn remove(&mut self, byte: u8) {
        self.0[(byte >> 6) as usize] &= !(1u64 << (byte & 63));
    }

    /// Tests membership.
    #[inline]
    #[must_use]
    pub fn contains(&self, byte: u8) -> bool {
        self.0[(byte >> 6) as usize] & (1u64 << (byte & 63)) != 0
    }

    /// Number of bytes in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Iterates over the member bytes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..=255).map(|b| b as u8).filter(|&b| self.contains(b))
    }

    /// The *acceptance set* `low(u)` of upper nibble `u` (Definition 1): the
    /// set of lower nibbles `l` such that `(u, l)` is accepted, as a 16-bit
    /// mask.
    #[must_use]
    pub fn low(&self, upper: u8) -> u16 {
        debug_assert!(upper < 16);
        let mut mask = 0u16;
        for l in 0..16u8 {
            if self.contains((upper << 4) | l) {
                mask |= 1 << l;
            }
        }
        mask
    }
}

impl std::fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|b| format!("{b:#04x}")))
            .finish()
    }
}

impl FromIterator<u8> for ByteSet {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut set = Self::new();
        for b in iter {
            set.insert(b);
        }
        set
    }
}

/// An acceptance group (Definition 2): a maximal set of upper nibbles with
/// identical acceptance sets, paired with that acceptance set.
///
/// Both fields are 16-bit nibble masks (bit *n* set ⇔ nibble *n* is in the
/// set). Only groups with a non-empty acceptance set are materialized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Group {
    /// Upper nibbles in the group (`U` in the paper).
    pub uppers: u16,
    /// Accepted lower nibbles (`L` in the paper).
    pub lowers: u16,
}

/// The set of all non-empty acceptance groups of a [`ByteSet`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AcceptanceGroups {
    groups: Vec<Group>,
}

impl AcceptanceGroups {
    /// Computes the acceptance groups of `set`.
    ///
    /// # Examples
    ///
    /// The example from §4.1 of the paper — bytes `a1, a2, b1, b2, c2` form
    /// two overlapping groups:
    ///
    /// ```
    /// use rsq_simd::{AcceptanceGroups, ByteSet};
    /// let set = ByteSet::from_bytes(&[0xa1, 0xa2, 0xb1, 0xb2, 0xc2]);
    /// let groups = AcceptanceGroups::compute(&set);
    /// assert_eq!(groups.len(), 2);
    /// assert!(groups.any_overlapping());
    /// ```
    #[must_use]
    pub fn compute(set: &ByteSet) -> Self {
        let mut groups: Vec<Group> = Vec::new();
        for u in 0..16u8 {
            let lowers = set.low(u);
            if lowers == 0 {
                continue;
            }
            match groups.iter_mut().find(|g| g.lowers == lowers) {
                Some(g) => g.uppers |= 1 << u,
                None => groups.push(Group {
                    uppers: 1 << u,
                    lowers,
                }),
            }
        }
        AcceptanceGroups { groups }
    }

    /// Number of non-empty groups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Returns `true` if there are no non-empty groups (empty byte set).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The groups, in order of first appearance by upper nibble.
    #[must_use]
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Returns `true` if any two groups are *overlapping* (Definition 3):
    /// distinct upper-nibble sets whose acceptance sets intersect.
    #[must_use]
    pub fn any_overlapping(&self) -> bool {
        for (i, a) in self.groups.iter().enumerate() {
            for b in &self.groups[i + 1..] {
                if a.lowers & b.lowers != 0 {
                    return true;
                }
            }
        }
        false
    }
}

/// A pair of 16-entry nibble lookup tables, the precomputed constants of a
/// shuffle-based classifier.
///
/// `ltab` is indexed by the lower nibble of an input byte, `utab` by its
/// upper nibble. How the two lookups combine depends on the strategy:
/// equality for [`crate::Simd::lookup_eq_mask`], OR-to-all-ones for
/// [`crate::Simd::lookup_or_mask`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TablePair {
    /// Lower-nibble lookup table.
    pub ltab: [u8; 16],
    /// Upper-nibble lookup table.
    pub utab: [u8; 16],
}

impl TablePair {
    /// Builds non-overlapping-case tables from groups (which must not
    /// overlap). Group *i* (0-based) is encoded as value `i + 1`; unused
    /// `utab` entries get `0xFE` and unused `ltab` entries `0xFF`, as in
    /// the paper.
    ///
    /// # Panics
    ///
    /// Panics if the groups overlap (two groups share a lower nibble).
    #[must_use]
    pub fn non_overlapping(groups: &AcceptanceGroups) -> Self {
        assert!(
            !groups.any_overlapping(),
            "non-overlapping table construction requires disjoint acceptance sets"
        );
        assert!(groups.len() <= 253, "too many groups");
        let mut ltab = [0xFFu8; 16];
        let mut utab = [0xFEu8; 16];
        for (i, g) in groups.groups().iter().enumerate() {
            let id = (i + 1) as u8;
            for n in 0..16 {
                if g.uppers & (1 << n) != 0 {
                    utab[n as usize] = id;
                }
                if g.lowers & (1 << n) != 0 {
                    ltab[n as usize] = id;
                }
            }
        }
        TablePair { ltab, utab }
    }

    /// Builds few-groups-case tables from at most 7 groups.
    ///
    /// Group *i* uses bit *i*: `utab[u] = 0xFF ^ (1 << i)` for `u ∈ Uᵢ`,
    /// `ltab[l]` ORs `1 << i` for every `i` with `l ∈ Lᵢ`. A byte is
    /// accepted iff the OR of its two lookups is `0xFF`.
    ///
    /// The paper allows 8 groups; we cap at 7 so that upper nibbles outside
    /// every group (mapped to `0x00`) can never combine with a full `ltab`
    /// entry to produce a false positive, and so that bit 7 acts as an
    /// unforgeable "has a group" marker.
    ///
    /// # Panics
    ///
    /// Panics if more than 7 groups are supplied.
    #[must_use]
    pub fn few_groups(groups: &[Group]) -> Self {
        assert!(
            groups.len() <= 7,
            "few-groups tables support at most 7 groups"
        );
        let mut ltab = [0u8; 16];
        let mut utab = [0u8; 16];
        for (i, g) in groups.iter().enumerate() {
            for n in 0..16 {
                if g.uppers & (1 << n) != 0 {
                    utab[n as usize] = 0xFF ^ (1 << i);
                }
                if g.lowers & (1 << n) != 0 {
                    ltab[n as usize] |= 1 << i;
                }
            }
        }
        TablePair { ltab, utab }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byteset_roundtrip() {
        let mut set = ByteSet::new();
        assert!(set.is_empty());
        set.insert(0);
        set.insert(255);
        set.insert(b'{');
        assert_eq!(set.len(), 3);
        assert!(set.contains(0) && set.contains(255) && set.contains(b'{'));
        set.remove(255);
        assert!(!set.contains(255));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, b'{']);
    }

    #[test]
    fn low_acceptance_sets() {
        // Bytes 0x3a (colon) and 0x2c (comma).
        let set = ByteSet::from_bytes(&[0x3a, 0x2c]);
        assert_eq!(set.low(0x3), 1 << 0xa);
        assert_eq!(set.low(0x2), 1 << 0xc);
        assert_eq!(set.low(0x5), 0);
    }

    #[test]
    fn json_structural_groups_are_non_overlapping() {
        // Table 1 of the paper: { } [ ] : ,  →  groups
        // ⟨{5,7},{b,d}⟩, ⟨{2},{c}⟩, ⟨{3},{a}⟩ — non-overlapping.
        let set = ByteSet::from_bytes(b"{}[]:,");
        let groups = AcceptanceGroups::compute(&set);
        assert_eq!(groups.len(), 3);
        assert!(!groups.any_overlapping());
        let expect = [
            Group {
                uppers: (1 << 2),
                lowers: 1 << 0xc,
            },
            Group {
                uppers: (1 << 3),
                lowers: 1 << 0xa,
            },
            Group {
                uppers: (1 << 5) | (1 << 7),
                lowers: (1 << 0xb) | (1 << 0xd),
            },
        ];
        let mut got = groups.groups().to_vec();
        got.sort_by_key(|g| g.uppers);
        assert_eq!(got, expect);
    }

    #[test]
    fn paper_overlapping_example() {
        let set = ByteSet::from_bytes(&[0xa1, 0xa2, 0xb1, 0xb2, 0xc2]);
        let groups = AcceptanceGroups::compute(&set);
        assert_eq!(groups.len(), 2);
        assert!(groups.any_overlapping());
    }

    #[test]
    fn non_overlapping_tables_match_paper_for_json() {
        let set = ByteSet::from_bytes(b"{}[]:,");
        let groups = AcceptanceGroups::compute(&set);
        let t = TablePair::non_overlapping(&groups);
        // Check classification semantics byte-by-byte rather than the exact
        // enumeration (group numbering order differs from the paper's).
        for b in 0u16..=255 {
            let b = b as u8;
            let accepted = b < 0x80 && t.ltab[(b & 0xF) as usize] == t.utab[(b >> 4) as usize];
            assert_eq!(accepted, set.contains(b), "byte {b:#04x}");
        }
    }

    #[test]
    #[should_panic(expected = "non-overlapping")]
    fn non_overlapping_rejects_overlap() {
        let set = ByteSet::from_bytes(&[0xa1, 0xa2, 0xb1, 0xb2, 0xc2]);
        let groups = AcceptanceGroups::compute(&set);
        let _ = TablePair::non_overlapping(&groups);
    }

    #[test]
    fn few_groups_tables_classify_correctly() {
        let set = ByteSet::from_bytes(&[0x11, 0x12, 0x21, 0x22, 0x32]);
        let groups = AcceptanceGroups::compute(&set);
        assert!(groups.len() <= 7);
        let t = TablePair::few_groups(groups.groups());
        for b in 0u16..=255 {
            let b = b as u8;
            let accepted =
                b < 0x80 && (t.ltab[(b & 0xF) as usize] | t.utab[(b >> 4) as usize]) == 0xFF;
            assert_eq!(accepted, set.contains(b), "byte {b:#04x}");
        }
    }

    #[test]
    #[should_panic(expected = "at most 7")]
    fn few_groups_rejects_too_many() {
        let groups: Vec<Group> = (0..8)
            .map(|i| Group {
                uppers: 1 << i,
                lowers: 1 << i,
            })
            .collect();
        let _ = TablePair::few_groups(&groups);
    }
}
