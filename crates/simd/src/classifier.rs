//! The general byte classifier: strategy selection per §4.1.
//!
//! [`ByteClassifier::new`] analyses the acceptance groups of a byte set and
//! picks the cheapest correct strategy: non-overlapping tables when the
//! groups are disjoint, few-groups tables when there are at most 7 groups,
//! and a partition of few-groups lookups in the general case. Bytes with the
//! high bit set (which the `shuffle`-based lookups cannot accept) are
//! handled with supplemental equality comparisons.

use crate::groups::{AcceptanceGroups, ByteSet, TablePair};
use crate::{Block, Simd};

/// How a [`ByteClassifier`] classifies a block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// One `cmpeq` per accepted byte value, OR-ed together. This is the
    /// baseline of Table 2 of the paper: cheap for very few values, linear
    /// in the number of values.
    Naive,
    /// Two nibble lookups combined with byte equality (§4.1,
    /// non-overlapping groups; ~4 cycles/block).
    NonOverlapping,
    /// Two nibble lookups combined with OR against all-ones (§4.1, few
    /// groups; ~5 cycles/block).
    FewGroups,
    /// Few-groups lookups over a partition of the groups, OR-combined
    /// (§4.1, general case; ~7 cycles/block for two parts).
    General,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::Naive => "naive",
            Strategy::NonOverlapping => "non-overlapping",
            Strategy::FewGroups => "few-groups",
            Strategy::General => "general",
        };
        f.write_str(s)
    }
}

#[derive(Clone, Debug)]
enum Plan {
    Naive,
    NonOverlapping(TablePair),
    FewGroups(TablePair),
    General(Vec<TablePair>),
}

/// A compiled classifier for an arbitrary set of byte values.
///
/// Solves Problem 1 of the paper for `k = 2` buckets: given a 64-byte
/// block, produce the bitmask of positions holding accepted bytes.
///
/// # Examples
///
/// ```
/// use rsq_simd::{ByteClassifier, ByteSet, Simd, Strategy};
///
/// let whitespace = ByteClassifier::new(&ByteSet::from_bytes(b" \t\n\r"));
/// let simd = Simd::detect();
/// let mut block = [b'a'; 64];
/// block[5] = b' ';
/// block[9] = b'\n';
/// assert_eq!(whitespace.classify_block(simd, &block), (1 << 5) | (1 << 9));
/// ```
#[derive(Clone, Debug)]
pub struct ByteClassifier {
    set: ByteSet,
    plan: Plan,
    /// Accepted bytes handled by per-value `cmpeq` (all of them for the
    /// naive strategy; only bytes `>= 0x80` otherwise).
    cmpeq_bytes: Vec<u8>,
}

impl ByteClassifier {
    /// Compiles a classifier for `set`, choosing the cheapest strategy.
    #[must_use]
    pub fn new(set: &ByteSet) -> Self {
        let low_set: ByteSet = set.iter().filter(|&b| b < 0x80).collect();
        let high_bytes: Vec<u8> = set.iter().filter(|&b| b >= 0x80).collect();
        let groups = AcceptanceGroups::compute(&low_set);

        // Very small sets are cheapest with plain comparisons (Table 2:
        // the naive method wins below 5 values).
        if set.len() < 5 {
            return ByteClassifier {
                set: *set,
                plan: Plan::Naive,
                cmpeq_bytes: set.iter().collect(),
            };
        }

        let plan = if groups.is_empty() {
            Plan::Naive
        } else if !groups.any_overlapping() {
            Plan::NonOverlapping(TablePair::non_overlapping(&groups))
        } else if groups.len() <= 7 {
            Plan::FewGroups(TablePair::few_groups(groups.groups()))
        } else {
            let parts = groups
                .groups()
                .chunks(7)
                .map(TablePair::few_groups)
                .collect();
            Plan::General(parts)
        };
        ByteClassifier {
            set: *set,
            plan,
            cmpeq_bytes: high_bytes,
        }
    }

    /// Compiles a classifier that always uses the naive one-`cmpeq`-per-value
    /// strategy, regardless of set structure. Used to reproduce Table 2.
    #[must_use]
    pub fn naive(set: &ByteSet) -> Self {
        ByteClassifier {
            set: *set,
            plan: Plan::Naive,
            cmpeq_bytes: set.iter().collect(),
        }
    }

    /// The strategy this classifier was compiled to.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        match &self.plan {
            Plan::Naive => Strategy::Naive,
            Plan::NonOverlapping(_) => Strategy::NonOverlapping,
            Plan::FewGroups(_) => Strategy::FewGroups,
            Plan::General(_) => Strategy::General,
        }
    }

    /// The byte set this classifier accepts.
    #[must_use]
    pub fn byte_set(&self) -> &ByteSet {
        &self.set
    }

    /// Scalar classification of a single byte (the reference semantics).
    #[inline]
    #[must_use]
    pub fn classify(&self, byte: u8) -> bool {
        self.set.contains(byte)
    }

    /// Classifies a 64-byte block, returning the acceptance bitmask.
    #[inline]
    #[must_use]
    pub fn classify_block(&self, simd: Simd, block: &Block) -> u64 {
        let mut mask = match &self.plan {
            Plan::Naive => 0,
            Plan::NonOverlapping(t) => simd.lookup_eq_mask(block, t),
            Plan::FewGroups(t) => simd.lookup_or_mask(block, t),
            Plan::General(parts) => {
                let mut m = 0u64;
                for t in parts {
                    m |= simd.lookup_or_mask(block, t);
                }
                m
            }
        };
        for &b in &self.cmpeq_bytes {
            mask |= simd.eq_mask(block, b);
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackendKind;

    fn exhaustive_check(set: &ByteSet, classifier: &ByteClassifier) {
        let mut backends = vec![Simd::detect(), Simd::with_kind(BackendKind::Swar)];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            backends.push(Simd::with_kind(BackendKind::Avx2));
        }
        for simd in backends {
            // Lay all 256 byte values out over four blocks.
            for blk in 0..4u16 {
                let mut block = [0u8; 64];
                for (i, b) in block.iter_mut().enumerate() {
                    *b = (blk * 64 + i as u16) as u8;
                }
                let mask = classifier.classify_block(simd, &block);
                for (i, &b) in block.iter().enumerate() {
                    assert_eq!(
                        mask >> i & 1 == 1,
                        set.contains(b),
                        "byte {b:#04x} backend {:?} strategy {}",
                        simd.kind(),
                        classifier.strategy()
                    );
                }
            }
        }
    }

    #[test]
    fn json_structural_uses_non_overlapping() {
        let set = ByteSet::from_bytes(b"{}[]:,");
        let c = ByteClassifier::new(&set);
        assert_eq!(c.strategy(), Strategy::NonOverlapping);
        exhaustive_check(&set, &c);
    }

    #[test]
    fn tiny_sets_use_naive() {
        let set = ByteSet::from_bytes(b"{}");
        let c = ByteClassifier::new(&set);
        assert_eq!(c.strategy(), Strategy::Naive);
        exhaustive_check(&set, &c);
    }

    #[test]
    fn overlapping_groups_use_few_groups() {
        // 0x21,0x22,0x31,0x32,0x42 — low(2) = low(3) = {1,2}, low(4) = {2}:
        // two overlapping groups.
        let set = ByteSet::from_bytes(&[0x21, 0x22, 0x31, 0x32, 0x42]);
        let c = ByteClassifier::new(&set);
        assert_eq!(c.strategy(), Strategy::FewGroups);
        exhaustive_check(&set, &c);
    }

    #[test]
    fn many_groups_use_general() {
        // Give every upper nibble 0..=9 a distinct overlapping lower set.
        let mut set = ByteSet::new();
        for u in 0..10u8 {
            set.insert(u << 4); // shared lower nibble forces overlap
            set.insert((u << 4) | (u + 1));
        }
        let c = ByteClassifier::new(&set);
        assert_eq!(c.strategy(), Strategy::General);
        exhaustive_check(&set, &c);
    }

    #[test]
    fn high_bytes_are_classified() {
        let set = ByteSet::from_bytes(&[b'{', b'}', b'[', b']', b':', b',', 0xE2, 0x80]);
        let c = ByteClassifier::new(&set);
        exhaustive_check(&set, &c);
    }

    #[test]
    fn naive_strategy_is_forced() {
        let set = ByteSet::from_bytes(b"{}[]:,");
        let c = ByteClassifier::naive(&set);
        assert_eq!(c.strategy(), Strategy::Naive);
        exhaustive_check(&set, &c);
    }

    #[test]
    fn empty_set_accepts_nothing() {
        let set = ByteSet::new();
        let c = ByteClassifier::new(&set);
        let block = [b'{'; 64];
        assert_eq!(c.classify_block(Simd::detect(), &block), 0);
    }

    #[test]
    fn full_set_accepts_everything() {
        let set: ByteSet = (0u16..=255).map(|b| b as u8).collect();
        let c = ByteClassifier::new(&set);
        exhaustive_check(&set, &c);
    }
}
