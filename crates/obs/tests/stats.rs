//! RunStats invariants: saturating counters (no overflow panics even
//! under `-C overflow-checks=on`), correct `Add`/`AddAssign` merging, and
//! stable JSON key layout. Plus the cfg-gated check that Tier B is truly
//! compiled out by default.

use rsq_obs::{ClassifierCounters, Recorder, RunStats};

#[test]
fn counters_saturate_instead_of_overflowing() {
    // Drive every counter to u64::MAX and record once more: a wrapping
    // `+= 1` would panic under overflow-checks; saturating must not.
    let mut stats = RunStats {
        bytes: u64::MAX,
        events: u64::MAX,
        toggle_flips: u64::MAX,
        memmem_jumps: u64::MAX,
        memmem_declined: u64::MAX,
        resume_handoffs: u64::MAX,
        max_depth: u64::MAX,
        matches: u64::MAX,
        ..RunStats::default()
    };
    stats.blocks.structural = u64::MAX;
    stats.blocks.depth = u64::MAX;
    stats.blocks.seek = u64::MAX;
    stats.blocks.quote = u64::MAX;
    stats.skips.leaf = u64::MAX;
    stats.skips.child = u64::MAX;
    stats.skips.sibling = u64::MAX;
    stats.skips.label = u64::MAX;

    stats.event(0);
    stats.leaf_skip();
    stats.child_skip();
    stats.sibling_skip();
    stats.label_seek();
    stats.memmem_jump();
    stats.memmem_decline();
    stats.resume_handoff();
    stats.matched();
    stats.depth(u32::MAX);
    stats.classifier(&ClassifierCounters {
        blocks_structural: u64::MAX,
        blocks_depth: u64::MAX,
        blocks_seek: u64::MAX,
        blocks_quote: u64::MAX,
        toggle_flips: u64::MAX,
    });
    stats.quote_blocks(u64::MAX);

    assert_eq!(stats.events, u64::MAX);
    assert_eq!(stats.skips.child, u64::MAX);
    assert_eq!(stats.blocks.quote, u64::MAX);
    assert_eq!(stats.matches, u64::MAX);
    // total() is itself saturating.
    assert_eq!(stats.blocks.total(), u64::MAX);

    // Merging two saturated reports must not panic either.
    let merged = stats + stats;
    assert_eq!(merged.events, u64::MAX);
}

#[test]
fn add_assign_merges_chunked_runs() {
    let mut a = RunStats {
        bytes: 100,
        events: 7,
        matches: 2,
        max_depth: 5,
        memmem_jumps: 1,
        ..RunStats::default()
    };
    a.blocks.structural = 4;
    a.skips.child = 3;

    let mut b = RunStats {
        bytes: 50,
        events: 3,
        matches: 1,
        max_depth: 9,
        memmem_declined: 2,
        ..RunStats::default()
    };
    b.blocks.structural = 2;
    b.blocks.depth = 1;
    b.skips.child = 1;
    b.skips.sibling = 4;

    let mut merged = a;
    merged += b;
    assert_eq!(merged, a + b);
    assert_eq!(merged.bytes, 150);
    assert_eq!(merged.events, 10);
    assert_eq!(merged.matches, 3);
    assert_eq!(merged.max_depth, 9, "max_depth takes the max, not the sum");
    assert_eq!(merged.blocks.structural, 6);
    assert_eq!(merged.blocks.depth, 1);
    assert_eq!(merged.skips.child, 4);
    assert_eq!(merged.skips.sibling, 4);
    assert_eq!(merged.memmem_jumps, 1);
    assert_eq!(merged.memmem_declined, 2);
}

#[test]
fn route_merge_keeps_fast_path_visible() {
    use rsq_obs::Route;
    assert_eq!(Route::default(), Route::General);
    for (name, route) in [
        ("field_chain", Route::FieldChain),
        ("selective", Route::Selective),
        ("general", Route::General),
    ] {
        assert_eq!(route.as_str(), name);
        assert_eq!(Route::from_str_opt(name), Some(route));
    }
    assert_eq!(Route::from_str_opt("nope"), None);

    // Folding fast-path stats into a default accumulator (batch merge)
    // must not reset the route to `general`.
    let mut acc = RunStats::default();
    let doc = RunStats {
        route: Route::FieldChain,
        bytes: 10,
        ..RunStats::default()
    };
    acc += doc;
    assert_eq!(acc.route, Route::FieldChain);
    acc += RunStats::default();
    assert_eq!(acc.route, Route::FieldChain, "later general docs keep it");
}

#[test]
fn json_is_single_line_with_stable_keys() {
    let mut stats = RunStats {
        bytes: 42,
        matches: 3,
        ..RunStats::default()
    };
    stats.skips.leaf = 1;
    let json = stats.to_json();
    assert!(!json.contains('\n'), "must be a single line: {json}");
    for key in [
        "\"route\":\"general\"",
        "\"bytes\":42",
        "\"blocks_classified\":",
        "\"structural\":",
        "\"depth\":",
        "\"seek\":",
        "\"quote\":",
        "\"total\":",
        "\"events\":",
        "\"toggle_flips\":",
        "\"skips\":",
        "\"leaf\":1",
        "\"child\":",
        "\"sibling\":",
        "\"label\":",
        "\"memmem_jumps\":",
        "\"memmem_declined\":",
        "\"resume_handoffs\":",
        "\"max_depth\":",
        "\"matches\":3",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // Balanced braces, no trailing newline — a cheap well-formedness
    // check; full JSON validity is asserted by the CLI end-to-end tests
    // through the rsq-json parser.
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "{json}"
    );
    assert!(json.starts_with('{') && json.ends_with('}'));
}

#[test]
fn display_is_a_human_table() {
    let stats = RunStats {
        bytes: 1000,
        matches: 5,
        ..RunStats::default()
    };
    let text = stats.to_string();
    assert!(text.contains("bytes"), "{text}");
    assert!(text.contains("matches"), "{text}");
    assert!(text.contains("memmem"), "{text}");
}

/// The acceptance check that the default build contains no ring-buffer
/// code: with `obs-trace` off, `span!` expands to the zero-sized
/// [`rsq_obs::NoopSpan`] and `event!` to an empty block — the annotations
/// below fail to compile if either macro ever expands to trace-ring calls
/// in this configuration (the `trace` module does not exist at all).
#[cfg(not(feature = "obs-trace"))]
#[test]
fn tier_b_is_compiled_out_by_default() {
    let span: rsq_obs::NoopSpan = rsq_obs::span!(Element);
    let event: () = rsq_obs::event!(Match, 123usize, 4u32);
    let _ = (span, event);
    assert_eq!(std::mem::size_of::<rsq_obs::NoopSpan>(), 0);
}

/// With the feature on, the same macros produce live ring records.
#[cfg(feature = "obs-trace")]
#[test]
fn tier_b_is_live_with_the_feature() {
    rsq_obs::trace::clear();
    {
        let _span = rsq_obs::span!(Dispatch);
        rsq_obs::event!(Match, 123usize, 4u32);
    }
    let records = rsq_obs::trace::drain();
    assert_eq!(records.len(), 3);
    assert_eq!(records[1].kind, rsq_obs::trace::TraceKind::Match);
    assert_eq!(records[1].offset, 123);
}
